//! `qof` — a command-line front end to the file-query engine.
//!
//! ```sh
//! qof generate bibtex 100 > refs.bib
//! qof query bibtex refs.bib 'SELECT r FROM References r WHERE r.Year = "1982"'
//! qof explain bibtex refs.bib 'SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"'
//! qof rig bibtex
//! qof advise bibtex 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'
//! qof serve bibtex --port 7878 --log query.log refs.bib
//! ```
//!
//! Built-in structuring schemas: `bibtex`, `mail`, `logs`, `sgml`, `code`
//! (see `qof::corpus` for the formats). Pass `--index A,B,C` before the
//! query to use a partial region index instead of full indexing,
//! `--threads N` to evaluate the index phase shard-parallel over the
//! files, and `--cache` to share subexpression results across the run.

use std::process::ExitCode;

use qof::corpus::{bibtex, code, logs, mail, sgml};
use qof::grammar::{IndexSpec, StructuringSchema};
use qof::text::{Corpus, CorpusBuilder};
use qof::{advise, advise_costed, parse_query, ExecOptions, FileDatabase, Rig, Severity};

fn schema_by_name(name: &str) -> Option<StructuringSchema> {
    Some(match name {
        "bibtex" => bibtex::schema(),
        "mail" => mail::schema(),
        "logs" => logs::schema(),
        "sgml" => sgml::schema(),
        "code" => code::schema(),
        _ => return None,
    })
}

fn generate_by_name(name: &str, count: usize) -> Option<String> {
    Some(match name {
        "bibtex" => bibtex::generate(&bibtex::BibtexConfig::with_refs(count)).0,
        "mail" => mail::generate(&mail::MailConfig { n_messages: count, ..Default::default() }).0,
        "logs" => logs::generate(&logs::LogConfig { n_sessions: count, ..Default::default() }).0,
        "sgml" => sgml::generate(&sgml::SgmlConfig { top_sections: count, ..Default::default() }).0,
        "code" => code::generate(&code::CodeConfig { n_functions: count, ..Default::default() }).0,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         qof generate <schema> <count>\n  \
         qof rig <schema> [indexed,names]\n  \
         qof query   <schema> [--index A,B,C] [--from-index F.qofx] [--threads N] [--cache]\n              \
         [--strict] [--explain-analyze] [--trace-json FILE] [--trace-perfetto FILE]\n              \
         [<file>...] <query>\n  \
         qof explain <schema> [--index A,B,C] [--from-index F.qofx] [<file>...] <query>\n  \
         qof stats   <schema> [--index A,B,C] [--from-index F.qofx] [--threads N] [--cache]\n              \
         [--json] [--history] [--workload] [<file>...] <query>...\n  \
         qof serve   <schema> [--index A,B,C] [--from-index F.qofx] [--threads N] [--cache]\n              \
         [--port P] [--log FILE] [--qlog-max-bytes N] [--slow-ms MS] [--recorder N]\n              \
         [--timeout-ms MS] [--history-interval-ms MS] [--slo p95=50ms,err=0.1%] [<file>...]\n  \
         qof top     [--host H] [--port P] [--interval-ms MS] [--frames N] [--once]\n  \
         qof index build   <schema> [--index A,B,C] --out F.qofx <file>...\n  \
         qof index inspect <F.qofx>\n  \
         qof qlog analyze  <query.log> [--json]\n  \
         qof advise  <schema> [--costed] [<file>...] <query>...\n  \
         qof check   <schema> [--index A,B,C] [--json] [--strict] [<query>...]\n\
         schemas: bibtex mail logs sgml code"
    );
    ExitCode::from(2)
}

fn load_corpus(files: &[String]) -> Result<Corpus, String> {
    let mut b = CorpusBuilder::new();
    for f in files {
        let contents = std::fs::read_to_string(f).map_err(|e| format!("cannot read `{f}`: {e}"))?;
        b.add_file(f.clone(), &contents);
    }
    Ok(b.build())
}

fn build_db(
    schema: StructuringSchema,
    files: &[String],
    index: Option<&str>,
) -> Result<FileDatabase, String> {
    let corpus = load_corpus(files)?;
    let spec = match index {
        None => IndexSpec::full(),
        Some(names) => IndexSpec::names(names.split(',').map(str::trim)),
    };
    FileDatabase::build(corpus, schema, spec).map_err(|e| e.to_string())
}

/// Builds the database from source files, or reopens it from a persisted
/// `.qofx` index when `--from-index` was given (O(1) start: no parsing,
/// no tokenizing; posting lists page in from the file on demand). A
/// corrupt or unreadable index file falls back to a fresh build when
/// source files are at hand, and errors out otherwise.
fn load_db(
    schema: StructuringSchema,
    files: &[String],
    index: Option<&str>,
    from_index: Option<&str>,
) -> Result<FileDatabase, String> {
    let Some(path) = from_index else {
        return build_db(schema, files, index);
    };
    if files.is_empty() {
        return FileDatabase::open(path, schema).map_err(|e| e.to_string());
    }
    let corpus = load_corpus(files)?;
    let (db, why) = FileDatabase::open_or_rebuild(path, schema, |schema| {
        let spec = match index {
            None => IndexSpec::full(),
            Some(names) => IndexSpec::names(names.split(',').map(str::trim)),
        };
        FileDatabase::build(corpus, schema, spec)
    })
    .map_err(|e| e.to_string())?;
    if let Some(why) = why {
        eprintln!("qof: index `{path}` unusable ({why}); rebuilt from source files");
    }
    Ok(db)
}

/// `qof stats`: runs every query traced against the corpus, then prints the
/// process-wide metrics snapshot (queries executed, cache hit ratio,
/// p50/p95 operator latencies). Trailing arguments are files when they
/// exist on disk and queries otherwise — queries contain spaces and SELECT
/// keywords, never bare readable paths.
#[allow(clippy::too_many_arguments)] // one parameter per CLI flag, dispatched once
fn run_stats(
    schema: StructuringSchema,
    rest: Vec<String>,
    index: Option<&str>,
    from_index: Option<&str>,
    threads: usize,
    cache: bool,
    json: bool,
    history: bool,
    workload: bool,
) -> Result<ExitCode, String> {
    let (files, queries): (Vec<String>, Vec<String>) =
        rest.into_iter().partition(|a| std::path::Path::new(a).is_file());
    if (files.is_empty() && from_index.is_none()) || queries.is_empty() {
        return Ok(usage());
    }
    let db = load_db(schema, &files, index, from_index)?
        .with_exec_options(ExecOptions { threads: threads.max(1), cache });
    let registry = qof::pat::MetricsRegistry::global();
    for q in &queries {
        if let Err(e) = db.query_traced(q) {
            eprintln!("error in `{q}`: {e}");
        }
        if history {
            // One history sample per query: the ring then holds the
            // per-query deltas, like the server's periodic sampler does
            // per interval.
            registry.record_history_sample(wall_ms());
        }
    }
    if history {
        // The same envelope the server's `GET /metrics/history` serves.
        let now = wall_ms();
        let samples = registry.history().samples(0, now);
        if samples.is_empty() {
            return Err("metrics history ring is empty — a sampler that never ran records \
                        nothing (a server started with --history-interval-ms 0 has the same \
                        symptom); re-run with sampling enabled"
                .to_owned());
        }
        println!("{}", qof::pat::history_to_json(&samples, 0, now, None));
        return Ok(ExitCode::SUCCESS);
    }
    if workload {
        let table = db.workload();
        let entries = table.snapshot();
        if json {
            // The same envelope the server's `GET /workload` serves.
            println!("{}", qof::pat::workload_to_json(&entries, table.capacity()));
        } else {
            print!("{}", render_workload_table(&entries));
        }
        return Ok(ExitCode::SUCCESS);
    }
    let snap = registry.snapshot();
    if json {
        // The same serializer that backs the server's `GET
        // /metrics?format=json`, so the two surfaces cannot drift.
        println!("{}", qof::pat::snapshot_to_json(&snap));
        return Ok(ExitCode::SUCCESS);
    }
    println!("queries executed:   {} ({} errors)", snap.queries, snap.query_errors);
    println!(
        "cache hit rate:     {:.1}% ({} hits / {} misses, {} evictions)",
        snap.cache_hit_rate() * 100.0,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_evictions
    );
    println!(
        "plan cache:         {:.1}% hits ({} hits / {} misses)",
        snap.plan_cache_hit_rate() * 100.0,
        snap.plan_cache_hits,
        snap.plan_cache_misses
    );
    for (backend, bytes) in &snap.index_bytes {
        #[allow(clippy::cast_precision_loss)]
        let per_byte =
            if snap.corpus_bytes == 0 { 0.0 } else { *bytes as f64 / snap.corpus_bytes as f64 };
        println!(
            "index bytes:        {bytes} ({backend}) — {per_byte:.3} per corpus byte ({} corpus bytes)",
            snap.corpus_bytes
        );
    }
    let ql = snap.query_latency.summary();
    println!(
        "query latency:      p50 {}  p95 {}  ({} samples)",
        fmt_nanos(ql.p50_nanos),
        fmt_nanos(ql.p95_nanos),
        ql.count
    );
    println!("operator latencies:");
    for (op, h) in &snap.op_latency {
        let s = h.summary();
        println!(
            "  {op:<6} p50 {:>8}  p95 {:>8}  ×{}",
            fmt_nanos(s.p50_nanos),
            fmt_nanos(s.p95_nanos),
            s.count
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The human rendering of a workload snapshot, shared by
/// `qof stats --workload` and the `qof top` pane.
fn render_workload_table(entries: &[qof::pat::WorkloadEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if entries.is_empty() {
        let _ = writeln!(out, "  (no traced queries yet)");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<16} {:>6} {:>9} {:>9} {:>6} {:>6}  exemplar",
        "fingerprint", "hits", "p50", "p95", "plan%", "cache%"
    );
    for e in entries {
        let s = e.latency.summary();
        let pct = |r: Option<f64>| r.map_or("-".to_owned(), |r| format!("{:.0}", r * 100.0));
        let mut q: String = e.exemplar.split_whitespace().collect::<Vec<_>>().join(" ");
        if q.chars().count() > 44 {
            q = q.chars().take(43).collect::<String>() + "…";
        }
        let _ = writeln!(
            out,
            "  {:016x} {:>6} {:>9} {:>9} {:>6} {:>6}  {q}",
            e.fingerprint,
            e.hits,
            fmt_nanos(s.p50_nanos),
            fmt_nanos(s.p95_nanos),
            pct(e.plan_cache_hit_rate()),
            pct(e.cache_hit_rate()),
        );
    }
    out
}

/// Milliseconds since the Unix epoch (the metrics-history time axis).
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// `qof serve` knobs beyond the shared query flags.
struct ServeOpts {
    port: u16,
    log_path: Option<String>,
    qlog_max_bytes: u64,
    slow_ms: u64,
    recorder: usize,
    timeout_ms: u64,
    history_interval_ms: u64,
    slo: Option<String>,
}

/// `qof serve`: loads the corpus once, then serves queries over HTTP until
/// killed (or until `POST /shutdown`). See `qof::server` for endpoints.
fn run_serve(
    schema: StructuringSchema,
    files: &[String],
    index: Option<&str>,
    from_index: Option<&str>,
    threads: usize,
    cache: bool,
    opts: &ServeOpts,
) -> Result<ExitCode, String> {
    use qof::server::{serve, QueryLog, ServerConfig, SloSpec, DEFAULT_QLOG_KEEP};
    if files.is_empty() && from_index.is_none() {
        return Ok(usage());
    }
    let slo = match opts.slo.as_deref() {
        None => None,
        Some(spec) => Some(SloSpec::parse(spec).map_err(|e| format!("--slo: {e}"))?),
    };
    let started = std::time::Instant::now();
    let db = load_db(schema, files, index, from_index)?
        .with_exec_options(ExecOptions { threads: threads.max(1), cache });
    eprintln!(
        "qof serve: {} backend ready in {:.1}ms ({} index bytes)",
        db.backend_label(),
        started.elapsed().as_secs_f64() * 1e3,
        db.index_bytes()
    );
    let log = match opts.log_path.as_deref() {
        None => QueryLog::discard(),
        // The rotating log with a zero cap is a plain append-only file.
        Some(path) => {
            QueryLog::rotating(std::path::Path::new(path), opts.qlog_max_bytes, DEFAULT_QLOG_KEEP)
                .map_err(|e| format!("cannot open log `{path}`: {e}"))?
        }
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let config = ServerConfig {
        slow_ms: opts.slow_ms,
        recorder_capacity: opts.recorder,
        read_timeout_ms: opts.timeout_ms,
        write_timeout_ms: opts.timeout_ms,
        history_interval_ms: opts.history_interval_ms,
        slo,
    };
    let handle = serve(db, listener, log, &config).map_err(|e| e.to_string())?;
    eprintln!("qof serve: listening on http://{}", handle.addr());
    eprintln!("  POST /query            query text in body (?explain=1 for a trace)");
    eprintln!("  GET  /metrics          Prometheus text (?format=json)");
    eprintln!("  GET  /metrics/history  time-series ring (?window=SECONDS)");
    eprintln!("  GET  /healthz          liveness");
    eprintln!("  GET  /flight-recorder  retained traces (/{{id}}, ?format=perfetto)");
    eprintln!("  GET  /workload         per-fingerprint heavy hitters (?format=prometheus)");
    eprintln!("  POST /shutdown");
    handle.wait();
    eprintln!("qof serve: shut down");
    Ok(ExitCode::SUCCESS)
}

/// `qof top`: a live terminal dashboard over a running `qof serve`
/// instance — QPS, latency quantiles, cache hit rates, SLO burn state and
/// the slowest retained queries, refreshed in place with ANSI clears.
/// Scrapes the same HTTP surfaces any monitoring stack would:
/// `/metrics?format=json`, `/metrics/history`, `/healthz` and
/// `/flight-recorder`.
fn run_top(mut rest: Vec<String>) -> Result<ExitCode, String> {
    let mut host = "127.0.0.1".to_owned();
    let mut port: u16 = 7878;
    let mut interval_ms: u64 = 1_000;
    let mut frames: u64 = 0; // 0 = run until interrupted
    let mut once = false;
    loop {
        match rest.first().map(String::as_str) {
            Some("--host") => {
                if rest.len() < 2 {
                    return Ok(usage());
                }
                host = rest[1].clone();
                rest.drain(..2);
            }
            Some("--port") => {
                if rest.len() < 2 {
                    return Ok(usage());
                }
                port = rest[1].parse().map_err(|_| "--port needs a port".to_owned())?;
                rest.drain(..2);
            }
            Some("--interval-ms") => {
                if rest.len() < 2 {
                    return Ok(usage());
                }
                interval_ms =
                    rest[1].parse().map_err(|_| "--interval-ms needs milliseconds".to_owned())?;
                rest.drain(..2);
            }
            Some("--frames") => {
                if rest.len() < 2 {
                    return Ok(usage());
                }
                frames = rest[1].parse().map_err(|_| "--frames needs a count".to_owned())?;
                rest.drain(..2);
            }
            Some("--once") => {
                once = true;
                rest.remove(0);
            }
            Some(_) => return Ok(usage()),
            None => break,
        }
    }
    if once {
        frames = 1;
    }
    use std::net::ToSocketAddrs;
    let addr = format!("{host}:{port}")
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {host}:{port}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {host}:{port}"))?;
    let mut n = 0u64;
    loop {
        n += 1;
        let frame = qof::server::Client::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))
            .and_then(|mut c| top_frame(&mut c, &format!("http://{host}:{port}"), n));
        match frame {
            Ok(text) => {
                if !once {
                    // Clear + home: the dashboard repaints in place.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{text}");
            }
            Err(e) => {
                if once {
                    return Err(e);
                }
                print!("\x1b[2J\x1b[H");
                println!("qof top: {e} (retrying)");
            }
        }
        if frames > 0 && n >= frames {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
    Ok(ExitCode::SUCCESS)
}

/// Scrapes one `qof top` frame. Every document it reads is produced by
/// this workspace's own writers, parsed back with `qof::pat::json`.
fn top_frame(client: &mut qof::server::Client, base: &str, frame: u64) -> Result<String, String> {
    use qof::pat::json::{get, get_arr, get_f64, get_str, get_u64, Json};
    use std::fmt::Write as _;

    fn fetch(client: &mut qof::server::Client, path: &str) -> Result<Json, String> {
        let (status, body) = client.get(path)?;
        if status != 200 {
            return Err(format!("GET {path} → HTTP {status}"));
        }
        Json::parse(&body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
    }

    let health = fetch(client, "/healthz")?;
    let metrics = fetch(client, "/metrics?format=json")?;
    let history = fetch(client, "/metrics/history?window=60")?;
    let recorder = fetch(client, "/flight-recorder")?;
    let workload = fetch(client, "/workload")?;

    let mut out = String::new();
    let h = health.as_obj().ok_or("healthz: not an object")?;
    let uptime_ms = get_u64(h, "uptime_ms")?;
    let _ = writeln!(
        out,
        "qof top — {base} — uptime {} — frame {frame}",
        fmt_nanos(uptime_ms.saturating_mul(1_000_000))
    );
    out.push('\n');

    let m = metrics.as_obj().ok_or("metrics: not an object")?;
    let queries = get_u64(m, "queries")?;
    let errors = get_u64(m, "query_errors")?;
    let lat = get(m, "query_latency")?.as_obj().ok_or("metrics: query_latency")?;

    // QPS over the trailing 60 s window: the history ring's deltas give
    // both the numerator and the covered wall time.
    let hist = history.as_obj().ok_or("history: not an object")?;
    let samples = get_arr(hist, "samples")?;
    if samples.is_empty() {
        // Without this the dashboard renders an all-zero frame with no
        // explanation; the usual cause is a sampler that was never started.
        return Err("metrics history is empty — the server's sampler has not recorded a tick \
                    (a server started with --history-interval-ms 0 never samples; restart it \
                    with a positive interval)"
            .to_owned());
    }
    let mut win_queries = 0u64;
    let mut win_errors = 0u64;
    let mut win_ms = 0u64;
    for s in samples {
        let s = s.as_obj().ok_or("history: sample")?;
        win_queries += get_u64(s, "queries")?;
        win_errors += get_u64(s, "query_errors")?;
        win_ms += get_u64(s, "dur_ms")?;
    }
    #[allow(clippy::cast_precision_loss)]
    let qps = if win_ms == 0 { 0.0 } else { win_queries as f64 * 1_000.0 / win_ms as f64 };
    let _ = writeln!(
        out,
        "queries   {queries} total ({errors} errors) — {qps:.1} q/s over {} samples/60s \
         ({win_queries} queries, {win_errors} errors)",
        samples.len()
    );
    let _ = writeln!(
        out,
        "latency   p50 {}   p95 {}",
        fmt_nanos(get_u64(lat, "p50_nanos")?),
        fmt_nanos(get_u64(lat, "p95_nanos")?)
    );
    let _ = writeln!(
        out,
        "caches    subexpr {:.1}% hit   plan {:.1}% hit",
        get_f64(m, "cache_hit_rate")? * 100.0,
        get_f64(m, "plan_cache_hit_rate")? * 100.0
    );

    // SLO state rides in the history envelope when `--slo` is declared.
    if let Ok(slo) = get(hist, "slo") {
        let s = slo.as_obj().ok_or("history: slo")?;
        let mut line = String::from("slo       ");
        for name in ["latency", "error"] {
            if let Ok(obj) = get(s, name) {
                let o = obj.as_obj().ok_or("history: slo objective")?;
                let _ = write!(
                    line,
                    "{name} burn {:.2}/{:.2}{}   ",
                    get_f64(o, "burn_short")?,
                    get_f64(o, "burn_long")?,
                    if get(o, "breached")? == &Json::Bool(true) { " BREACH" } else { "" }
                );
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }

    // Slowest retained queries, across both flight-recorder rings.
    let rec = recorder.as_obj().ok_or("recorder: not an object")?;
    let mut slow: Vec<(u64, u64, String)> = Vec::new();
    for ring in ["recent", "slow"] {
        for t in get_arr(rec, ring)? {
            let t = t.as_obj().ok_or("recorder: trace")?;
            let id = get_u64(t, "id")?;
            if slow.iter().all(|(have, _, _)| *have != id) {
                slow.push((id, get_u64(t, "total_nanos")?, get_str(t, "query")?));
            }
        }
    }
    slow.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    slow.truncate(5);
    out.push('\n');
    let _ = writeln!(out, "slowest retained queries");
    if slow.is_empty() {
        let _ = writeln!(out, "  (none yet)");
    }
    for (id, nanos, query) in &slow {
        let mut q: String = query.split_whitespace().collect::<Vec<_>>().join(" ");
        if q.chars().count() > 60 {
            q = q.chars().take(59).collect::<String>() + "…";
        }
        let _ = writeln!(out, "  #{id:<5} {:>9}  {q}", fmt_nanos(*nanos));
    }

    // Hottest query shapes, from the server's workload table.
    let w = workload.as_obj().ok_or("workload: not an object")?;
    let entries = get_arr(w, "entries")?;
    out.push('\n');
    let _ = writeln!(out, "hot query shapes (by fingerprint)");
    if entries.is_empty() {
        let _ = writeln!(out, "  (none yet)");
    }
    for e in entries.iter().take(5) {
        let e = e.as_obj().ok_or("workload: entry")?;
        let lat = get(e, "latency")?.as_obj().ok_or("workload: latency")?;
        let mut q: String = get_str(e, "exemplar")?;
        if q.chars().count() > 44 {
            q = q.chars().take(43).collect::<String>() + "…";
        }
        let _ = writeln!(
            out,
            "  {} ×{:<5} p95 {:>9}  {q}",
            get_str(e, "fingerprint")?,
            get_u64(e, "hits")?,
            fmt_nanos(get_u64(lat, "p95_nanos")?),
        );
    }
    Ok(out)
}

/// Minimal JSON string escaping for the `check --json` envelope (query
/// strings only — diagnostics serialize themselves).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-scaled duration (histogram quantiles are bucket upper bounds).
#[allow(clippy::cast_precision_loss)]
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return Ok(usage());
    };
    match cmd {
        "generate" => {
            let (Some(schema), Some(count)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let count: usize = count.parse().map_err(|_| "count must be a number".to_owned())?;
            let text = generate_by_name(schema, count)
                .ok_or_else(|| format!("unknown schema `{schema}`"))?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "rig" => {
            let Some(name) = args.get(1) else { return Ok(usage()) };
            let schema = schema_by_name(name).ok_or_else(|| format!("unknown schema `{name}`"))?;
            let full = Rig::from_grammar(&schema.grammar);
            match args.get(2) {
                None => print!("{full}"),
                Some(names) => {
                    let indexed = names.split(',').map(|s| s.trim().to_owned()).collect();
                    print!("{}", full.partial(&indexed));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "query" | "explain" | "stats" | "serve" => {
            let Some(name) = args.get(1) else { return Ok(usage()) };
            let schema = schema_by_name(name).ok_or_else(|| format!("unknown schema `{name}`"))?;
            let mut rest: Vec<String> = args[2..].to_vec();
            let mut index: Option<String> = None;
            let mut from_index: Option<String> = None;
            let mut threads: usize = 1;
            let mut cache = false;
            let mut strict = false;
            let mut explain_analyze = false;
            let mut trace_json: Option<String> = None;
            let mut trace_perfetto: Option<String> = None;
            let mut json = false;
            let mut history = false;
            let mut workload = false;
            let mut port: u16 = 7878;
            let mut log_path: Option<String> = None;
            let mut qlog_max_bytes: u64 = 0;
            let mut slow_ms: u64 = 100;
            let mut recorder: usize = 64;
            let mut timeout_ms: u64 = 30_000;
            let mut history_interval_ms: u64 = 1_000;
            let mut slo: Option<String> = None;
            loop {
                match rest.first().map(String::as_str) {
                    Some("--index") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        index = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--from-index") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        from_index = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--threads") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        threads = rest[1]
                            .parse()
                            .map_err(|_| "--threads needs a positive number".to_owned())?;
                        rest.drain(..2);
                    }
                    Some("--cache") => {
                        cache = true;
                        rest.remove(0);
                    }
                    Some("--strict") => {
                        strict = true;
                        rest.remove(0);
                    }
                    Some("--explain-analyze") => {
                        explain_analyze = true;
                        rest.remove(0);
                    }
                    Some("--trace-json") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        trace_json = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--trace-perfetto") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        trace_perfetto = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--json") => {
                        json = true;
                        rest.remove(0);
                    }
                    Some("--history") => {
                        history = true;
                        rest.remove(0);
                    }
                    Some("--workload") => {
                        workload = true;
                        rest.remove(0);
                    }
                    Some("--port") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        port = rest[1].parse().map_err(|_| "--port needs a port".to_owned())?;
                        rest.drain(..2);
                    }
                    Some("--log") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        log_path = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--slow-ms") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        slow_ms =
                            rest[1].parse().map_err(|_| "--slow-ms needs a number".to_owned())?;
                        rest.drain(..2);
                    }
                    Some("--recorder") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        recorder = rest[1]
                            .parse()
                            .map_err(|_| "--recorder needs a capacity".to_owned())?;
                        rest.drain(..2);
                    }
                    Some("--timeout-ms") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        timeout_ms = rest[1].parse().map_err(|_| {
                            "--timeout-ms needs milliseconds (0 disables)".to_owned()
                        })?;
                        rest.drain(..2);
                    }
                    Some("--qlog-max-bytes") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        qlog_max_bytes = rest[1].parse().map_err(|_| {
                            "--qlog-max-bytes needs a byte count (0 disables rotation)".to_owned()
                        })?;
                        rest.drain(..2);
                    }
                    Some("--history-interval-ms") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        history_interval_ms = rest[1].parse().map_err(|_| {
                            "--history-interval-ms needs milliseconds (0 disables)".to_owned()
                        })?;
                        rest.drain(..2);
                    }
                    Some("--slo") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        slo = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    _ => break,
                }
            }
            if cmd == "stats" {
                return run_stats(
                    schema,
                    rest,
                    index.as_deref(),
                    from_index.as_deref(),
                    threads,
                    cache,
                    json,
                    history,
                    workload,
                );
            }
            if cmd == "serve" {
                let opts = ServeOpts {
                    port,
                    log_path,
                    qlog_max_bytes,
                    slow_ms,
                    recorder,
                    timeout_ms,
                    history_interval_ms,
                    slo,
                };
                return run_serve(
                    schema,
                    &rest,
                    index.as_deref(),
                    from_index.as_deref(),
                    threads,
                    cache,
                    &opts,
                );
            }
            let Some((query, files)) = rest.split_last() else { return Ok(usage()) };
            if files.is_empty() && from_index.is_none() {
                return Ok(usage());
            }
            let db = load_db(schema, files, index.as_deref(), from_index.as_deref())?
                .with_exec_options(ExecOptions { threads: threads.max(1), cache })
                .with_strict(strict);
            if cmd == "explain" {
                print!("{}", db.explain(query).map_err(|e| e.to_string())?);
            } else if explain_analyze || trace_json.is_some() || trace_perfetto.is_some() {
                let (res, trace) = db.query_traced(query).map_err(|e| e.to_string())?;
                if let Some(path) = &trace_json {
                    std::fs::write(path, trace.to_json())
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                }
                if let Some(path) = &trace_perfetto {
                    // Chrome trace-event JSON: open the file in
                    // https://ui.perfetto.dev or chrome://tracing.
                    std::fs::write(path, qof::trace_to_perfetto(&trace))
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                }
                if explain_analyze {
                    // EXPLAIN ANALYZE executes the query but shows the
                    // annotated plan instead of the rows.
                    print!("{}", trace.render());
                } else {
                    for v in &res.values {
                        println!("{v}");
                    }
                    let wrote: Vec<&str> = [trace_json.as_deref(), trace_perfetto.as_deref()]
                        .into_iter()
                        .flatten()
                        .collect();
                    eprintln!("-- trace written to {}", wrote.join(", "));
                }
            } else {
                let res = db.query(query).map_err(|e| e.to_string())?;
                for v in &res.values {
                    println!("{v}");
                }
                eprintln!(
                    "-- {} results; exact index: {}; {}; parsed {} bytes",
                    res.values.len(),
                    res.stats.exact_index,
                    res.stats.eval,
                    res.stats.parse.bytes_scanned
                );
                if cache {
                    let cs = db.cache_stats();
                    eprintln!(
                        "-- cache: {} hits / {} misses ({} entries)",
                        cs.hits, cs.misses, cs.entries
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "top" => run_top(args[1..].to_vec()),
        "qlog" => match args.get(1).map(String::as_str) {
            Some("analyze") => {
                let mut rest: Vec<String> = args[2..].to_vec();
                let json = rest.iter().any(|a| a == "--json");
                rest.retain(|a| a != "--json");
                let [path] = rest.as_slice() else { return Ok(usage()) };
                let report = qof::server::analyze_qlog(std::path::Path::new(path))
                    .map_err(|e| format!("cannot read `{path}` chain: {e}"))?;
                if json {
                    println!("{}", qof::server::report_json(&report));
                } else {
                    print!("{}", qof::server::render_report(&report));
                }
                // A broken id chain is worth a nonzero exit: rotation lost
                // or reordered lines, which CI should catch.
                Ok(if report.ids_contiguous() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
            }
            _ => Ok(usage()),
        },
        "index" => match args.get(1).map(String::as_str) {
            Some("build") => {
                let Some(name) = args.get(2) else { return Ok(usage()) };
                let schema =
                    schema_by_name(name).ok_or_else(|| format!("unknown schema `{name}`"))?;
                let mut rest: Vec<String> = args[3..].to_vec();
                let mut index: Option<String> = None;
                let mut out: Option<String> = None;
                loop {
                    match rest.first().map(String::as_str) {
                        Some("--index") => {
                            if rest.len() < 2 {
                                return Ok(usage());
                            }
                            index = Some(rest[1].clone());
                            rest.drain(..2);
                        }
                        Some("--out") => {
                            if rest.len() < 2 {
                                return Ok(usage());
                            }
                            out = Some(rest[1].clone());
                            rest.drain(..2);
                        }
                        _ => break,
                    }
                }
                let Some(out) = out else { return Ok(usage()) };
                if rest.is_empty() {
                    return Ok(usage());
                }
                let db = build_db(schema, &rest, index.as_deref())?;
                let bytes = db.persist(&out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
                let corpus_bytes = u64::from(db.corpus().len());
                // The container embeds the corpus text (that is what makes
                // reopen O(1)); the index proper is everything beyond it.
                let index_bytes = bytes.saturating_sub(corpus_bytes);
                #[allow(clippy::cast_precision_loss)]
                let per_byte =
                    if corpus_bytes == 0 { 0.0 } else { index_bytes as f64 / corpus_bytes as f64 };
                eprintln!(
                    "qof index build: wrote {out} ({bytes} bytes: {corpus_bytes} corpus + \
                     {index_bytes} index, {per_byte:.3} index bytes per corpus byte, \
                     {} postings, {} region names)",
                    db.word_index().postings(),
                    db.instance().name_count()
                );
                Ok(ExitCode::SUCCESS)
            }
            Some("inspect") => {
                let Some(path) = args.get(2) else { return Ok(usage()) };
                let summary = qof::inspect_qofx(std::path::Path::new(path))
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("file:           {path}");
                println!("format version: {}", summary.version);
                println!("file bytes:     {}", summary.file_bytes);
                println!("checksum:       {:#018x} (valid)", summary.checksum);
                println!("files:          {}", summary.files);
                println!("corpus bytes:   {}", summary.corpus_bytes);
                println!("distinct words: {}", summary.distinct_words);
                println!("postings:       {}", summary.postings);
                println!("region names:   {}", summary.region_names);
                println!("regions:        {}", summary.regions);
                println!("full index:     {}", summary.full_index);
                println!("case folding:   {}", summary.case_fold);
                println!("scoped words:   {}", summary.scoped);
                Ok(ExitCode::SUCCESS)
            }
            _ => Ok(usage()),
        },
        "check" => {
            let Some(name) = args.get(1) else { return Ok(usage()) };
            let schema = schema_by_name(name).ok_or_else(|| format!("unknown schema `{name}`"))?;
            let mut rest: Vec<String> = args[2..].to_vec();
            let mut index: Option<String> = None;
            let mut json = false;
            let mut strict = false;
            loop {
                match rest.first().map(String::as_str) {
                    Some("--index") => {
                        if rest.len() < 2 {
                            return Ok(usage());
                        }
                        index = Some(rest[1].clone());
                        rest.drain(..2);
                    }
                    Some("--json") => {
                        json = true;
                        rest.remove(0);
                    }
                    Some("--strict") => {
                        strict = true;
                        rest.remove(0);
                    }
                    _ => break,
                }
            }
            let spec = match index.as_deref() {
                None => IndexSpec::full(),
                Some(names) => IndexSpec::names(names.split(',').map(str::trim)),
            };
            // Schema- and index-level lints need no file at all.
            let schema_diags = qof::check_schema(&schema);
            let index_diags = qof::check_index(&schema, &spec);
            // `checks` collects (target, query, diagnostics) triples; the
            // JSON envelope and the human renderer share this data model.
            let mut checks: Vec<(&str, Option<&String>, Vec<qof::Diagnostic>)> =
                vec![("schema", None, schema_diags), ("index", None, index_diags)];
            // Query lints run against a tiny generated corpus: the planner
            // needs an index instance, but never reads file content.
            if !rest.is_empty() {
                let text = generate_by_name(name, 3).expect("known schema");
                let db = FileDatabase::build(Corpus::from_text(&text), schema, spec)
                    .map_err(|e| e.to_string())?
                    .with_strict(strict);
                for query in &rest {
                    checks.push(("query", Some(query), db.check(query)));
                }
            }
            let errors = checks
                .iter()
                .flat_map(|(_, _, ds)| ds)
                .filter(|d| d.severity == Severity::Error)
                .count();
            let warnings = checks
                .iter()
                .flat_map(|(_, _, ds)| ds)
                .filter(|d| d.severity == Severity::Warning)
                .count();
            if json {
                let mut out = String::from("{\"schema_version\":1,\"checks\":[");
                for (i, (target, query, ds)) in checks.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"target\":\"{target}\""));
                    if let Some(q) = query {
                        out.push_str(&format!(",\"query\":\"{}\"", json_escape(q)));
                    }
                    out.push_str(",\"diagnostics\":[");
                    let body: Vec<String> = ds.iter().map(qof::Diagnostic::to_json).collect();
                    out.push_str(&body.join(","));
                    out.push_str("]}");
                }
                out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
                println!("{out}");
            } else {
                for (_, query, ds) in &checks {
                    match query {
                        Some(q) => {
                            println!("-- {q}");
                            for d in ds {
                                print!("{}", d.render(Some(q)));
                            }
                            if ds.is_empty() {
                                println!("clean");
                            }
                        }
                        None => {
                            for d in ds {
                                print!("{}", d.render(None));
                            }
                        }
                    }
                }
            }
            Ok(if errors > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS })
        }
        "advise" => {
            let Some(name) = args.get(1) else { return Ok(usage()) };
            let schema = schema_by_name(name).ok_or_else(|| format!("unknown schema `{name}`"))?;
            let mut rest: Vec<String> = args[2..].to_vec();
            let costed = rest.first().map(String::as_str) == Some("--costed");
            if costed {
                rest.remove(0);
            }
            // With `--costed`, leading arguments naming readable files form
            // the corpus the statistics come from; everything else is a
            // query. Without files, statistics come from a small generated
            // sample of the schema's format.
            let (files, query_srcs): (Vec<String>, Vec<String>) =
                rest.into_iter().partition(|a| std::path::Path::new(a).is_file());
            let queries: Vec<_> = query_srcs
                .iter()
                .map(|q| parse_query(q).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            if queries.is_empty() {
                return Ok(usage());
            }
            let rig = Rig::from_grammar(&schema.grammar);
            let advice = if costed {
                let db = if files.is_empty() {
                    let text = generate_by_name(name, 20).expect("known schema");
                    FileDatabase::build(Corpus::from_text(&text), schema.clone(), IndexSpec::full())
                        .map_err(|e| e.to_string())?
                } else {
                    build_db(schema.clone(), &files, None)?
                };
                advise_costed(&schema, &rig, &queries, db.stats_store())
            } else {
                advise(&schema, &rig, &queries)
            };
            println!("index set: {}", advice.index_set.into_iter().collect::<Vec<_>>().join(","));
            for note in &advice.notes {
                println!("note: {note}");
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
