#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # qof — Querying files through text indexes
//!
//! A reproduction of Consens & Milo, *Optimizing Queries on Files*
//! (SIGMOD 1994). This facade crate re-exports the whole stack:
//!
//! * [`text`] — corpus, tokenizer, word index, PAT suffix array;
//! * [`pat`] — the region algebra engine (§3.1);
//! * [`db`] — the in-memory object database (baseline substrate);
//! * [`grammar`] — structuring schemas (§4);
//! * [`corpus`] — synthetic corpora with ground truths;
//! * [`server`] — the `qof serve` HTTP query server (metrics, query log,
//!   flight recorder);
//! * the core items (query language, RIG, optimizer, planner, executor,
//!   baseline, index advisor) at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use qof::{FileDatabase, corpus::bibtex};
//! use qof::grammar::IndexSpec;
//! use qof::text::Corpus;
//!
//! let (text, _truth) = bibtex::generate(&bibtex::BibtexConfig::with_refs(20));
//! let fdb = FileDatabase::build(
//!     Corpus::from_text(&text),
//!     bibtex::schema(),
//!     IndexSpec::full(),
//! ).unwrap();
//! let result = fdb
//!     .query("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"")
//!     .unwrap();
//! assert!(result.stats.exact_index);
//! ```

pub use qof_core::*;

/// Corpus model, tokenizer, word index and PAT suffix array.
pub mod text {
    pub use qof_text::*;
}

/// The PAT-style region algebra engine.
pub mod pat {
    pub use qof_pat::*;
}

/// The in-memory object database.
pub mod db {
    pub use qof_db::*;
}

/// Structuring schemas: grammars, parser, value building, extraction.
pub mod grammar {
    pub use qof_grammar::*;
}

/// Synthetic corpora (BibTeX, mail, logs, SGML) with ground truths.
pub mod corpus {
    pub use qof_corpus::*;
}

/// The long-running query server (`qof serve`): HTTP endpoints, Prometheus
/// metrics, structured query log, flight recorder.
pub mod server {
    pub use qof_server::*;
}
