//! Cost accounting for region-expression evaluation. The paper's efficiency
//! arguments (§6, §7) are about *how much data must be scanned*; the engine
//! therefore counts index work and text bytes touched, and the benchmark
//! harness reports these counters next to wall-clock times.

use std::collections::BTreeMap;
use std::fmt;

/// Counters accumulated while evaluating region expressions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of operator applications, per operator symbol.
    pub op_counts: BTreeMap<&'static str, u64>,
    /// Total regions produced by all operator applications.
    pub regions_produced: u64,
    /// Total regions consumed as operator inputs.
    pub regions_consumed: u64,
    /// Word-index lookups performed.
    pub word_probes: u64,
    /// Match points retrieved from the word index.
    pub match_points: u64,
    /// Bytes of file text actually read (σ never reads text; parsing of
    /// candidate regions, recorded by higher layers, does).
    pub bytes_scanned: u64,
}

impl EvalStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one application of operator `op` with the given input and
    /// output cardinalities.
    pub fn record_op(&mut self, op: &'static str, consumed: usize, produced: usize) {
        *self.op_counts.entry(op).or_insert(0) += 1;
        self.regions_consumed += consumed as u64;
        self.regions_produced += produced as u64;
    }

    /// Records a word-index probe that yielded `points` match points.
    pub fn record_word_probe(&mut self, points: usize) {
        self.word_probes += 1;
        self.match_points += points as u64;
    }

    /// Records `n` bytes of file text read.
    pub fn record_scan(&mut self, n: u64) {
        self.bytes_scanned += n;
    }

    /// Total operator applications.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.values().sum()
    }

    /// Number of applications of a specific operator.
    pub fn ops(&self, op: &str) -> u64 {
        self.op_counts.get(op).copied().unwrap_or(0)
    }

    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &EvalStats) {
        for (k, v) in &other.op_counts {
            *self.op_counts.entry(k).or_insert(0) += v;
        }
        self.regions_produced += other.regions_produced;
        self.regions_consumed += other.regions_consumed;
        self.word_probes += other.word_probes;
        self.match_points += other.match_points;
        self.bytes_scanned += other.bytes_scanned;
    }
}

/// Observed per-operator output cardinalities — the feedback half of a
/// cost model. Static estimates (index statistics pushed through the
/// operators) predict cardinalities before a query runs; every traced run
/// then [`observe`](CardObservations::observe)s what each operator really
/// produced, and the running means calibrate future estimates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CardObservations {
    /// Per operator label: `(observations, mean output cardinality)`.
    per_op: BTreeMap<String, (u64, f64)>,
}

impl CardObservations {
    /// No observations yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operator application that produced `output` regions
    /// (running mean, numerically stable for long-lived servers).
    #[allow(clippy::cast_precision_loss)]
    pub fn observe(&mut self, op: &str, output: u64) {
        let entry = self.per_op.entry(op.to_owned()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += (output as f64 - entry.1) / entry.0 as f64;
    }

    /// Mean observed output cardinality of `op`, if ever observed.
    pub fn mean(&self, op: &str) -> Option<f64> {
        self.per_op.get(op).map(|&(_, mean)| mean)
    }

    /// Number of observations recorded for `op`.
    pub fn count(&self, op: &str) -> u64 {
        self.per_op.get(op).map_or(0, |&(n, _)| n)
    }

    /// Total observations across all operators.
    pub fn total(&self) -> u64 {
        self.per_op.values().map(|&(n, _)| n).sum()
    }

    /// Merges another observation block into this one (weighted means).
    #[allow(clippy::cast_precision_loss)]
    pub fn absorb(&mut self, other: &CardObservations) {
        for (op, &(n, mean)) in &other.per_op {
            let entry = self.per_op.entry(op.clone()).or_insert((0, 0.0));
            let total = entry.0 + n;
            if total > 0 {
                entry.1 = (entry.1 * entry.0 as f64 + mean * n as f64) / total as f64;
            }
            entry.0 = total;
        }
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops={} regions(in={}, out={}) word_probes={} match_points={} bytes_scanned={}",
            self.total_ops(),
            self.regions_consumed,
            self.regions_produced,
            self.word_probes,
            self.match_points,
            self.bytes_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = EvalStats::new();
        s.record_op("⊃", 10, 3);
        s.record_op("⊃", 5, 1);
        s.record_op("σ", 3, 2);
        s.record_word_probe(7);
        s.record_scan(100);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.ops("⊃"), 2);
        assert_eq!(s.ops("∪"), 0);
        assert_eq!(s.regions_consumed, 18);
        assert_eq!(s.regions_produced, 6);
        assert_eq!(s.word_probes, 1);
        assert_eq!(s.match_points, 7);
        assert_eq!(s.bytes_scanned, 100);
    }

    #[test]
    fn absorb_merges() {
        let mut a = EvalStats::new();
        a.record_op("⊃", 1, 1);
        let mut b = EvalStats::new();
        b.record_op("⊃", 2, 2);
        b.record_op("∩", 4, 1);
        b.record_scan(5);
        a.absorb(&b);
        assert_eq!(a.ops("⊃"), 2);
        assert_eq!(a.ops("∩"), 1);
        assert_eq!(a.bytes_scanned, 5);
        assert_eq!(a.regions_consumed, 7);
    }

    #[test]
    fn observations_track_running_means() {
        let mut o = CardObservations::new();
        assert_eq!(o.mean("⊃"), None);
        o.observe("⊃", 10);
        o.observe("⊃", 20);
        o.observe("σ", 4);
        assert!((o.mean("⊃").unwrap() - 15.0).abs() < 1e-9);
        assert_eq!(o.count("⊃"), 2);
        assert_eq!(o.total(), 3);
        let mut other = CardObservations::new();
        other.observe("⊃", 60);
        o.absorb(&other);
        assert!((o.mean("⊃").unwrap() - 30.0).abs() < 1e-9, "weighted merge");
        assert_eq!(o.count("⊃"), 3);
    }

    #[test]
    fn display_is_one_line() {
        let s = EvalStats::new();
        let text = s.to_string();
        assert!(text.contains("ops=0"));
        assert!(!text.contains('\n'));
    }
}
