//! Execution tracing and process-wide metrics for the region algebra.
//!
//! Two instruments live here:
//!
//! * [`TraceSink`] / [`OpTrace`] — a per-evaluation operator trace. The
//!   engine, when a sink is attached ([`Engine::with_trace`]), records one
//!   tree node per operator application: monotonic wall time, input/output
//!   region-set cardinalities, text bytes scanned, word-index probes, and
//!   whether the node was answered from the local memo or the shared
//!   [`SubexprCache`](crate::SubexprCache). With no sink attached the hot
//!   path pays a single branch on an `Option` — nothing is allocated and
//!   nothing is timed.
//! * [`MetricsRegistry`] — process-wide counters and latency histograms
//!   (queries executed, cache hit ratio, per-operator p50/p95), the
//!   substrate for `qof stats` and for future server work. Counters are
//!   relaxed atomics; histograms use fixed log₂ buckets so recording never
//!   allocates.
//!
//! [`Engine::with_trace`]: crate::Engine::with_trace

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Where a traced node's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Computed by applying the operator.
    Computed,
    /// Served by the per-`eval` memo (§5.2 sharing within one expression).
    LocalMemo,
    /// Served by the shared cross-query [`SubexprCache`](crate::SubexprCache).
    SharedCache,
}

impl CacheSource {
    /// Stable lowercase label (used by the JSON export).
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Computed => "computed",
            CacheSource::LocalMemo => "memo",
            CacheSource::SharedCache => "shared",
        }
    }

    /// Parses a [`CacheSource::label`] back.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "computed" => CacheSource::Computed,
            "memo" => CacheSource::LocalMemo,
            "shared" => CacheSource::SharedCache,
            _ => return None,
        })
    }
}

/// One node of an operator trace: a single operator application with its
/// cost, in tree position (children are the operand evaluations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Span id, unique within one trace. The sink assigns ids in `enter`
    /// order starting from 1; when a query trace is assembled from several
    /// sinks (main engine + shards) the assembler renumbers them so the
    /// whole trace stays collision-free. 0 means "never stamped".
    pub span_id: u64,
    /// Start of this span on the sink's monotonic timeline: nanoseconds
    /// since the sink's origin instant. Spans recorded by sinks sharing an
    /// origin (the executor hands one to every shard) are directly
    /// comparable.
    pub start_nanos: u64,
    /// Operator label: the algebra symbol (`⊃`, `σ`, `∪`, …) or the leaf
    /// kind (`name`, `word`, `prefix`), matching the keys of
    /// [`EvalStats::op_counts`](crate::EvalStats).
    pub op: String,
    /// Operator argument, when one exists: the region name of a `name`
    /// leaf, the quoted constant of a `word`/`σ` node, a `near` gap.
    pub detail: String,
    /// Regions consumed from the operand sets (0 for leaves).
    pub input: usize,
    /// Regions in the produced set.
    pub output: usize,
    /// Inclusive wall time of this node, nanoseconds (monotonic clock).
    pub nanos: u64,
    /// Text bytes scanned inside this node and its children.
    pub bytes: u64,
    /// Word-index probes inside this node and its children.
    pub probes: u64,
    /// Where the result came from.
    pub source: CacheSource,
    /// Operand evaluations (empty for leaves and cache hits).
    pub children: Vec<OpTrace>,
}

impl Default for OpTrace {
    fn default() -> Self {
        Self {
            span_id: 0,
            start_nanos: 0,
            op: String::new(),
            detail: String::new(),
            input: 0,
            output: 0,
            nanos: 0,
            bytes: 0,
            probes: 0,
            source: CacheSource::Computed,
            children: Vec::new(),
        }
    }
}

impl OpTrace {
    /// Wall time spent in this node exclusive of its children.
    pub fn self_nanos(&self) -> u64 {
        self.nanos.saturating_sub(self.children.iter().map(|c| c.nanos).sum())
    }

    /// End of this span on its sink's timeline (`start_nanos + nanos`).
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.nanos)
    }

    /// Total nodes in this subtree (itself included).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(OpTrace::node_count).sum::<usize>()
    }

    /// Walks the subtree pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&OpTrace)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Collects a hierarchical span tree during one or more engine
/// evaluations.
///
/// The sink keeps a stack of open frames mirroring the evaluator's
/// recursion; [`TraceSink::enter`] opens a span (stamping its start on the
/// sink's monotonic timeline and assigning its id), [`TraceSink::exit`]
/// closes it and files the finished node under its parent. Completed
/// top-level evaluations accumulate as roots until [`TraceSink::take`].
///
/// The sink — not the caller — is authoritative for timing: `enter` stamps
/// `start_nanos`, `exit`/`exit_with` stamp the duration from the matching
/// `enter`. Because the engine is single-threaded per sink, this makes the
/// span-tree invariants true *by construction*: every child interval nests
/// within its parent and sibling spans never overlap. Shard workers each
/// attach their own sink; handing every sink the same origin instant
/// ([`TraceSink::with_origin`]) puts all spans on one shared timeline.
#[derive(Debug)]
pub struct TraceSink {
    frames: RefCell<Vec<Vec<OpTrace>>>,
    /// Open spans as `(span_id, start_nanos)`, parallel to the frames
    /// opened by `enter`.
    open: RefCell<Vec<(u64, u64)>>,
    next_id: Cell<u64>,
    origin: Instant,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// An empty sink whose timeline starts now.
    pub fn new() -> Self {
        Self::with_origin(Instant::now())
    }

    /// An empty sink stamping spans relative to `origin` — the executor
    /// hands one origin to the main engine's sink and every shard's sink
    /// so all spans of one query share a timeline.
    pub fn with_origin(origin: Instant) -> Self {
        Self {
            frames: RefCell::new(vec![Vec::new()]),
            open: RefCell::new(Vec::new()),
            next_id: Cell::new(1),
            origin,
        }
    }

    /// Nanoseconds elapsed on this sink's timeline.
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn fresh_id(&self) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// Opens a span for an operator application about to run: stamps its
    /// start time and assigns its id.
    pub fn enter(&self) {
        self.frames.borrow_mut().push(Vec::new());
        let id = self.fresh_id();
        self.open.borrow_mut().push((id, self.now_nanos()));
    }

    /// Closes the innermost span: the finished node adopts the children
    /// recorded inside the span, receives the sink's id and interval for
    /// the span (overriding whatever the caller put in `span_id` /
    /// `start_nanos` / `nanos`), and is filed under the enclosing span (or
    /// as a root).
    pub fn exit(&self, mut node: OpTrace) {
        node.children = self.frames.borrow_mut().pop().unwrap_or_default();
        self.stamp(&mut node);
        self.file(node);
    }

    /// Like [`TraceSink::exit`], but the caller builds the node *from* the
    /// recorded children (e.g. to derive the input cardinality as the sum
    /// of child outputs before filing). Timing fields the builder sets are
    /// overridden by the sink's stamps.
    pub fn exit_with(&self, build: impl FnOnce(Vec<OpTrace>) -> OpTrace) {
        let children = self.frames.borrow_mut().pop().unwrap_or_default();
        let mut node = build(children);
        self.stamp(&mut node);
        self.file(node);
    }

    /// Records a childless node (a cache hit or a leaf observed whole):
    /// assigns an id and stamps its start at the current instant, keeping
    /// the caller's duration (cache hits record 0 — a zero-width span).
    pub fn leaf(&self, mut node: OpTrace) {
        node.span_id = self.fresh_id();
        node.start_nanos = self.now_nanos();
        self.file(node);
    }

    /// Fills the timing fields of a node closing the innermost open span.
    fn stamp(&self, node: &mut OpTrace) {
        let end = self.now_nanos();
        // An unbalanced exit (no matching `enter`) still gets a fresh id
        // and a zero-width interval rather than being lost.
        let (id, start) = self.open.borrow_mut().pop().unwrap_or_else(|| (self.fresh_id(), end));
        node.span_id = id;
        node.start_nanos = start;
        node.nanos = end.saturating_sub(start);
    }

    fn file(&self, node: OpTrace) {
        let mut frames = self.frames.borrow_mut();
        match frames.last_mut() {
            Some(parent) => parent.push(node),
            None => frames.push(vec![node]),
        }
    }

    /// Takes the completed root nodes, leaving the sink empty and reusable
    /// (the timeline origin and id sequence carry on).
    pub fn take(&self) -> Vec<OpTrace> {
        let mut frames = self.frames.borrow_mut();
        let roots = if frames.is_empty() { Vec::new() } else { std::mem::take(&mut frames[0]) };
        *frames = vec![Vec::new()];
        self.open.borrow_mut().clear();
        roots
    }
}

// ---------------------------------------------------------------------------
// Metrics: histograms and the process-wide registry.
// ---------------------------------------------------------------------------

/// Number of log₂ latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket is open-ended (≳ 9 min).
pub const HISTOGRAM_BUCKETS: usize = 40;
const BUCKETS: usize = HISTOGRAM_BUCKETS;

/// A fixed-bucket log₂ latency histogram. Recording is allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, nanos: u64) {
        let b = (64 - u64::leading_zeros(nanos.max(1)) as usize - 1).min(BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += nanos;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the upper bound of the bucket
    /// holding the q-th sample, so the estimate is within 2× of the true
    /// value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// Merges another histogram into this one (bucket-wise sums; lossless).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The bucket-wise difference `self − earlier` — the histogram of just
    /// the samples recorded since `earlier` was snapshotted (the history
    /// ring's delta encoding). Saturating, so a reset between snapshots
    /// degrades to a partial delta instead of underflowing.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            out.buckets[i] = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Samples recorded above `threshold_nanos`, bucket-granular: a sample
    /// counts once its entire bucket lies at or above the threshold, so
    /// the answer is exact when the threshold is a bucket boundary (a
    /// power of two) and within one bucket (2×) otherwise — the same
    /// resolution as [`Histogram::quantile`]. The SLO burn-rate evaluator
    /// uses this to count latency-budget violations.
    pub fn count_over(&self, threshold_nanos: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| (1u64 << i) >= threshold_nanos)
            .map(|(_, &n)| n)
            .sum()
    }

    /// The raw per-bucket sample counts (not cumulative), bucket `i`
    /// covering `[2^i, 2^(i+1))` nanoseconds and the last bucket open-ended.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Exclusive upper bound of bucket `i` in nanoseconds, or `None` for
    /// the open-ended last bucket (Prometheus `+Inf`).
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << (i + 1))
        } else {
            None
        }
    }
}

/// An immutable summary of one histogram, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_nanos: u64,
    /// Approximate median, nanoseconds.
    pub p50_nanos: u64,
    /// Approximate 95th percentile, nanoseconds.
    pub p95_nanos: u64,
}

impl Histogram {
    /// Count / sum / p50 / p95 snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum_nanos: self.sum,
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
        }
    }
}

/// Counters and histograms for one engine's workload. A process-wide
/// instance exists ([`MetricsRegistry::global`]); embedders (tests,
/// servers) hold private registries via [`MetricsRegistry::shared`] so
/// concurrent engines never share mutable counters.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    queries: AtomicU64,
    query_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    query_latency: Mutex<Histogram>,
    op_latency: Mutex<BTreeMap<String, Histogram>>,
    index_bytes: Mutex<BTreeMap<String, u64>>,
    corpus_bytes: AtomicU64,
    history: crate::history::MetricsHistory,
}

/// A point-in-time copy of a [`MetricsRegistry`]: counters plus the *full*
/// latency histograms, so every reporting surface (the CLI's `qof stats`,
/// the server's Prometheus `/metrics`) renders from one struct and cannot
/// drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries executed (successes and failures).
    pub queries: u64,
    /// Queries that returned an error.
    pub query_errors: u64,
    /// Shared-cache hits observed.
    pub cache_hits: u64,
    /// Shared-cache misses observed.
    pub cache_misses: u64,
    /// Shared-cache entries evicted to stay under the cache caps.
    pub cache_evictions: u64,
    /// Optimized-plan cache hits (whole plans reused across requests).
    pub plan_cache_hits: u64,
    /// Optimized-plan cache misses (plans optimized and certified fresh).
    pub plan_cache_misses: u64,
    /// End-to-end query latency.
    pub query_latency: Histogram,
    /// Per-operator latency, keyed by operator label.
    pub op_latency: BTreeMap<String, Histogram>,
    /// Resident index footprint in bytes, keyed by backend label
    /// (`mem`, `qofx`) — a gauge, set by whichever database last
    /// published its footprint into this registry.
    pub index_bytes: BTreeMap<String, u64>,
    /// Corpus text size in bytes behind the published index (gauge).
    pub corpus_bytes: u64,
}

impl MetricsSnapshot {
    /// Fraction of cache lookups that hit (0 when never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }

    /// Fraction of plan-cache lookups that hit (0 when never consulted).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.plan_cache_hits as f64 / total as f64
            }
        }
    }
}

impl MetricsRegistry {
    /// A fresh, private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh, private registry behind a shareable handle — what a server
    /// instance or a test injects into its `FileDatabase` so concurrent
    /// workloads never share counters.
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(Self::new())
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        global_arc_ref()
    }

    /// A shareable handle to the process-wide registry (the default a
    /// `FileDatabase` records into when nothing else is injected).
    pub fn global_arc() -> Arc<MetricsRegistry> {
        Arc::clone(global_arc_ref())
    }

    /// Records one executed query and its end-to-end latency.
    pub fn record_query(&self, nanos: u64, ok: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.query_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.query_latency.lock().expect("metrics lock poisoned").record(nanos);
    }

    /// Accumulates shared-cache hit/miss deltas.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Accumulates a shared-cache eviction delta.
    pub fn record_cache_evictions(&self, evictions: u64) {
        self.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }

    /// Publishes a database's index footprint: the resident bytes of its
    /// word-index backend (gauge semantics — set, not add) and the corpus
    /// bytes it indexes. A database re-publishes after every mutation and
    /// whenever a registry is injected, so scrapes always see the current
    /// backend's footprint.
    pub fn record_index_bytes(&self, backend: &str, bytes: u64, corpus_bytes: u64) {
        let mut map = self.index_bytes.lock().expect("metrics lock poisoned");
        map.clear();
        map.insert(backend.to_owned(), bytes);
        self.corpus_bytes.store(corpus_bytes, Ordering::Relaxed);
    }

    /// Records one optimized-plan cache lookup.
    pub fn record_plan_cache(&self, hit: bool) {
        if hit {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accumulates plan-cache hit/miss deltas (one planning pass can
    /// consult the cache once per lowered chain).
    pub fn record_plan_cache_delta(&self, hits: u64, misses: u64) {
        self.plan_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.plan_cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Records one operator application's latency under its label.
    pub fn record_op(&self, op: &str, nanos: u64) {
        let mut map = self.op_latency.lock().expect("metrics lock poisoned");
        match map.get_mut(op) {
            Some(h) => h.record(nanos),
            None => {
                let mut h = Histogram::new();
                h.record(nanos);
                map.insert(op.to_owned(), h);
            }
        }
    }

    /// Folds every node of an operator trace into the per-op histograms
    /// (exclusive times, so parents don't double-count their children).
    pub fn record_op_trace(&self, roots: &[OpTrace]) {
        for root in roots {
            root.walk(&mut |node| {
                if node.source == CacheSource::Computed {
                    self.record_op(&node.op, node.self_nanos());
                }
            });
        }
    }

    /// The registry's time-series history ring.
    pub fn history(&self) -> &crate::history::MetricsHistory {
        &self.history
    }

    /// Takes a snapshot and records its delta into the history ring,
    /// stamped with the caller's wall clock (milliseconds since the Unix
    /// epoch). Called once per interval by the server's snapshot ticker
    /// or by `qof stats --history`; never on the query hot path.
    pub fn record_history_sample(&self, ts_ms: u64) {
        self.history.record(ts_ms, self.snapshot());
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            query_latency: self.query_latency.lock().expect("metrics lock poisoned").clone(),
            op_latency: self.op_latency.lock().expect("metrics lock poisoned").clone(),
            index_bytes: self.index_bytes.lock().expect("metrics lock poisoned").clone(),
            corpus_bytes: self.corpus_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter and histogram (tests; `qof stats` baselines).
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.query_errors.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
        *self.query_latency.lock().expect("metrics lock poisoned") = Histogram::new();
        self.op_latency.lock().expect("metrics lock poisoned").clear();
        self.index_bytes.lock().expect("metrics lock poisoned").clear();
        self.corpus_bytes.store(0, Ordering::Relaxed);
        self.history.clear();
    }
}

/// The process-wide registry, held behind an `Arc` so embedders can clone
/// a handle ([`MetricsRegistry::global_arc`]) and borrowers can keep the
/// `&'static` view ([`MetricsRegistry::global`]).
fn global_arc_ref() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(op: &str, nanos: u64) -> OpTrace {
        OpTrace { op: op.into(), nanos, ..OpTrace::default() }
    }

    #[test]
    fn sink_builds_nested_tree() {
        let sink = TraceSink::new();
        sink.enter(); // ⊃
        sink.enter(); // name A
        sink.exit(node("name A", 0));
        sink.enter(); // name B
        sink.exit(node("name B", 0));
        sink.exit(node("⊃", 0));
        let roots = sink.take();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].op, "⊃");
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[0].op, "name A");
        assert_eq!(roots[0].node_count(), 3);
        // The sink is reusable after take().
        sink.enter();
        sink.exit(node("σ", 0));
        assert_eq!(sink.take().len(), 1);
    }

    #[test]
    fn sink_stamps_span_ids_and_nested_intervals() {
        let sink = TraceSink::new();
        sink.enter(); // ⊃ — span 1
        sink.enter(); // name A — span 2
        sink.exit(node("name A", 0));
        sink.enter(); // name B — span 3
        sink.exit(node("name B", 0));
        sink.exit(node("⊃", 0));
        let roots = sink.take();
        let root = &roots[0];
        assert_eq!(root.span_id, 1);
        assert_eq!(root.children[0].span_id, 2);
        assert_eq!(root.children[1].span_id, 3);
        // Children nest within the parent interval …
        for c in &root.children {
            assert!(c.start_nanos >= root.start_nanos, "{c:?} starts before {root:?}");
            assert!(c.end_nanos() <= root.end_nanos(), "{c:?} ends after {root:?}");
        }
        // … and siblings on one thread never overlap.
        let (a, b) = (&root.children[0], &root.children[1]);
        assert!(a.end_nanos() <= b.start_nanos, "siblings overlap: {a:?} vs {b:?}");
        // Exclusive time is well-defined: the sink's stamps make the
        // children's durations sum to no more than the parent's.
        assert!(root.nanos >= a.nanos + b.nanos);
        assert_eq!(root.self_nanos(), root.nanos - a.nanos - b.nanos);
    }

    #[test]
    fn sinks_sharing_an_origin_share_a_timeline() {
        let origin = Instant::now();
        let first = TraceSink::with_origin(origin);
        first.enter();
        first.exit(node("σ", 0));
        let second = TraceSink::with_origin(origin);
        second.enter();
        second.exit(node("∪", 0));
        let a = first.take().pop().unwrap();
        let b = second.take().pop().unwrap();
        // The second sink was created after the first span closed, so its
        // span starts no earlier on the shared timeline.
        assert!(b.start_nanos >= a.start_nanos);
    }

    #[test]
    fn sink_collects_multiple_roots_and_leaves() {
        let sink = TraceSink::new();
        sink.enter();
        sink.exit(node("∪", 0));
        sink.leaf(node("memo-hit", 0));
        let roots = sink.take();
        assert_eq!(roots.len(), 2);
        // Leaves get ids from the same sequence and a zero-width interval.
        assert_eq!(roots[1].span_id, 2);
        assert_eq!(roots[1].nanos, 0);
        assert!(roots[1].start_nanos >= roots[0].end_nanos());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::new();
        for _ in 0..95 {
            h.record(1_000); // ~2^10
        }
        for _ in 0..5 {
            h.record(1_000_000); // ~2^20
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert!((1_000..=2_048).contains(&p50), "p50 = {p50}");
        let p95 = h.quantile(0.95);
        assert!(p95 <= 2_048, "p95 falls in the 1µs bucket: {p95}");
        let p99 = h.quantile(0.99);
        assert!((1_000_000..=2_097_152).contains(&p99), "p99 = {p99}");
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_lossless() {
        let mut a = Histogram::new();
        a.record(100);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1 << 30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 200 + (1 << 30));
        let s = a.summary();
        assert_eq!(s.count, 3);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.record_query(1_000, true);
        reg.record_query(2_000, false);
        reg.record_cache(3, 1);
        reg.record_op("⊃", 500);
        reg.record_op("⊃", 700);
        reg.record_op("σ", 80);
        let s = reg.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.query_errors, 1);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.op_latency["⊃"].count(), 2);
        assert_eq!(s.op_latency["σ"].count(), 1);
        assert_eq!(s.query_latency.count(), 2);
        reg.reset();
        let s = reg.snapshot();
        assert_eq!(s.queries, 0);
        assert!(s.op_latency.is_empty());
    }

    #[test]
    fn record_op_trace_uses_exclusive_times_and_skips_cache_hits() {
        let reg = MetricsRegistry::new();
        let mut parent = node("⊃", 100);
        parent.children.push(node("name A", 30));
        let mut hit = node("σ", 20);
        hit.source = CacheSource::SharedCache;
        parent.children.push(hit);
        reg.record_op_trace(&[parent]);
        let s = reg.snapshot();
        // ⊃ recorded with 100 − 30 − 20 = 50ns exclusive; σ (cache hit) not
        // recorded at all.
        assert_eq!(s.op_latency["⊃"].count(), 1);
        assert!(!s.op_latency.contains_key("σ"));
        assert_eq!(s.op_latency["name A"].count(), 1);
    }

    #[test]
    fn plan_cache_and_eviction_counters_flow_to_snapshot() {
        let reg = MetricsRegistry::new();
        reg.record_plan_cache(false);
        reg.record_plan_cache(true);
        reg.record_plan_cache(true);
        reg.record_cache_evictions(4);
        let s = reg.snapshot();
        assert_eq!((s.plan_cache_hits, s.plan_cache_misses, s.cache_evictions), (2, 1, 4));
        assert!((s.plan_cache_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        reg.reset();
        let s = reg.snapshot();
        assert_eq!((s.plan_cache_hits, s.plan_cache_misses, s.cache_evictions), (0, 0, 0));
        assert!(s.plan_cache_hit_rate().abs() < 1e-9);
    }

    #[test]
    fn cache_source_labels_round_trip() {
        for s in [CacheSource::Computed, CacheSource::LocalMemo, CacheSource::SharedCache] {
            assert_eq!(CacheSource::from_label(s.label()), Some(s));
        }
        assert_eq!(CacheSource::from_label("nope"), None);
    }
}
