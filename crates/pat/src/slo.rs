//! Service-level objectives over the metrics history ring: declared
//! latency/error targets (`--slo p95=50ms,err=0.1%`) evaluated as
//! multi-window burn rates.
//!
//! The arithmetic follows the standard error-budget formulation. A `p95 ≤
//! T` objective implicitly budgets 5% of requests to run slower than `T`;
//! an `err ≤ B` objective budgets a `B` fraction of requests to fail. The
//! *burn rate* of a window is the observed bad fraction divided by the
//! budgeted fraction — 1.0 means the budget is being consumed exactly as
//! fast as it accrues, 10 means ten times too fast. A single window is
//! either too twitchy (short) or too slow to clear (long), so the
//! evaluator checks two: an objective is **breached** only when both the
//! short window (default 1 min) and the long window (default 5 min) burn
//! at or above the threshold — fast enough to page on a real regression,
//! self-clearing once the regression stops.

use crate::history::MetricsHistory;

/// Default short burn window, milliseconds (1 minute).
pub const DEFAULT_SHORT_WINDOW_MS: u64 = 60_000;
/// Default long burn window, milliseconds (5 minutes).
pub const DEFAULT_LONG_WINDOW_MS: u64 = 300_000;
/// Default burn-rate threshold: budget consumed exactly at accrual speed.
pub const DEFAULT_BURN_THRESHOLD: f64 = 1.0;
/// The tail fraction a p95 objective budgets for slow requests.
pub const P95_BUDGET_FRACTION: f64 = 0.05;

/// Parsed service-level objectives (`--slo p95=50ms,err=0.1%`). Either
/// objective may be absent; windows and threshold carry defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Latency objective: p95 must stay at or under this many nanoseconds.
    pub p95_nanos: Option<u64>,
    /// Error objective: the failing fraction must stay at or under this
    /// budget (0.001 = 0.1%).
    pub error_budget: Option<f64>,
    /// Short burn window, milliseconds.
    pub short_window_ms: u64,
    /// Long burn window, milliseconds.
    pub long_window_ms: u64,
    /// Burn rate at or above which a window counts as burning.
    pub burn_threshold: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            p95_nanos: None,
            error_budget: None,
            short_window_ms: DEFAULT_SHORT_WINDOW_MS,
            long_window_ms: DEFAULT_LONG_WINDOW_MS,
            burn_threshold: DEFAULT_BURN_THRESHOLD,
        }
    }
}

impl SloSpec {
    /// Parses the `--slo` flag syntax: comma-separated `key=value` pairs.
    /// `p95` takes a duration (`50ms`, `1.5s`, `250us`, `80000ns`); `err`
    /// takes a percentage (`0.1%`) or a bare fraction (`0.001`). Unknown
    /// keys and malformed values are errors — an SLO silently dropped is
    /// worse than none.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        let mut any = false;
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("`{part}`: expected key=value"))?;
            match key.trim() {
                "p95" => spec.p95_nanos = Some(parse_duration_nanos(value.trim())?),
                "err" => spec.error_budget = Some(parse_fraction(value.trim())?),
                other => {
                    return Err(format!("unknown SLO key `{other}` (expected `p95` or `err`)"));
                }
            }
            any = true;
        }
        if !any {
            return Err("empty SLO spec (expected e.g. `p95=50ms,err=0.1%`)".into());
        }
        Ok(spec)
    }

    /// Human-readable restatement of the objectives, for logs and `qof
    /// top` headers.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(nanos) = self.p95_nanos {
            parts.push(format!("p95≤{}", fmt_duration(nanos)));
        }
        if let Some(budget) = self.error_budget {
            parts.push(format!("err≤{}%", budget * 100.0));
        }
        parts.join(", ")
    }

    /// Evaluates both objectives over the history ring's short and long
    /// trailing windows ending at `now_ms`.
    pub fn evaluate(&self, history: &MetricsHistory, now_ms: u64) -> SloStatus {
        let short = history.window(self.short_window_ms, now_ms);
        let long = history.window(self.long_window_ms, now_ms);
        let latency = self.p95_nanos.map(|threshold| {
            let burn_short = short.slow_rate(threshold) / P95_BUDGET_FRACTION;
            let burn_long = long.slow_rate(threshold) / P95_BUDGET_FRACTION;
            ObjectiveStatus {
                burn_short,
                burn_long,
                breached: short.queries > 0
                    && burn_short >= self.burn_threshold
                    && burn_long >= self.burn_threshold,
            }
        });
        let error = self.error_budget.map(|budget| {
            let budget = budget.max(f64::MIN_POSITIVE);
            let burn_short = short.error_rate() / budget;
            let burn_long = long.error_rate() / budget;
            ObjectiveStatus {
                burn_short,
                burn_long,
                breached: short.queries > 0
                    && burn_short >= self.burn_threshold
                    && burn_long >= self.burn_threshold,
            }
        });
        SloStatus { latency, error }
    }
}

/// Burn rates of one objective over the two windows, plus the combined
/// verdict (both windows burning ⇒ breached).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObjectiveStatus {
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// Whether both windows burn at or above the threshold (with actual
    /// traffic in the short window — an idle server breaches nothing).
    pub breached: bool,
}

/// The evaluated SLO state: one [`ObjectiveStatus`] per declared
/// objective.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloStatus {
    /// The latency (p95) objective, when declared.
    pub latency: Option<ObjectiveStatus>,
    /// The error-rate objective, when declared.
    pub error: Option<ObjectiveStatus>,
}

impl SloStatus {
    /// Whether any declared objective is breached.
    pub fn breached(&self) -> bool {
        self.latency.is_some_and(|o| o.breached) || self.error.is_some_and(|o| o.breached)
    }

    /// One-line summary for the query log's WARN line and `qof top`:
    /// `latency burn 2.4/1.8 BREACH; error burn 0.0/0.0 ok`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if let Some(o) = self.latency {
            parts.push(format!(
                "latency burn {:.1}/{:.1} {}",
                o.burn_short,
                o.burn_long,
                if o.breached { "BREACH" } else { "ok" }
            ));
        }
        if let Some(o) = self.error {
            parts.push(format!(
                "error burn {:.1}/{:.1} {}",
                o.burn_short,
                o.burn_long,
                if o.breached { "BREACH" } else { "ok" }
            ));
        }
        parts.join("; ")
    }
}

/// `"50ms"` → nanoseconds. Accepts `ns`, `us`/`µs`, `ms`, `s`, decimals.
fn parse_duration_nanos(text: &str) -> Result<u64, String> {
    let (number, scale) = if let Some(n) = text.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = text.strip_suffix("µs") {
        (n, 1e3)
    } else if let Some(n) = text.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = text.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = text.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("`{text}`: missing duration unit (ns/us/ms/s)"));
    };
    let value: f64 =
        number.trim().parse().map_err(|_| format!("`{text}`: not a valid duration"))?;
    if !value.is_finite() || value <= 0.0 {
        return Err(format!("`{text}`: duration must be positive"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok((value * scale) as u64)
}

/// `"0.1%"` or `"0.001"` → fraction in `(0, 1]`.
fn parse_fraction(text: &str) -> Result<f64, String> {
    let (number, scale) =
        if let Some(n) = text.strip_suffix('%') { (n, 0.01) } else { (text, 1.0) };
    let value: f64 = number.trim().parse().map_err(|_| format!("`{text}`: not a valid rate"))?;
    let fraction = value * scale;
    if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
        return Err(format!("`{text}`: error budget must be in (0%, 100%]"));
    }
    Ok(fraction)
}

/// Nanoseconds → the shortest unambiguous unit, for `describe`.
#[allow(clippy::cast_precision_loss)]
fn fmt_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 && nanos.is_multiple_of(1_000_000_000) {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos >= 1_000_000 {
        format!("{}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn parses_the_flag_syntax() {
        let spec = SloSpec::parse("p95=50ms,err=0.1%").unwrap();
        assert_eq!(spec.p95_nanos, Some(50_000_000));
        let budget = spec.error_budget.unwrap();
        assert!((budget - 0.001).abs() < 1e-12, "{budget}");
        assert_eq!(SloSpec::parse("p95=1.5s").unwrap().p95_nanos, Some(1_500_000_000));
        assert_eq!(SloSpec::parse("p95=250us").unwrap().p95_nanos, Some(250_000));
        assert!((SloSpec::parse("err=0.02").unwrap().error_budget.unwrap() - 0.02).abs() < 1e-12);
        assert!(SloSpec::parse("p99=1ms").is_err());
        assert!(SloSpec::parse("p95=50").is_err());
        assert!(SloSpec::parse("err=150%").is_err());
        assert!(SloSpec::parse("").is_err());
        assert_eq!(SloSpec::parse("p95=50ms,err=0.1%").unwrap().describe(), "p95≤50ms, err≤0.1%");
    }

    #[test]
    fn burn_rate_breaches_only_when_both_windows_burn() {
        // Threshold at a bucket boundary (2^20 ns ≈ 1.05 ms) so count_over
        // is exact: 1024µs-bucket samples are "fast", ≥2^20 are "slow".
        let spec = SloSpec { p95_nanos: Some(1 << 20), ..SloSpec::default() };
        let reg = MetricsRegistry::new();
        // Long window: 4 minutes of all-fast traffic (60 queries).
        for t in 1..=4u64 {
            for _ in 0..15 {
                reg.record_query(1_000, true);
            }
            reg.record_history_sample(t * 60_000);
        }
        let status = spec.evaluate(reg.history(), 240_000);
        let lat = status.latency.unwrap();
        assert!(!lat.breached, "{lat:?}");
        assert!(lat.burn_short.abs() < 1e-9);
        // Fifth minute: every query blows the latency target. The short
        // window burns at 1/0.05 = 20×; the long window (15 slow of 75)
        // at 0.2/0.05 = 4×. Both over threshold ⇒ breach.
        for _ in 0..15 {
            reg.record_query(1 << 21, true);
        }
        reg.record_history_sample(300_000);
        let status = spec.evaluate(reg.history(), 300_000);
        let lat = status.latency.unwrap();
        assert!((lat.burn_short - 20.0).abs() < 1e-9, "{lat:?}");
        assert!((lat.burn_long - 4.0).abs() < 1e-9, "{lat:?}");
        assert!(lat.breached);
        assert!(status.breached());
        assert!(status.summary().contains("latency burn 20.0/4.0 BREACH"));
    }

    #[test]
    fn error_objective_and_idle_windows() {
        let spec = SloSpec::parse("err=10%").unwrap();
        let reg = MetricsRegistry::new();
        // Idle: no traffic, no breach, burn 0.
        reg.record_history_sample(1_000);
        let status = spec.evaluate(reg.history(), 1_000);
        let err = status.error.unwrap();
        assert!(!err.breached);
        assert!(err.burn_short.abs() < 1e-9);
        // 50% errors against a 10% budget: burn 5× in both windows.
        for i in 0..10 {
            reg.record_query(1_000, i % 2 == 0);
        }
        reg.record_history_sample(2_000);
        let status = spec.evaluate(reg.history(), 2_000);
        let err = status.error.unwrap();
        assert!((err.burn_short - 5.0).abs() < 1e-9, "{err:?}");
        assert!(err.breached);
        assert!(status.latency.is_none());
    }
}
