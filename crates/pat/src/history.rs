//! Time-series metrics history: a fixed-size ring of periodic,
//! delta-encoded snapshots of the [`MetricsRegistry`] counters and the
//! query-latency histogram.
//!
//! Monotonic counters answer "how many so far"; they cannot answer "what
//! happened at 14:32" or "is p95 degrading". The history ring closes that
//! gap without an external scraper: a ticker (the server's snapshot
//! thread, or `qof stats --history` sampling inline) calls
//! [`MetricsRegistry::record_history_sample`] at a fixed interval, and the
//! ring stores the *delta* since the previous sample — interval counters
//! plus an interval latency [`Histogram`] — so rates and
//! quantiles-over-time fall out of simple sums. Memory is bounded by
//! construction: `capacity × sizeof(HistorySample)` (§ DESIGN.md 14 does
//! the sizing math; the default ring holds 10 minutes at one sample per
//! second in well under 256 KiB).
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::{Histogram, MetricsSnapshot};

/// Default number of samples the ring keeps: 10 minutes at the default
/// one-second sampling interval.
pub const DEFAULT_HISTORY_CAPACITY: usize = 600;

/// One delta-encoded history sample: what happened during the interval
/// `[ts_ms − dur_ms, ts_ms]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySample {
    /// Wall-clock timestamp of the sample, milliseconds since the Unix
    /// epoch (stamped by the caller — the registry keeps no clock).
    pub ts_ms: u64,
    /// Interval this sample covers, milliseconds (0 for the first sample
    /// after a reset, which anchors the timeline without covering time).
    pub dur_ms: u64,
    /// Queries executed during the interval.
    pub queries: u64,
    /// Queries that errored during the interval.
    pub query_errors: u64,
    /// Shared-cache hits during the interval.
    pub cache_hits: u64,
    /// Shared-cache misses during the interval.
    pub cache_misses: u64,
    /// Plan-cache hits during the interval.
    pub plan_cache_hits: u64,
    /// Plan-cache misses during the interval.
    pub plan_cache_misses: u64,
    /// Latency histogram of the queries recorded during the interval.
    pub latency: Histogram,
}

/// An aggregate over a trailing window of [`HistorySample`]s: interval
/// deltas summed and interval histograms merged, so QPS / error rate /
/// p95-over-the-window are one method call away.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryWindow {
    /// Samples aggregated.
    pub samples: usize,
    /// Wall-clock time covered, milliseconds (sum of sample intervals).
    pub dur_ms: u64,
    /// Queries executed in the window.
    pub queries: u64,
    /// Queries that errored in the window.
    pub query_errors: u64,
    /// Shared-cache hits in the window.
    pub cache_hits: u64,
    /// Shared-cache misses in the window.
    pub cache_misses: u64,
    /// Plan-cache hits in the window.
    pub plan_cache_hits: u64,
    /// Plan-cache misses in the window.
    pub plan_cache_misses: u64,
    /// Merged latency histogram of the window.
    pub latency: Histogram,
}

impl HistoryWindow {
    /// Queries per second over the window (0 when the window covers no
    /// time).
    pub fn qps(&self) -> f64 {
        if self.dur_ms == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.queries as f64 / (self.dur_ms as f64 / 1_000.0)
            }
        }
    }

    /// Fraction of the window's queries that errored (0 when idle).
    pub fn error_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.query_errors as f64 / self.queries as f64
            }
        }
    }

    /// Fraction of the window's queries slower than `threshold_nanos`
    /// (bucket-granular, like [`Histogram::count_over`]; 0 when idle).
    pub fn slow_rate(&self, threshold_nanos: u64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.latency.count_over(threshold_nanos) as f64 / self.latency.count().max(1) as f64
            }
        }
    }
}

/// The bounded ring of [`HistorySample`]s plus the cumulative baseline the
/// next delta is computed against. One mutex guards both — sampling is a
/// once-per-interval event, never on the query hot path.
#[derive(Debug)]
pub struct MetricsHistory {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

#[derive(Debug, Default)]
struct HistoryInner {
    samples: VecDeque<HistorySample>,
    /// Cumulative counter values at the previous sample (the delta base).
    base: Option<MetricsSnapshot>,
    last_ts_ms: u64,
}

impl Default for MetricsHistory {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_HISTORY_CAPACITY)
    }
}

impl MetricsHistory {
    /// A ring holding at most `capacity` samples (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), inner: Mutex::new(HistoryInner::default()) }
    }

    /// Maximum samples the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("history lock poisoned").samples.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records the delta between `snapshot` and the previous sample's
    /// cumulative baseline, stamped `ts_ms`. The oldest sample is dropped
    /// once the ring is full. Counters that moved backwards (a registry
    /// reset between samples) re-anchor: the current cumulative values are
    /// taken as the delta.
    pub fn record(&self, ts_ms: u64, snapshot: MetricsSnapshot) {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        let dur_ms = if inner.base.is_some() { ts_ms.saturating_sub(inner.last_ts_ms) } else { 0 };
        let sample = match &inner.base {
            Some(base) if base.queries <= snapshot.queries => HistorySample {
                ts_ms,
                dur_ms,
                queries: snapshot.queries - base.queries,
                query_errors: snapshot.query_errors.saturating_sub(base.query_errors),
                cache_hits: snapshot.cache_hits.saturating_sub(base.cache_hits),
                cache_misses: snapshot.cache_misses.saturating_sub(base.cache_misses),
                plan_cache_hits: snapshot.plan_cache_hits.saturating_sub(base.plan_cache_hits),
                plan_cache_misses: snapshot
                    .plan_cache_misses
                    .saturating_sub(base.plan_cache_misses),
                latency: snapshot.query_latency.diff(&base.query_latency),
            },
            // First sample, or the registry was reset: anchor on the
            // current cumulative values.
            _ => HistorySample {
                ts_ms,
                dur_ms,
                queries: snapshot.queries,
                query_errors: snapshot.query_errors,
                cache_hits: snapshot.cache_hits,
                cache_misses: snapshot.cache_misses,
                plan_cache_hits: snapshot.plan_cache_hits,
                plan_cache_misses: snapshot.plan_cache_misses,
                latency: snapshot.query_latency.clone(),
            },
        };
        if inner.samples.len() == self.capacity {
            inner.samples.pop_front();
        }
        inner.samples.push_back(sample);
        inner.base = Some(snapshot);
        inner.last_ts_ms = ts_ms;
    }

    /// The samples whose timestamp falls inside the trailing window
    /// `(now_ms − window_ms, now_ms]`, oldest first. `window_ms == 0`
    /// returns everything retained.
    pub fn samples(&self, window_ms: u64, now_ms: u64) -> Vec<HistorySample> {
        let cutoff = if window_ms == 0 { 0 } else { now_ms.saturating_sub(window_ms) };
        let inner = self.inner.lock().expect("history lock poisoned");
        inner.samples.iter().filter(|s| s.ts_ms > cutoff || window_ms == 0).cloned().collect()
    }

    /// Aggregates the trailing window into one [`HistoryWindow`].
    pub fn window(&self, window_ms: u64, now_ms: u64) -> HistoryWindow {
        let mut agg = HistoryWindow::default();
        for s in self.samples(window_ms, now_ms) {
            agg.samples += 1;
            agg.dur_ms += s.dur_ms;
            agg.queries += s.queries;
            agg.query_errors += s.query_errors;
            agg.cache_hits += s.cache_hits;
            agg.cache_misses += s.cache_misses;
            agg.plan_cache_hits += s.plan_cache_hits;
            agg.plan_cache_misses += s.plan_cache_misses;
            agg.latency.merge(&s.latency);
        }
        agg
    }

    /// Drops every sample and the delta baseline.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        inner.samples.clear();
        inner.base = None;
        inner.last_ts_ms = 0;
    }

    /// Resident bytes of a full ring (capacity × sample size) — the number
    /// bench `a4` reports as the history footprint.
    pub fn approx_max_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<HistorySample>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn samples_are_deltas_not_cumulative() {
        let reg = MetricsRegistry::new();
        reg.record_query(1_000, true);
        reg.record_query(2_000, true);
        reg.record_history_sample(1_000);
        reg.record_query(4_000, false);
        reg.record_history_sample(2_000);
        let samples = reg.history().samples(0, 2_000);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].queries, 2);
        assert_eq!(samples[0].dur_ms, 0, "first sample anchors the timeline");
        assert_eq!(samples[1].queries, 1);
        assert_eq!(samples[1].query_errors, 1);
        assert_eq!(samples[1].dur_ms, 1_000);
        assert_eq!(samples[1].latency.count(), 1);
        assert_eq!(samples[1].latency.sum(), 4_000);
    }

    #[test]
    fn ring_is_bounded_and_window_filters_by_time() {
        let history = MetricsHistory::with_capacity(3);
        let reg = MetricsRegistry::new();
        for i in 1..=5u64 {
            reg.record_query(1_000, true);
            history.record(i * 1_000, reg.snapshot());
        }
        assert_eq!(history.len(), 3);
        let all = history.samples(0, 5_000);
        assert_eq!(all.first().map(|s| s.ts_ms), Some(3_000));
        // A 2-second trailing window at t=5s keeps ts ∈ {4000, 5000}.
        let w = history.window(2_000, 5_000);
        assert_eq!(w.samples, 2);
        assert_eq!(w.queries, 2);
        assert_eq!(w.dur_ms, 2_000);
        assert!((w.qps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_reanchors_instead_of_underflowing() {
        let reg = MetricsRegistry::new();
        reg.record_query(1_000, true);
        reg.record_history_sample(1_000);
        reg.reset();
        reg.record_query(2_000, true);
        reg.record_history_sample(2_000);
        let samples = reg.history().samples(0, 2_000);
        // History was cleared by reset; the post-reset sample re-anchors.
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].queries, 1);
    }

    #[test]
    fn window_rates() {
        let mut w = HistoryWindow {
            samples: 1,
            dur_ms: 2_000,
            queries: 10,
            query_errors: 1,
            ..HistoryWindow::default()
        };
        for _ in 0..9 {
            w.latency.record(1_000);
        }
        w.latency.record(1 << 20);
        assert!((w.qps() - 5.0).abs() < 1e-9);
        assert!((w.error_rate() - 0.1).abs() < 1e-9);
        assert!((w.slow_rate(1 << 12) - 0.1).abs() < 1e-9);
        assert!(HistoryWindow::default().qps().abs() < 1e-9);
        assert!(HistoryWindow::default().error_rate().abs() < 1e-9);
    }

    #[test]
    fn footprint_is_bounded_by_capacity() {
        let history = MetricsHistory::with_capacity(600);
        // The DESIGN.md §14 sizing claim: a 10-minute ring stays small.
        assert!(history.approx_max_bytes() < 512 * 1024, "{}", history.approx_max_bytes());
    }
}
