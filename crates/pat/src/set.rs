//! Sorted, duplicate-free sets of regions and the set-level operators of the
//! region algebra: `∪ ∩ −`, `ι` (innermost), `ω` (outermost), `⊃` / `⊂`
//! (inclusion) and their strict variants.
//!
//! The representation is a `Vec<Region>` in canonical sweep order (ascending
//! start, descending end at equal starts). Every operator runs in
//! `O(n + m)` or `O((n + m) log n)` over sorted inputs, mirroring the
//! set-at-a-time evaluation style of the PAT engine.

use crate::Region;
use qof_text::Pos;
use std::fmt;

/// A set of regions, ordered canonically, with no duplicates. Overlapping
/// and nested members are allowed ("no restrictions on overlaps", §3.1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from arbitrary regions: sorts canonically and dedups.
    pub fn from_regions(mut regions: Vec<Region>) -> Self {
        regions.sort_unstable();
        regions.dedup();
        Self { regions }
    }

    /// Builds a set from regions already in canonical order (debug-checked).
    pub fn from_sorted(regions: Vec<Region>) -> Self {
        debug_assert!(regions.windows(2).all(|w| w[0] < w[1]), "input not in canonical order");
        Self { regions }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the set has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions in canonical order.
    pub fn as_slice(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Region> {
        self.regions.iter()
    }

    /// Membership test (binary search).
    pub fn contains(&self, r: &Region) -> bool {
        self.regions.binary_search(r).is_ok()
    }

    /// Total bytes covered, counting overlaps once (used by scan accounting).
    pub fn covered_bytes(&self) -> u64 {
        let mut total = 0u64;
        let mut covered_to: Pos = 0;
        for r in &self.regions {
            let from = r.start.max(covered_to);
            if r.end > from {
                total += u64::from(r.end - from);
                covered_to = r.end;
            }
        }
        total
    }

    /// Sum of region lengths (overlaps counted multiply).
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| u64::from(r.len())).sum()
    }

    /// Set union.
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.len() && j < other.len() {
            match self.regions[i].cmp(&other.regions[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.regions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.regions[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.regions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.regions[i..]);
        out.extend_from_slice(&other.regions[j..]);
        RegionSet { regions: out }
    }

    /// Set intersection (regions equal as begin/end pairs).
    ///
    /// Adaptive: skewed operand sizes (|A| ≪ |B|) switch from the linear
    /// sweep to galloping (exponential) search over the larger side, so
    /// the cost is `O(min·log max)` instead of `O(min + max)` — the
    /// posting-list intersection strategy of the compressed-index
    /// literature, applied to the region algebra's `∩`.
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        let (small, large) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        if gallop_pays_off(small.len(), large.len()) {
            let mut out = Vec::with_capacity(small.len());
            let mut lo = 0usize;
            for r in &small.regions {
                lo += gallop_to(&large.regions[lo..], r);
                if large.regions.get(lo) == Some(r) {
                    out.push(*r);
                    lo += 1;
                }
            }
            return RegionSet { regions: out };
        }
        self.intersect_sweep(other)
    }

    /// The naive linear-merge intersection — the oracle the adaptive
    /// [`intersect`](Self::intersect) is property-tested against.
    pub fn intersect_sweep(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.len() && j < other.len() {
            match self.regions[i].cmp(&other.regions[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.regions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RegionSet { regions: out }
    }

    /// Set difference `self − other`.
    ///
    /// Adaptive like [`intersect`](Self::intersect): when the subtrahend
    /// dwarfs `self`, each of `self`'s regions gallops into `other`
    /// instead of sweeping past its bulk. (The skew only pays off in that
    /// direction — every region of `self` is visited regardless.)
    pub fn difference(&self, other: &RegionSet) -> RegionSet {
        if gallop_pays_off(self.len(), other.len()) {
            let mut out = Vec::new();
            let mut lo = 0usize;
            for r in &self.regions {
                lo += gallop_to(&other.regions[lo..], r);
                if other.regions.get(lo) == Some(r) {
                    lo += 1;
                } else {
                    out.push(*r);
                }
            }
            return RegionSet { regions: out };
        }
        self.difference_sweep(other)
    }

    /// The naive linear-merge difference — the oracle the adaptive
    /// [`difference`](Self::difference) is property-tested against.
    pub fn difference_sweep(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.len() {
            if j >= other.len() {
                out.extend_from_slice(&self.regions[i..]);
                break;
            }
            match self.regions[i].cmp(&other.regions[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.regions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        RegionSet { regions: out }
    }

    /// The paper's `R ⊃ S`: members of `self` that include at least one
    /// region of `other` (non-strict inclusion).
    pub fn including(&self, other: &RegionSet) -> RegionSet {
        self.including_impl(other, false)
    }

    /// `R ⊃ S` with *strict* inclusion (the included region must differ).
    pub fn strictly_including(&self, other: &RegionSet) -> RegionSet {
        self.including_impl(other, true)
    }

    fn including_impl(&self, other: &RegionSet, strict: bool) -> RegionSet {
        if other.is_empty() {
            return RegionSet::new();
        }
        // suffix_min_end[k] = min end among other.regions[k..].
        let n = other.len();
        let mut suffix_min_end = vec![Pos::MAX; n + 1];
        for k in (0..n).rev() {
            suffix_min_end[k] = suffix_min_end[k + 1].min(other.regions[k].end);
        }
        let starts: Vec<Pos> = other.regions.iter().map(|r| r.start).collect();
        let out = self
            .regions
            .iter()
            .filter(|r| {
                let lo = starts.partition_point(|&s| s < r.start);
                if suffix_min_end[lo] > r.end {
                    return false;
                }
                if !strict {
                    return true;
                }
                // Strict: some included region must differ from r. The only
                // region equal to r that `other` can hold is r itself. When
                // r is present at index ri, every region in [lo, ri) shares
                // r's start with a larger end (canonical order) and is never
                // included, so a distinct witness exists iff the suffix past
                // ri still reaches down to r.end — an O(1) extrema test
                // instead of a scan over equal-start pileups.
                match other.regions.binary_search(r) {
                    Err(_) => true,
                    Ok(ri) => suffix_min_end[ri + 1] <= r.end,
                }
            })
            .copied()
            .collect();
        RegionSet { regions: out }
    }

    /// The paper's `R ⊂ S`: members of `self` that are included in at least
    /// one region of `other` (non-strict).
    pub fn included_in(&self, other: &RegionSet) -> RegionSet {
        self.included_in_impl(other, false)
    }

    /// `R ⊂ S` with *strict* inclusion.
    pub fn strictly_included_in(&self, other: &RegionSet) -> RegionSet {
        self.included_in_impl(other, true)
    }

    fn included_in_impl(&self, other: &RegionSet, strict: bool) -> RegionSet {
        if other.is_empty() {
            return RegionSet::new();
        }
        // prefix_max_end[k] = max end among other.regions[..k].
        let n = other.len();
        let mut prefix_max_end = vec![0 as Pos; n + 1];
        for k in 0..n {
            prefix_max_end[k + 1] = prefix_max_end[k].max(other.regions[k].end);
        }
        let starts: Vec<Pos> = other.regions.iter().map(|r| r.start).collect();
        let out = self
            .regions
            .iter()
            .filter(|r| {
                let hi = starts.partition_point(|&s| s <= r.start);
                if prefix_max_end[hi] < r.end {
                    return false;
                }
                if !strict {
                    return true;
                }
                // Strict: a distinct container must exist. When r sits in
                // `other` at index ri, every distinct container sorts before
                // it (smaller start, or equal start with larger end), so the
                // prefix extrema array answers in O(1) — the old witness
                // scan was O(|other|) per region on equal-start pileups.
                match other.regions.binary_search(r) {
                    Err(_) => true,
                    Ok(ri) => prefix_max_end[ri] >= r.end,
                }
            })
            .copied()
            .collect();
        RegionSet { regions: out }
    }

    /// The paper's `ι(R)` (innermost): members containing no *other* member.
    pub fn innermost(&self) -> RegionSet {
        let n = self.len();
        // In canonical order, r[i] contains r[j] for j > i iff r[j].end <= r[i].end.
        let mut suffix_min_end = vec![Pos::MAX; n + 1];
        for k in (0..n).rev() {
            suffix_min_end[k] = suffix_min_end[k + 1].min(self.regions[k].end);
        }
        let out = (0..n)
            .filter(|&i| suffix_min_end[i + 1] > self.regions[i].end)
            .map(|i| self.regions[i])
            .collect();
        RegionSet { regions: out }
    }

    /// The paper's `ω(R)` (outermost): members included in no *other* member.
    pub fn outermost(&self) -> RegionSet {
        let n = self.len();
        // In canonical order, r[j] contains r[i] for j < i iff r[j].end >= r[i].end.
        let mut best: Pos = 0;
        let mut out = Vec::new();
        for i in 0..n {
            if i == 0 || best < self.regions[i].end {
                out.push(self.regions[i]);
            }
            best = best.max(self.regions[i].end);
        }
        RegionSet { regions: out }
    }

    /// Concatenates per-shard results back into one set. The parts must be
    /// span-disjoint and ordered — every region of part `k` precedes every
    /// region of part `k+1` — which holds whenever shards partition the
    /// corpus by file span, since regions never cross file boundaries.
    /// Canonical order is debug-checked, making the merge a lossless O(n)
    /// append.
    pub fn concat(parts: impl IntoIterator<Item = RegionSet>) -> RegionSet {
        let mut regions: Vec<Region> = Vec::new();
        for part in parts {
            debug_assert!(
                regions.last().zip(part.regions.first()).is_none_or(|(a, b)| a < b),
                "shard results out of order"
            );
            regions.extend_from_slice(&part.regions);
        }
        Self::from_sorted(regions)
    }

    /// Keeps the members whose span lies inside `span` (helper for scoped
    /// indexing and file-restricted queries).
    pub fn within_span(&self, span: &qof_text::Span) -> RegionSet {
        let out = self
            .regions
            .iter()
            .filter(|r| span.start <= r.start && r.end <= span.end)
            .copied()
            .collect();
        RegionSet { regions: out }
    }
}

/// Whether galloping beats the linear sweep for operand sizes
/// `(small, large)`: the sweep touches `small + large` regions, galloping
/// roughly `small · log₂ large`, and the crossover (with comparison
/// constants folded in) sits near a 16× skew.
fn gallop_pays_off(small: usize, large: usize) -> bool {
    small > 0 && small.saturating_mul(16) < large
}

/// Index of the first region in `regions` that is `>= target`, found by
/// exponential (galloping) probe followed by a binary search within the
/// last doubling window. Returns `regions.len()` when every region is
/// smaller.
fn gallop_to(regions: &[Region], target: &Region) -> usize {
    if regions.first().is_none_or(|r| r >= target) {
        return 0;
    }
    // Invariant: regions[lo] < target <= regions[hi] (hi may be len).
    let mut step = 1usize;
    let mut lo = 0usize;
    let hi = loop {
        let probe = lo + step;
        match regions.get(probe) {
            Some(r) if r < target => {
                lo = probe;
                step <<= 1;
            }
            _ => break probe.min(regions.len()),
        }
    };
    lo + 1 + regions[lo + 1..hi].partition_point(|r| r < target)
}

impl FromIterator<Region> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Region>>(iter: T) -> Self {
        Self::from_regions(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a RegionSet {
    type Item = &'a Region;
    type IntoIter = std::slice::Iter<'a, Region>;
    fn into_iter(self) -> Self::IntoIter {
        self.regions.iter()
    }
}

impl fmt::Display for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(pairs: &[(Pos, Pos)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = rs(&[(5, 10), (0, 3), (5, 10), (5, 20)]);
        assert_eq!(s.len(), 3);
        let v: Vec<_> = s.iter().map(|r| (r.start, r.end)).collect();
        assert_eq!(v, [(0, 3), (5, 20), (5, 10)]); // enclosing-first at equal start
    }

    #[test]
    fn set_operations() {
        let a = rs(&[(0, 1), (2, 3), (4, 5)]);
        let b = rs(&[(2, 3), (6, 7)]);
        assert_eq!(a.union(&b), rs(&[(0, 1), (2, 3), (4, 5), (6, 7)]));
        assert_eq!(a.intersect(&b), rs(&[(2, 3)]));
        assert_eq!(a.difference(&b), rs(&[(0, 1), (4, 5)]));
        assert_eq!(b.difference(&a), rs(&[(6, 7)]));
    }

    #[test]
    fn including_basic() {
        let refs = rs(&[(0, 100), (100, 200), (200, 300)]);
        let names = rs(&[(10, 20), (110, 120)]);
        assert_eq!(refs.including(&names), rs(&[(0, 100), (100, 200)]));
    }

    #[test]
    fn including_is_nonstrict() {
        let a = rs(&[(5, 10)]);
        let b = rs(&[(5, 10)]);
        assert_eq!(a.including(&b), rs(&[(5, 10)]));
        assert!(a.strictly_including(&b).is_empty());
    }

    #[test]
    fn strictly_including_finds_distinct_witness() {
        let a = rs(&[(5, 10)]);
        let b = rs(&[(5, 10), (6, 8)]);
        assert_eq!(a.strictly_including(&b), rs(&[(5, 10)]));
    }

    #[test]
    fn included_in_basic() {
        let names = rs(&[(10, 20), (110, 120), (500, 510)]);
        let refs = rs(&[(0, 100), (100, 200)]);
        assert_eq!(names.included_in(&refs), rs(&[(10, 20), (110, 120)]));
        assert!(rs(&[(5, 10)]).strictly_included_in(&rs(&[(5, 10)])).is_empty());
        assert_eq!(rs(&[(5, 10)]).strictly_included_in(&rs(&[(5, 10), (0, 50)])), rs(&[(5, 10)]));
    }

    #[test]
    fn included_in_boundary_touch() {
        // s ends exactly where r ends: still included.
        let a = rs(&[(5, 10)]);
        let b = rs(&[(0, 10)]);
        assert_eq!(a.included_in(&b), a);
        // s starts exactly at r.start: included.
        let c = rs(&[(0, 4)]);
        assert_eq!(c.included_in(&b), c);
    }

    #[test]
    fn innermost_outermost() {
        // Nesting: (0,100) ⊃ (10,50) ⊃ (20,30); plus a disjoint (200, 210).
        let s = rs(&[(0, 100), (10, 50), (20, 30), (200, 210)]);
        assert_eq!(s.innermost(), rs(&[(20, 30), (200, 210)]));
        assert_eq!(s.outermost(), rs(&[(0, 100), (200, 210)]));
    }

    #[test]
    fn innermost_with_overlaps() {
        // (0,10) and (5,15) overlap but neither contains the other.
        let s = rs(&[(0, 10), (5, 15)]);
        assert_eq!(s.innermost(), s);
        assert_eq!(s.outermost(), s);
    }

    #[test]
    fn innermost_equal_start() {
        let s = rs(&[(5, 20), (5, 10)]);
        assert_eq!(s.innermost(), rs(&[(5, 10)]));
        assert_eq!(s.outermost(), rs(&[(5, 20)]));
    }

    #[test]
    fn innermost_equal_end() {
        let s = rs(&[(0, 20), (10, 20)]);
        assert_eq!(s.innermost(), rs(&[(10, 20)]));
        assert_eq!(s.outermost(), rs(&[(0, 20)]));
    }

    #[test]
    fn empty_set_behaviour() {
        let e = RegionSet::new();
        let s = rs(&[(0, 5)]);
        assert!(e.union(&e).is_empty());
        assert_eq!(e.union(&s), s);
        assert!(s.including(&e).is_empty());
        assert!(s.included_in(&e).is_empty());
        assert!(e.innermost().is_empty());
        assert!(e.outermost().is_empty());
    }

    #[test]
    fn covered_bytes_counts_overlaps_once() {
        let s = rs(&[(0, 10), (5, 15), (20, 25)]);
        assert_eq!(s.covered_bytes(), 20);
        assert_eq!(s.total_bytes(), 25);
        // Nested regions: outer already covers inner.
        let t = rs(&[(0, 100), (10, 20)]);
        assert_eq!(t.covered_bytes(), 100);
    }

    #[test]
    fn within_span_filters() {
        let s = rs(&[(0, 5), (10, 20), (15, 18), (25, 40)]);
        assert_eq!(s.within_span(&(10..20)), rs(&[(10, 20), (15, 18)]));
    }

    #[test]
    fn concat_joins_disjoint_shard_results() {
        let a = rs(&[(0, 5), (2, 4)]);
        let b = rs(&[(10, 20), (12, 15)]);
        let c = rs(&[(30, 31)]);
        assert_eq!(RegionSet::concat([a.clone(), b.clone(), c.clone()]), a.union(&b).union(&c));
        assert_eq!(RegionSet::concat([RegionSet::new(), a.clone(), RegionSet::new()]), a);
        assert!(RegionSet::concat(std::iter::empty::<RegionSet>()).is_empty());
    }

    /// Regression: the strict-inclusion fallback used to scan `other`
    /// linearly per region, degenerating to O(|R|·|S|) on equal-start /
    /// equal-end pileups. With N = 60 000 the old code performed ~1.8e9
    /// witness-scan steps here (minutes in a debug build); the extrema-array
    /// test keeps the whole thing O(N log N).
    #[test]
    fn strict_inclusion_pathological_pileups_stay_fast() {
        const N: Pos = 60_000;
        // Equal-start pileup: {(0, j) : 1 <= j <= N}. Every region except
        // the smallest strictly includes a shorter one.
        let pileup =
            RegionSet::from_regions((1..=N).map(|j| Region::new(0, j)).collect::<Vec<_>>());
        let incl = pileup.strictly_including(&pileup);
        assert_eq!(incl.len(), (N - 1) as usize);
        assert!(!incl.contains(&Region::new(0, 1)));
        // ... and every region except the largest is strictly included.
        let sub = pileup.strictly_included_in(&pileup);
        assert_eq!(sub.len(), (N - 1) as usize);
        assert!(!sub.contains(&Region::new(0, N)));
        // Disjoint unit regions: the non-strict prefix/suffix test passes
        // (each region includes itself), but no distinct witness exists, so
        // the old fallback scanned every preceding region before giving up.
        let units = RegionSet::from_regions(
            (0..N).map(|i| Region::new(2 * i, 2 * i + 1)).collect::<Vec<_>>(),
        );
        assert!(units.strictly_included_in(&units).is_empty());
        assert!(units.strictly_including(&units).is_empty());
    }

    #[test]
    fn strict_inclusion_matches_naive_oracle() {
        // Dense overlapping layout: cross-check both strict operators
        // against the quadratic definition.
        let mut regions = Vec::new();
        for start in 0..12u32 {
            for len in 0..6u32 {
                if (start + len) % 3 != 2 {
                    regions.push(Region::new(start, start + len + 1));
                }
            }
        }
        let set = RegionSet::from_regions(regions.clone());
        let other = RegionSet::from_regions(
            regions.iter().filter(|r| r.start % 2 == 0).copied().collect::<Vec<_>>(),
        );
        for (a, b) in [(&set, &other), (&other, &set), (&set, &set)] {
            let fast = a.strictly_including(b);
            let naive: Vec<Region> = a
                .iter()
                .filter(|r| b.iter().any(|s| s != *r && r.start <= s.start && s.end <= r.end))
                .copied()
                .collect();
            assert_eq!(fast.as_slice(), naive.as_slice());
            let fast = a.strictly_included_in(b);
            let naive: Vec<Region> = a
                .iter()
                .filter(|r| b.iter().any(|s| s != *r && s.start <= r.start && r.end <= s.end))
                .copied()
                .collect();
            assert_eq!(fast.as_slice(), naive.as_slice());
        }
    }

    #[test]
    fn contains_uses_exact_extents() {
        let s = rs(&[(3, 9)]);
        assert!(s.contains(&Region::new(3, 9)));
        assert!(!s.contains(&Region::new(3, 8)));
    }

    /// A deterministic xorshift generator — enough randomness to sweep
    /// size skews without a proptest dependency in the default build.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_set(seed: u64, n: usize, universe: u32) -> RegionSet {
        let mut s = seed | 1;
        let regions: Vec<Region> = (0..n)
            .map(|_| {
                let start = (xorshift(&mut s) % u64::from(universe)) as u32;
                let len = (xorshift(&mut s) % 9) as u32;
                Region::new(start, start + len)
            })
            .collect();
        RegionSet::from_regions(regions)
    }

    #[test]
    fn galloping_intersect_and_difference_match_the_sweep() {
        // Property: across skews from balanced to 1:4096 — spanning the
        // adaptive crossover in both directions — the galloping paths are
        // element-identical to the naive sweep, including each operand
        // order and self-application.
        let mut seed = 0x9e3779b97f4a7c15;
        for (na, nb) in
            [(0, 100), (1, 0), (1, 1), (3, 700), (25, 25), (7, 4096), (300, 300), (2000, 5)]
        {
            for round in 0..4u64 {
                let a = random_set(xorshift(&mut seed), na, 500 + (round * 37) as u32);
                let b = random_set(xorshift(&mut seed), nb, 500);
                for (x, y) in [(&a, &b), (&b, &a), (&a, &a)] {
                    assert_eq!(
                        x.intersect(y).as_slice(),
                        x.intersect_sweep(y).as_slice(),
                        "intersect {na}x{nb} round {round}"
                    );
                    assert_eq!(
                        x.difference(y).as_slice(),
                        x.difference_sweep(y).as_slice(),
                        "difference {na}x{nb} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn gallop_to_finds_the_partition_point() {
        let set = random_set(42, 2000, 10_000);
        let regions = set.as_slice();
        let mut seed = 7u64;
        for _ in 0..200 {
            let start = (xorshift(&mut seed) % 11_000) as u32;
            let target = Region::new(start, start + (xorshift(&mut seed) % 6) as u32);
            assert_eq!(
                super::gallop_to(regions, &target),
                regions.partition_point(|r| r < &target),
                "{target}"
            );
        }
        assert_eq!(super::gallop_to(&[], &Region::new(1, 2)), 0);
    }
}
