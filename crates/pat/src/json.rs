//! A minimal, dependency-free JSON reader shared by every surface that
//! consumes this workspace's own JSON writers: the trace round trip
//! (`--trace-json` / `QueryTrace::from_json`), the bench harness, and the
//! `qof top` dashboard scraping `/metrics?format=json` and
//! `/metrics/history`.
//!
//! It parses exactly the subset our writers emit — objects, arrays,
//! strings with escapes, unsigned integers, floats, booleans — and keeps
//! unsigned integers exact (`Json::Num(u64)`) rather than routing them
//! through `f64`, so nanosecond counters round-trip losslessly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An unsigned integer (kept exact; never coerced through `f64`).
    Num(u64),
    /// A float (anything with a fraction, exponent, or sign).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicate keys keep the
    /// first occurrence under [`get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = Parser { chars, i: 0 };
        let v = p.value()?;
        p.ws();
        if p.i != p.chars.len() {
            return Err(format!("trailing content at offset {}", p.i));
        }
        Ok(v)
    }

    /// The object's fields, or `None` for non-objects.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers included), or `None`.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The unsigned integer value, or `None` (floats are not coerced).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's fields.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or_else(|| format!("missing key `{key}`"))
}

/// Required string field.
pub fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(format!("key `{key}` is not a string")),
    }
}

/// Required unsigned integer field.
pub fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("key `{key}` is not a number")),
    }
}

/// Required numeric field, integers widened to `f64`.
pub fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    get(obj, key)?.as_f64().ok_or_else(|| format!("key `{key}` is not a number"))
}

/// Required boolean field.
pub fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("key `{key}` is not a boolean")),
    }
}

/// Required array field.
pub fn get_arr<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a [Json], String> {
    match get(obj, key)? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("key `{key}` is not an array")),
    }
}

/// Optional unsigned field: `Ok(None)` when the key is absent (our
/// writers omit unbounded values — the reader has no `null`).
pub fn opt_u64(obj: &[(String, Json)], key: &str) -> Result<Option<u64>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Json::Num(n))) => Ok(Some(*n)),
        Some(_) => Err(format!("key `{key}` is not a number")),
    }
}

/// Required array-of-strings field.
pub fn get_str_arr(obj: &[(String, Json)], key: &str) -> Result<Vec<String>, String> {
    get_arr(obj, key)?
        .iter()
        .map(|v| match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(format!("key `{key}` holds a non-string element")),
        })
        .collect()
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some(c) if c.is_ascii_digit() || c == '-' => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {}
                '.' | 'e' | 'E' | '+' | '-' => integral = false,
                _ => break,
            }
            self.i += 1;
        }
        let token: String = self.chars[start..self.i].iter().collect();
        if token.is_empty() || token == "-" {
            return Err(format!("expected a digit at offset {start}"));
        }
        if integral && !token.starts_with('-') {
            // Unsigned integers stay exact.
            return token
                .parse::<u64>()
                .map(Json::Num)
                .map_err(|_| format!("number overflow at offset {start}"));
        }
        token.parse::<f64>().map(Json::Float).map_err(|_| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String = self
                                .chars
                                .get(self.i + 1..self.i + 5)
                                .unwrap_or(&[])
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape at offset {}", self.i))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point U+{code:04X}"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_writers_subset() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true,false],"d":{"e":[]}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(get_u64(obj, "a").unwrap(), 1);
        assert_eq!(get_str(obj, "b").unwrap(), "x");
        assert_eq!(get_arr(obj, "c").unwrap().len(), 2);
        assert!(get(obj, "d").unwrap().as_obj().is_some());
        assert!(get(obj, "missing").is_err());
        assert_eq!(opt_u64(obj, "missing").unwrap(), None);
        assert_eq!(opt_u64(obj, "a").unwrap(), Some(1));
    }

    #[test]
    fn integers_stay_exact_and_floats_parse() {
        let v =
            Json::parse(r#"{"n":18446744073709551615,"f":0.6666666666666666,"e":1e3}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(get_u64(obj, "n").unwrap(), u64::MAX);
        assert!((get_f64(obj, "f").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((get_f64(obj, "e").unwrap() - 1000.0).abs() < 1e-12);
        // Integers widen, floats don't narrow.
        assert!((get_f64(obj, "n").unwrap() - u64::MAX as f64).abs() < 1e-12 * u64::MAX as f64);
        assert!(get_u64(obj, "f").is_err());
        let neg = Json::parse("-3.5").unwrap();
        assert_eq!(neg, Json::Float(-3.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("-").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let parsed = Json::parse("\"a\\u0041⊃\\n\"").unwrap();
        assert_eq!(parsed, Json::Str("aA⊃\n".into()));
    }
}
