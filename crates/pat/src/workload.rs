//! Workload analytics: deterministic query fingerprints and a bounded
//! heavy-hitter table.
//!
//! The serving tier needs to answer "which query *shapes* dominate, how
//! slow are they, and where is the estimator wrong" without unbounded
//! memory. The aggregation key is a [`fnv1a64`] **fingerprint** of the
//! plan's normalized region-expression spelling — the same key the plan
//! cache memoizes lowering under, so one fingerprint ⇔ one optimizer
//! outcome. Counters live in a [`WorkloadTable`]: a space-saving top-K
//! summary (Metwally et al., "Efficient computation of frequent and top-k
//! elements in data streams") that keeps at most [`WORKLOAD_CAPACITY`]
//! entries and, on overflow, recycles the minimum-count entry — the
//! classic guarantee that any shape with true frequency above `N/K` is
//! present, with per-entry overcount bounded by the recorded
//! [`WorkloadEntry::overcount`].

use std::sync::Mutex;

use crate::trace::Histogram;

/// Maximum number of fingerprints a [`WorkloadTable`] tracks (the
/// space-saving `K`). Memory stays O(K) regardless of workload size.
pub const WORKLOAD_CAPACITY: usize = 64;

/// FNV-1a, 64-bit, widened to 8-byte lanes: each full `u64` lane is
/// XOR-folded then multiplied, trailing bytes byte-wise. Deterministic
/// across processes and platforms (unlike `DefaultHasher`/`RandomState`,
/// which are seeded per process) — safe to persist, log, and diff.
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = data.chunks_exact(8);
    for lane in &mut chunks {
        let v = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
        h ^= v;
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One completed query's contribution to the workload table.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadObs {
    /// The plan fingerprint (0 means "unknown" and is tracked like any
    /// other key — offline analyzers see it for pre-v6 log lines).
    pub fingerprint: u64,
    /// A representative query text for the fingerprint (first seen wins).
    pub exemplar: String,
    /// End-to-end latency, nanoseconds.
    pub nanos: u64,
    /// Bytes touched: parse-phase bytes scanned plus content bytes read.
    pub bytes: u64,
    /// Plan-cache hits this query scored.
    pub plan_cache_hits: u64,
    /// Plan-cache misses this query scored.
    pub plan_cache_misses: u64,
    /// Subexpression-cache hits this query scored.
    pub cache_hits: u64,
    /// Subexpression-cache misses this query scored.
    pub cache_misses: u64,
    /// Whether the query failed.
    pub error: bool,
    /// Worst est-vs-actual cardinality ratio of this query (≥ 1.0 when
    /// estimates exist; 0.0 when the query carried none).
    pub est_ratio: f64,
    /// The trace id, kept as the estimation-error exemplar.
    pub trace_id: u64,
}

/// Aggregated statistics for one fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// The fingerprint this entry aggregates.
    pub fingerprint: u64,
    /// A representative query text.
    pub exemplar: String,
    /// Observations counted against this fingerprint. Space-saving
    /// semantics: at most `overcount` of these may belong to an evicted
    /// predecessor.
    pub hits: u64,
    /// The space-saving error bound: the recycled entry's count at
    /// takeover time (0 for entries that never recycled a slot).
    pub overcount: u64,
    /// Failed queries.
    pub errors: u64,
    /// Log2-bucket latency histogram.
    pub latency: Histogram,
    /// Total bytes touched.
    pub total_bytes: u64,
    /// Largest single-query bytes touched.
    pub max_bytes: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Subexpression-cache hits.
    pub cache_hits: u64,
    /// Subexpression-cache misses.
    pub cache_misses: u64,
    /// Worst est-vs-actual ratio seen (0.0 until a query carries
    /// estimates).
    pub worst_est_ratio: f64,
    /// Trace id of the query behind [`Self::worst_est_ratio`].
    pub worst_est_trace: u64,
}

impl WorkloadEntry {
    fn fresh(fingerprint: u64, exemplar: String) -> Self {
        Self {
            fingerprint,
            exemplar,
            hits: 0,
            overcount: 0,
            errors: 0,
            latency: Histogram::new(),
            total_bytes: 0,
            max_bytes: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            cache_hits: 0,
            cache_misses: 0,
            worst_est_ratio: 0.0,
            worst_est_trace: 0,
        }
    }

    fn absorb(&mut self, obs: &WorkloadObs) {
        self.hits += 1;
        if obs.error {
            self.errors += 1;
        }
        self.latency.record(obs.nanos);
        self.total_bytes += obs.bytes;
        self.max_bytes = self.max_bytes.max(obs.bytes);
        self.plan_cache_hits += obs.plan_cache_hits;
        self.plan_cache_misses += obs.plan_cache_misses;
        self.cache_hits += obs.cache_hits;
        self.cache_misses += obs.cache_misses;
        if obs.est_ratio > self.worst_est_ratio {
            self.worst_est_ratio = obs.est_ratio;
            self.worst_est_trace = obs.trace_id;
        }
    }

    /// Plan-cache hit rate, `None` before any lookup.
    #[must_use]
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        rate(self.plan_cache_hits, self.plan_cache_misses)
    }

    /// Subexpression-cache hit rate, `None` before any lookup.
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        rate(self.cache_hits, self.cache_misses)
    }
}

#[allow(clippy::cast_precision_loss)]
fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

/// A bounded space-saving top-K table of per-fingerprint statistics.
/// Thread-safe; every traced query calls [`WorkloadTable::observe`].
#[derive(Debug)]
pub struct WorkloadTable {
    entries: Mutex<Vec<WorkloadEntry>>,
    capacity: usize,
}

impl Default for WorkloadTable {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadTable {
    /// A table with the default capacity [`WORKLOAD_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(WORKLOAD_CAPACITY)
    }

    /// A table holding at most `capacity` fingerprints (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { entries: Mutex::new(Vec::new()), capacity: capacity.max(1) }
    }

    /// The table's capacity (the space-saving `K`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Folds one observation in. Known fingerprints update in place; a
    /// new fingerprint takes a free slot, or — table full — recycles the
    /// minimum-hits entry with the space-saving accounting: the new
    /// entry starts at `min + 1` hits, records `min` as its overcount,
    /// and resets every auxiliary statistic (they describe the new
    /// tenant only).
    pub fn observe(&self, obs: &WorkloadObs) {
        let mut entries = self.entries.lock().expect("workload table poisoned");
        if let Some(e) = entries.iter_mut().find(|e| e.fingerprint == obs.fingerprint) {
            e.absorb(obs);
            return;
        }
        if entries.len() < self.capacity {
            let mut e = WorkloadEntry::fresh(obs.fingerprint, obs.exemplar.clone());
            e.absorb(obs);
            entries.push(e);
            return;
        }
        // Recycle the min-hits slot (ties broken by lowest fingerprint,
        // keeping eviction deterministic).
        let victim = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.hits, e.fingerprint))
            .map(|(i, _)| i)
            .expect("capacity >= 1");
        let min = entries[victim].hits;
        let mut e = WorkloadEntry::fresh(obs.fingerprint, obs.exemplar.clone());
        e.absorb(obs);
        e.hits = min + 1;
        e.overcount = min;
        entries[victim] = e;
    }

    /// The current entries, heaviest first (hits descending, fingerprint
    /// ascending as the tie-break — a total, deterministic order).
    #[must_use]
    pub fn snapshot(&self) -> Vec<WorkloadEntry> {
        let mut out = self.entries.lock().expect("workload table poisoned").clone();
        out.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.fingerprint.cmp(&b.fingerprint)));
        out
    }

    /// Total observations folded in (sum of hits minus overcounts is a
    /// lower bound on distinct contributions; this is the raw hit sum).
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.entries.lock().expect("workload table poisoned").iter().map(|e| e.hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with the canonical byte-at-a-time
    // FNV-1a: the widened 8-byte-lane variant must agree on short
    // inputs (< 8 bytes never enter the lane loop) and stay stable on
    // longer ones across processes and releases.
    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Lane-widened digest of a >8-byte input: pinned so any change
        // to the folding order is caught.
        let long = fnv1a64("strict=false|Reference ⊃ Last_Name".as_bytes());
        assert_eq!(long, fnv1a64("strict=false|Reference ⊃ Last_Name".as_bytes()));
        assert_ne!(long, fnv1a64("strict=true|Reference ⊃ Last_Name".as_bytes()));
    }

    fn obs(fp: u64, nanos: u64) -> WorkloadObs {
        WorkloadObs {
            fingerprint: fp,
            exemplar: format!("q{fp}"),
            nanos,
            bytes: 10,
            plan_cache_hits: 1,
            plan_cache_misses: 0,
            cache_hits: 2,
            cache_misses: 2,
            error: false,
            est_ratio: 1.5,
            trace_id: 7,
        }
    }

    #[test]
    fn aggregates_per_fingerprint() {
        let t = WorkloadTable::new();
        t.observe(&obs(1, 100));
        t.observe(&obs(1, 300));
        t.observe(&obs(2, 50));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].fingerprint, 1);
        assert_eq!(snap[0].hits, 2);
        assert_eq!(snap[0].latency.count(), 2);
        assert_eq!(snap[0].total_bytes, 20);
        assert_eq!(snap[0].max_bytes, 10);
        assert_eq!(snap[0].plan_cache_hit_rate(), Some(1.0));
        assert_eq!(snap[0].cache_hit_rate(), Some(0.5));
        assert_eq!(snap[1].hits, 1);
        assert_eq!(t.total_hits(), 3);
    }

    #[test]
    fn keeps_worst_estimation_exemplar() {
        let t = WorkloadTable::new();
        let mut a = obs(1, 10);
        a.est_ratio = 2.0;
        a.trace_id = 11;
        let mut b = obs(1, 10);
        b.est_ratio = 8.0;
        b.trace_id = 22;
        let mut c = obs(1, 10);
        c.est_ratio = 3.0;
        c.trace_id = 33;
        t.observe(&a);
        t.observe(&b);
        t.observe(&c);
        let snap = t.snapshot();
        assert_eq!(snap[0].worst_est_ratio, 8.0);
        assert_eq!(snap[0].worst_est_trace, 22);
    }

    #[test]
    fn space_saving_eviction_bounds_memory_and_records_overcount() {
        let t = WorkloadTable::with_capacity(2);
        // fp 1 is heavy; fp 2 light; fp 3 arrives when full.
        t.observe(&obs(1, 10));
        t.observe(&obs(1, 10));
        t.observe(&obs(1, 10));
        t.observe(&obs(2, 10));
        t.observe(&obs(3, 10));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2, "capacity is a hard bound");
        assert_eq!(snap[0].fingerprint, 1);
        assert_eq!(snap[0].hits, 3);
        // fp 3 recycled fp 2's slot: count min+1 = 2, overcount = 1,
        // aux stats describe only fp 3's own single observation.
        assert_eq!(snap[1].fingerprint, 3);
        assert_eq!(snap[1].hits, 2);
        assert_eq!(snap[1].overcount, 1);
        assert_eq!(snap[1].latency.count(), 1);
        assert_eq!(snap[1].total_bytes, 10);
        // The heavy hitter was never at risk.
        assert!(snap.iter().all(|e| e.fingerprint != 2));
    }

    #[test]
    fn error_counting() {
        let t = WorkloadTable::new();
        let mut e = obs(9, 10);
        e.error = true;
        t.observe(&e);
        t.observe(&obs(9, 10));
        assert_eq!(t.snapshot()[0].errors, 1);
    }
}
