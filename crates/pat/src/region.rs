//! The region: a substring of the indexed text, identified by the pair of
//! positions where it begins and ends (§3.1 of the paper).

use qof_text::{Pos, Span};
use std::cmp::Ordering;
use std::fmt;

/// A region of text: the half-open byte span `start..end`.
///
/// The paper writes `r ⊇ s` ("r includes s") when the endpoints of `s` are
/// within those of `r`; see [`Region::includes`].
///
/// # Ordering
///
/// Regions order by **canonical sweep order**: ascending `start`, and for
/// equal starts *descending* `end`, so that an enclosing region always sorts
/// before the regions nested inside it. All `RegionSet` algorithms rely on
/// this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First byte of the region.
    pub start: Pos,
    /// One past the last byte of the region.
    pub end: Pos,
}

impl Region {
    /// Creates a region; `start` must not exceed `end`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: Pos, end: Pos) -> Self {
        assert!(start <= end, "region start {start} exceeds end {end}");
        Self { start, end }
    }

    /// The region's span as a range.
    pub fn span(&self) -> Span {
        self.start..self.end
    }

    /// Length in bytes.
    pub fn len(&self) -> Pos {
        self.end - self.start
    }

    /// True for zero-length regions (pure match points).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Inclusion: the endpoints of `other` are within those of `self`
    /// (non-strict — every region includes itself).
    pub fn includes(&self, other: &Region) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Strict inclusion: `self` includes `other` and they differ.
    pub fn strictly_includes(&self, other: &Region) -> bool {
        self.includes(other) && self != other
    }

    /// True when the two regions share at least one byte position
    /// (or one is an empty region lying inside the other).
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end && other.start < self.end
            || self.includes(other)
            || other.includes(self)
    }
}

impl Ord for Region {
    fn cmp(&self, other: &Self) -> Ordering {
        self.start.cmp(&other.start).then(other.end.cmp(&self.end))
    }
}

impl PartialOrd for Region {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<Span> for Region {
    fn from(s: Span) -> Self {
        Region::new(s.start, s.end)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_is_reflexive_and_endpoint_based() {
        let r = Region::new(10, 20);
        assert!(r.includes(&r));
        assert!(r.includes(&Region::new(10, 20)));
        assert!(r.includes(&Region::new(12, 18)));
        assert!(r.includes(&Region::new(10, 15)));
        assert!(r.includes(&Region::new(15, 20)));
        assert!(!r.includes(&Region::new(9, 15)));
        assert!(!r.includes(&Region::new(15, 21)));
    }

    #[test]
    fn strict_inclusion_excludes_self() {
        let r = Region::new(10, 20);
        assert!(!r.strictly_includes(&r));
        assert!(r.strictly_includes(&Region::new(11, 20)));
    }

    #[test]
    fn canonical_order_puts_enclosing_first() {
        let outer = Region::new(5, 30);
        let inner = Region::new(5, 10);
        assert!(outer < inner, "equal start: larger end sorts first");
        assert!(Region::new(1, 2) < outer);
    }

    #[test]
    fn overlap_cases() {
        let a = Region::new(0, 10);
        assert!(a.overlaps(&Region::new(5, 15)));
        assert!(a.overlaps(&Region::new(2, 8)));
        assert!(!a.overlaps(&Region::new(10, 20)), "half-open spans touching do not overlap");
        // An empty region inside a is considered overlapping (it is included).
        assert!(a.overlaps(&Region::new(4, 4)));
        assert!(a.includes(&Region::new(4, 4)));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn inverted_region_panics() {
        let _ = Region::new(5, 4);
    }

    #[test]
    fn display_and_span() {
        let r = Region::new(3, 9);
        assert_eq!(r.to_string(), "[3, 9)");
        assert_eq!(r.span(), 3..9);
        assert_eq!(r.len(), 6);
        assert!(!r.is_empty());
        assert!(Region::new(7, 7).is_empty());
    }
}
