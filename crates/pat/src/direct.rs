//! Direct inclusion: `R ⊃d S` selects the regions of `R` that *directly*
//! include a region of `S`, i.e. with no other indexed region in between
//! (§3.1). Dually for `R ⊂d S`.
//!
//! Three implementations are provided:
//!
//! * [`direct_including`] — the production path: `O((|R|+|S|+|U|) log)` using
//!   the universe nesting forest; falls back to the brute-force oracle when
//!   the universe is not properly nested or the operands contain extents
//!   outside the universe.
//! * [`direct_including_layered`] — the paper's while-loop program, verbatim
//!   (modulo the strictness of the betweenness test, which the formal
//!   definition requires): it iterates over nested layers of `R`, using only
//!   `ω`, `−`, `∪`, `⊃`, `⊂`. The paper presents it "to give intuition about
//!   the cost of this operation"; experiment E3 benchmarks exactly this cost
//!   gap. Correct for properly nested instances.
//! * [`direct_including_naive`] — a quadratic transliteration of the
//!   definition, used as the differential-testing oracle.

use crate::{Region, RegionSet, UniverseForest};

/// `R ⊃d S` relative to the indexed universe described by `forest`.
pub fn direct_including(r: &RegionSet, s: &RegionSet, forest: &UniverseForest) -> RegionSet {
    if !forest.is_properly_nested() || !forest.covers(r) {
        let universe = RegionSet::from_regions(forest.regions().to_vec());
        return direct_including_naive(r, s, &universe);
    }
    // r ⊇d s  ⇔  r ⊇ s ∧ ¬(p(s) ⊊ r), where p(s) is the deepest strict
    // indexed enclosure of s. For r with extents in the universe this means
    // extents(r) == extents(s) or extents(r) == p(s); when p(s) does not
    // exist, any r ⊇ s qualifies.
    let enclosures = forest.strict_enclosures(s);
    let mut targets: Vec<Region> = Vec::with_capacity(s.len() * 2);
    let mut unparented: Vec<Region> = Vec::new();
    for (sr, p) in s.iter().zip(&enclosures) {
        targets.push(*sr);
        match p {
            Some(p) => targets.push(*p),
            None => unparented.push(*sr),
        }
    }
    let targets = RegionSet::from_regions(targets);
    let mut out = r.intersect(&targets);
    if !unparented.is_empty() {
        out = out.union(&r.including(&RegionSet::from_regions(unparented)));
    }
    out
}

/// `R ⊂d S` relative to the indexed universe described by `forest`.
pub fn direct_included_in(r: &RegionSet, s: &RegionSet, forest: &UniverseForest) -> RegionSet {
    if !forest.is_properly_nested() || !forest.covers(s) {
        let universe = RegionSet::from_regions(forest.regions().to_vec());
        return direct_included_in_naive(r, s, &universe);
    }
    // x ⊂d S ⇔ ∃s ∈ S: s ⊇ x ∧ ¬(p(x) ⊊ s) ⇔ x ∈ S, or p(x) ∈ S, or
    // (p(x) = None ∧ ∃s ⊇ x).
    let enclosures = forest.strict_enclosures(r);
    let mut hits: Vec<Region> = Vec::new();
    let mut unparented: Vec<Region> = Vec::new();
    for (x, p) in r.iter().zip(&enclosures) {
        match p {
            Some(p) => {
                if s.contains(x) || s.contains(p) {
                    hits.push(*x);
                }
            }
            None => {
                if s.contains(x) {
                    hits.push(*x);
                } else {
                    unparented.push(*x);
                }
            }
        }
    }
    let mut out = RegionSet::from_regions(hits);
    if !unparented.is_empty() {
        out = out.union(&RegionSet::from_regions(unparented).included_in(s));
    }
    out
}

/// The paper's layered while-program for `R ⊃d S` (§3.1), using only the
/// other algebra operators. `universe` is the set of all indexed regions.
///
/// ```text
/// R_layer := ω(R); R_rest := R − R_layer; R_result := ∅;
/// while (R_layer ⊃ S) ≠ ∅ do
///   R_result := R_result ∪ (R_layer ⊃ (S − (S ⊂ (T ⊂ R_layer))));
///   R_layer := ω(R_rest); R_rest := R_rest − R_layer;
/// end
/// ```
///
/// where `T` ranges over the indexed regions and the two inner inclusion
/// tests are strict (the formal betweenness condition `r ⊐ t ⊐ s`).
pub fn direct_including_layered(r: &RegionSet, s: &RegionSet, universe: &RegionSet) -> RegionSet {
    let mut layer = r.outermost();
    let mut rest = r.difference(&layer);
    let mut result = RegionSet::new();
    while !layer.including(s).is_empty() {
        let mid = universe.strictly_included_in(&layer);
        let blocked = s.strictly_included_in(&mid);
        result = result.union(&layer.including(&s.difference(&blocked)));
        layer = rest.outermost();
        rest = rest.difference(&layer);
    }
    result
}

/// Layered program for `R ⊂d S`, the dual of [`direct_including_layered`]:
/// peels `S` layer by layer and collects the `R` regions directly included.
pub fn direct_included_in_layered(r: &RegionSet, s: &RegionSet, universe: &RegionSet) -> RegionSet {
    let mut layer = s.outermost();
    let mut rest = s.difference(&layer);
    let mut result = RegionSet::new();
    while !r.included_in(&layer).is_empty() {
        let mid = universe.strictly_included_in(&layer);
        let blocked = r.strictly_included_in(&mid);
        result = result.union(&r.difference(&blocked).included_in(&layer));
        layer = rest.outermost();
        rest = rest.difference(&layer);
    }
    result
}

/// Brute-force transliteration of the `⊃d` definition; the testing oracle.
pub fn direct_including_naive(r: &RegionSet, s: &RegionSet, universe: &RegionSet) -> RegionSet {
    r.iter()
        .filter(|x| {
            s.iter().any(|y| {
                x.includes(y)
                    && !universe.iter().any(|t| x.strictly_includes(t) && t.strictly_includes(y))
            })
        })
        .copied()
        .collect()
}

/// Brute-force transliteration of the `⊂d` definition; the testing oracle.
pub fn direct_included_in_naive(r: &RegionSet, s: &RegionSet, universe: &RegionSet) -> RegionSet {
    r.iter()
        .filter(|x| {
            s.iter().any(|y| {
                y.includes(x)
                    && !universe.iter().any(|t| y.strictly_includes(t) && t.strictly_includes(x))
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qof_text::Pos;

    fn rs(pairs: &[(Pos, Pos)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    /// BibTeX-like universe:
    /// Reference [0,100) ⊃ Authors [10,40) ⊃ Name [12,30) ⊃ Last [20,28)
    ///                   ⊃ Editors [50,80) ⊃ Name [52,70) ⊃ Last [60,68)
    fn bib() -> (RegionSet, UniverseForest) {
        let u = rs(&[(0, 100), (10, 40), (12, 30), (20, 28), (50, 80), (52, 70), (60, 68)]);
        let f = UniverseForest::build(&u);
        (u, f)
    }

    #[test]
    fn direct_requires_no_region_in_between() {
        let (_, f) = bib();
        let reference = rs(&[(0, 100)]);
        let authors = rs(&[(10, 40)]);
        let last = rs(&[(20, 28)]);
        // Reference directly includes Authors.
        assert_eq!(direct_including(&reference, &authors, &f), reference);
        // Reference does NOT directly include Last (Authors+Name in between).
        assert!(direct_including(&reference, &last, &f).is_empty());
        // Plain inclusion does hold.
        assert_eq!(reference.including(&last), reference);
    }

    #[test]
    fn direct_included_in_mirrors() {
        let (_, f) = bib();
        let authors = rs(&[(10, 40)]);
        let name = rs(&[(12, 30), (52, 70)]);
        let reference = rs(&[(0, 100)]);
        assert_eq!(direct_included_in(&authors, &reference, &f), authors);
        assert_eq!(direct_included_in(&name, &authors, &f), rs(&[(12, 30)]));
    }

    #[test]
    fn unparented_region_is_directly_included_by_any_container() {
        // s has no strict enclosure in the universe at all.
        let u = rs(&[(10, 20)]);
        let f = UniverseForest::build(&u);
        let r = rs(&[(10, 20)]);
        let s = rs(&[(10, 20)]);
        assert_eq!(direct_including(&r, &s, &f), r);
    }

    #[test]
    fn equal_extents_are_direct() {
        // Choice rules produce distinct names with identical extents: no
        // region lies *strictly* between, so inclusion is direct.
        let u = rs(&[(0, 50), (5, 40)]);
        let f = UniverseForest::build(&u);
        let a = rs(&[(5, 40)]);
        let b = rs(&[(5, 40)]);
        assert_eq!(direct_including(&a, &b, &f), a);
        assert_eq!(direct_included_in(&a, &b, &f), a);
    }

    #[test]
    fn layered_matches_fast_on_nested_instance() {
        let (u, f) = bib();
        let r = rs(&[(0, 100), (10, 40), (12, 30), (50, 80)]);
        let s = rs(&[(20, 28), (60, 68), (12, 30)]);
        let fast = direct_including(&r, &s, &f);
        let layered = direct_including_layered(&r, &s, &u);
        let naive = direct_including_naive(&r, &s, &u);
        assert_eq!(fast, naive);
        assert_eq!(layered, naive);
    }

    #[test]
    fn included_in_layered_matches() {
        let (u, f) = bib();
        let r = rs(&[(12, 30), (20, 28), (60, 68)]);
        let s = rs(&[(10, 40), (52, 70)]);
        let fast = direct_included_in(&r, &s, &f);
        let layered = direct_included_in_layered(&r, &s, &u);
        let naive = direct_included_in_naive(&r, &s, &u);
        assert_eq!(fast, naive);
        assert_eq!(layered, naive);
    }

    #[test]
    fn deep_chain_direct_is_parent_child_only() {
        // 6-deep nesting chain.
        let pairs: Vec<(Pos, Pos)> = (0..6).map(|i| (i * 10, 200 - i * 10)).collect();
        let u = rs(&pairs);
        let f = UniverseForest::build(&u);
        for w in pairs.windows(2) {
            let outer = rs(&[w[0]]);
            let inner = rs(&[w[1]]);
            assert_eq!(direct_including(&outer, &inner, &f), outer);
        }
        // Grandparent is not direct.
        let gp = rs(&[pairs[0]]);
        let gc = rs(&[pairs[2]]);
        assert!(direct_including(&gp, &gc, &f).is_empty());
    }

    #[test]
    fn fallback_on_stranger_operands() {
        // R contains extents not in the universe: fast path falls back to
        // the oracle and stays correct.
        let u = rs(&[(0, 100), (10, 40), (20, 30)]);
        let f = UniverseForest::build(&u);
        let r = rs(&[(5, 60)]); // not indexed; sits between (0,100) and (10,40)
        let s = rs(&[(20, 30)]);
        // (5,60) ⊇ (20,30) but (10,40) lies strictly between: not direct.
        assert!(direct_including(&r, &s, &f).is_empty());
        let r2 = rs(&[(15, 35)]); // between (10,40) and (20,30): direct
        assert_eq!(direct_including(&r2, &s, &f), r2);
    }

    #[test]
    fn empty_operands() {
        let (u, f) = bib();
        let e = RegionSet::new();
        let r = rs(&[(0, 100)]);
        assert!(direct_including(&e, &r, &f).is_empty());
        assert!(direct_including(&r, &e, &f).is_empty());
        assert!(direct_including_layered(&r, &e, &u).is_empty());
        assert!(direct_included_in_layered(&e, &r, &u).is_empty());
    }
}
