//! Instances of a region index (Definition 3.1's domain): a mapping from
//! region names to region sets.

use crate::{RegionSet, UniverseForest};
use std::collections::BTreeMap;

/// An instance `I` of a region index: `I(Rᵢ)` is a set of regions for each
/// region name `Rᵢ`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Instance {
    names: BTreeMap<String, RegionSet>,
}

impl Instance {
    /// An instance with no region names.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the instance of a region name.
    pub fn insert(&mut self, name: impl Into<String>, regions: RegionSet) {
        self.names.insert(name.into(), regions);
    }

    /// Merges regions into an existing name (union), creating it if absent.
    pub fn merge(&mut self, name: &str, regions: RegionSet) {
        match self.names.get_mut(name) {
            Some(existing) => *existing = existing.union(&regions),
            None => {
                self.names.insert(name.to_owned(), regions);
            }
        }
    }

    /// The instance of `name`, if indexed.
    pub fn get(&self, name: &str) -> Option<&RegionSet> {
        self.names.get(name)
    }

    /// Whether `name` is indexed (possibly with an empty instance).
    pub fn has(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// The indexed region names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Iterates `(name, regions)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RegionSet)> {
        self.names.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of indexed names.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// Total number of indexed regions across all names.
    pub fn region_count(&self) -> usize {
        self.names.values().map(RegionSet::len).sum()
    }

    /// Approximate resident bytes of the region index (for the E9
    /// index-size/performance tradeoff).
    pub fn approx_bytes(&self) -> usize {
        let name_bytes: usize = self.names.keys().map(String::len).sum();
        name_bytes + self.region_count() * std::mem::size_of::<crate::Region>()
    }

    /// The union of all instances — the set of all indexed regions, which
    /// the `⊃d` betweenness test quantifies over.
    pub fn universe(&self) -> RegionSet {
        let mut all = Vec::with_capacity(self.region_count());
        for set in self.names.values() {
            all.extend_from_slice(set.as_slice());
        }
        RegionSet::from_regions(all)
    }

    /// Builds the nesting forest of [`Instance::universe`].
    pub fn build_forest(&self) -> UniverseForest {
        UniverseForest::build(&self.universe())
    }

    /// Restricts the instance to the given names (partial indexing, §6).
    pub fn restrict_to<'a>(&self, keep: impl IntoIterator<Item = &'a str>) -> Instance {
        let keep: std::collections::BTreeSet<&str> = keep.into_iter().collect();
        Instance {
            names: self
                .names
                .iter()
                .filter(|(k, _)| keep.contains(k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    fn rs(pairs: &[(u32, u32)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn insert_get_names() {
        let mut i = Instance::new();
        i.insert("Reference", rs(&[(0, 100)]));
        i.insert("Authors", rs(&[(10, 40)]));
        assert!(i.has("Reference"));
        assert!(!i.has("Editors"));
        assert_eq!(i.get("Authors").unwrap().len(), 1);
        assert_eq!(i.names().collect::<Vec<_>>(), ["Authors", "Reference"]);
        assert_eq!(i.name_count(), 2);
        assert_eq!(i.region_count(), 2);
    }

    #[test]
    fn universe_unions_and_dedups() {
        let mut i = Instance::new();
        i.insert("A", rs(&[(0, 10), (20, 30)]));
        i.insert("B", rs(&[(20, 30), (40, 50)]));
        let u = i.universe();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn merge_unions() {
        let mut i = Instance::new();
        i.insert("A", rs(&[(0, 10)]));
        i.merge("A", rs(&[(20, 30)]));
        i.merge("B", rs(&[(5, 6)]));
        assert_eq!(i.get("A").unwrap().len(), 2);
        assert_eq!(i.get("B").unwrap().len(), 1);
    }

    #[test]
    fn restrict_keeps_subset() {
        let mut i = Instance::new();
        i.insert("A", rs(&[(0, 10)]));
        i.insert("B", rs(&[(1, 2)]));
        i.insert("C", rs(&[(3, 4)]));
        let p = i.restrict_to(["A", "C"]);
        assert!(p.has("A") && p.has("C") && !p.has("B"));
    }

    #[test]
    fn approx_bytes_positive() {
        let mut i = Instance::new();
        i.insert("A", rs(&[(0, 10)]));
        assert!(i.approx_bytes() > 0);
    }
}
