//! The evaluation engine: evaluates [`RegionExpr`]s against a corpus, its
//! word index and a region-index instance — the role the PAT engine plays in
//! the paper ("evaluate these expressions efficiently using the engine of an
//! indexing system").

use std::cell::RefCell;
use std::collections::HashMap;

use qof_text::{Corpus, Pos, Span, SuffixArray, WordLookup};

use crate::{
    direct_included_in, direct_including, CacheSource, EvalStats, Instance, OpTrace, Region,
    RegionExpr, RegionSet, SubexprCache, TraceSink, UniverseForest,
};

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The expression references a region name that is not indexed.
    UnknownName(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownName(n) => write!(f, "region name `{n}` is not indexed"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluator over one corpus + word index + region-index instance.
///
/// Evaluation is *set-at-a-time*: every operator maps whole region sets, and
/// identical subexpressions within one `eval` call are computed once (the
/// common-subexpression sharing suggested in §5.2). All work is counted into
/// [`EvalStats`], which higher layers read to report scan-volume tradeoffs.
pub struct Engine<'a> {
    corpus: &'a Corpus,
    words: &'a dyn WordLookup,
    suffix: Option<&'a SuffixArray>,
    instance: &'a Instance,
    universe: RegionSet,
    forest: UniverseForest,
    stats: RefCell<EvalStats>,
    share: std::cell::Cell<bool>,
    /// When set, evaluation is restricted to this span of the corpus: name
    /// sets, match points and the universe are filtered to it. Shard workers
    /// use one scoped engine per file-aligned shard.
    scope: Option<Span>,
    /// Cross-query subexpression cache, shared by reference between engines
    /// (batch workers, shard workers) over the same indexes.
    shared: Option<&'a SubexprCache>,
    /// Operator trace sink. `None` (the default) keeps evaluation on the
    /// untraced hot path — the only cost is this branch.
    trace: Option<&'a TraceSink>,
}

impl<'a> Engine<'a> {
    fn build(
        corpus: &'a Corpus,
        words: &'a dyn WordLookup,
        instance: &'a Instance,
        scope: Option<Span>,
    ) -> Self {
        let universe = match &scope {
            None => instance.universe(),
            Some(span) => instance.universe().within_span(span),
        };
        let forest = UniverseForest::build(&universe);
        Self {
            corpus,
            words,
            suffix: None,
            instance,
            universe,
            forest,
            stats: RefCell::new(EvalStats::new()),
            share: std::cell::Cell::new(true),
            scope,
            shared: None,
            trace: None,
        }
    }

    /// Builds an engine; the universe nesting forest is constructed once.
    pub fn new(corpus: &'a Corpus, words: &'a dyn WordLookup, instance: &'a Instance) -> Self {
        Self::build(corpus, words, instance, None)
    }

    /// Builds an engine scoped to `span`: every name set, match-point set
    /// and the universe are restricted to regions lying inside the span.
    /// With file-aligned spans (regions and tokens never cross file
    /// boundaries), concatenating scoped results over a partition of the
    /// corpus reproduces the unscoped result exactly.
    pub fn new_scoped(
        corpus: &'a Corpus,
        words: &'a dyn WordLookup,
        instance: &'a Instance,
        span: Span,
    ) -> Self {
        Self::build(corpus, words, instance, Some(span))
    }

    /// Attaches a shared subexpression cache. Lookups key on the engine's
    /// scope plus the normalized expression, so scoped and unscoped engines
    /// never alias. The caller must clear the cache when the corpus or the
    /// instance changes.
    pub fn with_shared_cache(mut self, cache: &'a SubexprCache) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Attaches a PAT suffix array, enabling fast prefix match points.
    pub fn with_suffix_array(mut self, sa: &'a SuffixArray) -> Self {
        self.suffix = Some(sa);
        self
    }

    /// Attaches an operator trace sink: every subsequent evaluation records
    /// one [`OpTrace`] node per operator application (timings, input/output
    /// cardinalities, bytes scanned, cache outcomes). Detach by rebuilding
    /// the engine; with no sink attached evaluation is untraced and pays
    /// only one branch per node.
    pub fn with_trace(mut self, sink: &'a TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// The corpus under evaluation.
    pub fn corpus(&self) -> &Corpus {
        self.corpus
    }

    /// The region-index instance.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The set of all indexed regions.
    pub fn universe(&self) -> &RegionSet {
        &self.universe
    }

    /// The universe nesting forest.
    pub fn forest(&self) -> &UniverseForest {
        &self.forest
    }

    /// The evaluation scope, when restricted (see [`Engine::new_scoped`]).
    pub fn scope(&self) -> Option<&Span> {
        self.scope.as_ref()
    }

    /// Accumulated statistics since construction or the last reset.
    pub fn stats(&self) -> EvalStats {
        self.stats.borrow().clone()
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = EvalStats::new();
    }

    /// Evaluates `expr`, sharing identical subexpressions. With a shared
    /// cache attached, the expression is normalized first so commutative
    /// spellings hit the same entries.
    pub fn eval(&self, expr: &RegionExpr) -> Result<RegionSet, EvalError> {
        let mut cache = HashMap::new();
        if self.shared.is_some() {
            self.eval_memo(&expr.normalized(), &mut cache)
        } else {
            self.eval_memo(expr, &mut cache)
        }
    }

    /// Evaluates several expressions with a shared subexpression cache
    /// (§5.2: "find common subexpressions … and evaluate them once").
    pub fn eval_all(&self, exprs: &[RegionExpr]) -> Result<Vec<RegionSet>, EvalError> {
        let mut cache = HashMap::new();
        if self.shared.is_some() {
            exprs.iter().map(|e| self.eval_memo(&e.normalized(), &mut cache)).collect()
        } else {
            exprs.iter().map(|e| self.eval_memo(e, &mut cache)).collect()
        }
    }

    /// Evaluates `expr` *without* common-subexpression sharing — the
    /// ablation partner of [`Engine::eval`] for measuring what §5.2's
    /// sharing buys.
    pub fn eval_unshared(&self, expr: &RegionExpr) -> Result<RegionSet, EvalError> {
        self.share.set(false);
        let result = self.eval(expr);
        self.share.set(true);
        result
    }

    fn eval_memo(
        &self,
        expr: &RegionExpr,
        cache: &mut HashMap<RegionExpr, RegionSet>,
    ) -> Result<RegionSet, EvalError> {
        if let Some(sink) = self.trace {
            return self.eval_traced(expr, cache, sink);
        }
        if self.share.get() {
            if let Some(hit) = cache.get(expr) {
                return Ok(hit.clone());
            }
            // Name sets are direct instance lookups; caching them would
            // only duplicate the instance, so the shared cache skips them.
            if let Some(shared) = self.shared {
                if !matches!(expr, RegionExpr::Name(_)) {
                    if let Some(hit) = shared.get(self.scope.as_ref(), expr) {
                        cache.insert(expr.clone(), hit.clone());
                        return Ok(hit);
                    }
                }
            }
        }
        let result = self.eval_uncached(expr, cache)?;
        if self.share.get() {
            cache.insert(expr.clone(), result.clone());
            if let Some(shared) = self.shared {
                if !matches!(expr, RegionExpr::Name(_)) {
                    shared.insert(self.scope.as_ref(), expr.clone(), result.clone());
                }
            }
        }
        Ok(result)
    }

    /// The traced twin of [`Engine::eval_memo`]: same memo/shared-cache
    /// policy, but every operator application is timed and filed into the
    /// sink — cache hits as childless leaves, computed nodes as spans whose
    /// children are the operand evaluations. Recursion re-enters
    /// `eval_memo`, which re-dispatches here, so the two paths cannot drift
    /// in caching behaviour.
    fn eval_traced(
        &self,
        expr: &RegionExpr,
        cache: &mut HashMap<RegionExpr, RegionSet>,
        sink: &TraceSink,
    ) -> Result<RegionSet, EvalError> {
        let hit_leaf = |set: &RegionSet, source: CacheSource| {
            let (op, detail) = op_parts(expr);
            sink.leaf(OpTrace {
                op: op.to_owned(),
                detail,
                output: set.len(),
                source,
                ..OpTrace::default()
            });
        };
        if self.share.get() {
            if let Some(hit) = cache.get(expr) {
                hit_leaf(hit, CacheSource::LocalMemo);
                return Ok(hit.clone());
            }
            if let Some(shared) = self.shared {
                if !matches!(expr, RegionExpr::Name(_)) {
                    if let Some(hit) = shared.get(self.scope.as_ref(), expr) {
                        hit_leaf(&hit, CacheSource::SharedCache);
                        cache.insert(expr.clone(), hit.clone());
                        return Ok(hit);
                    }
                }
            }
        }
        let (bytes0, probes0) = {
            let s = self.stats.borrow();
            (s.bytes_scanned, s.word_probes)
        };
        // The sink stamps the span's start/duration and id itself
        // (`enter`/`exit_with`), so the engine keeps no clock of its own.
        sink.enter();
        let result = self.eval_uncached(expr, cache);
        let (bytes1, probes1) = {
            let s = self.stats.borrow();
            (s.bytes_scanned, s.word_probes)
        };
        let (op, detail) = op_parts(expr);
        let output = result.as_ref().map_or(0, RegionSet::len);
        sink.exit_with(|children| OpTrace {
            op: op.to_owned(),
            detail,
            input: children.iter().map(|c| c.output).sum(),
            output,
            bytes: bytes1 - bytes0,
            probes: probes1 - probes0,
            source: CacheSource::Computed,
            children,
            ..OpTrace::default()
        });
        let result = result?;
        if self.share.get() {
            cache.insert(expr.clone(), result.clone());
            if let Some(shared) = self.shared {
                if !matches!(expr, RegionExpr::Name(_)) {
                    shared.insert(self.scope.as_ref(), expr.clone(), result.clone());
                }
            }
        }
        Ok(result)
    }

    /// Narrows a sorted position list to the engine's scope.
    fn in_scope<'p>(&self, positions: &'p [Pos]) -> &'p [Pos] {
        match &self.scope {
            None => positions,
            Some(span) => {
                let lo = positions.partition_point(|&p| p < span.start);
                let hi = positions.partition_point(|&p| p < span.end);
                &positions[lo..hi]
            }
        }
    }

    /// Applies the scope's end boundary to computed spans (a match starting
    /// in scope could still extend past an arbitrary, non-file-aligned
    /// scope end).
    fn clip_to_scope(&self, set: RegionSet) -> RegionSet {
        match &self.scope {
            None => set,
            Some(span) => set.within_span(span),
        }
    }

    /// Occurrence spans of a constant, computed index-only. A constant that
    /// is a single indexed word is one probe; anything else — a phrase
    /// ("point algorithm"), a date ("1994-05-12"), an address
    /// ("milo@example.org") — is decomposed into its word runs, and the
    /// word-index positions must line up at the offsets the constant
    /// dictates (the alignment PAT's proximity search would verify).
    fn word_spans(&self, w: &str) -> RegionSet {
        // Word runs of the constant with their offsets.
        let mut runs: Vec<(Pos, &str)> = Vec::new();
        let bytes = w.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            if bytes[i].is_ascii_alphanumeric() {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                runs.push((start as Pos, &w[start..i]));
            } else {
                i += 1;
            }
        }
        let Some(&(first_off, first)) = runs.first() else {
            return RegionSet::new();
        };
        if runs.len() == 1 && first_off == 0 && first.len() == w.len() {
            let positions = self.in_scope(self.words.positions(w));
            self.stats.borrow_mut().record_word_probe(positions.len());
            let len = w.len() as Pos;
            return self.clip_to_scope(RegionSet::from_sorted(
                positions.iter().map(|&p| Region::new(p, p + len)).collect(),
            ));
        }
        let firsts = self.in_scope(self.words.positions(first));
        // Fetch each later run's posting list once, outside the candidate
        // loop: `positions` re-folds its key per call, which used to cost an
        // allocation per candidate per run on case-folded indexes.
        let rest: Vec<(Pos, &[Pos])> =
            runs[1..].iter().map(|&(off, word)| (off, self.words.positions(word))).collect();
        let probes = firsts.len() + rest.len();
        let mut verify_bytes = 0u64;
        let text = self.corpus.text();
        let hits: Vec<Region> = firsts
            .iter()
            .filter_map(|&p| p.checked_sub(first_off))
            .filter(|&base| {
                rest.iter().all(|&(off, list)| list.binary_search(&(base + off)).is_ok())
            })
            .filter(|&base| {
                // Alignment fixes the word runs but not the separator
                // characters; verify the aligned span (PAT would compare the
                // sistring at `base`). Counted as scanned bytes.
                verify_bytes += w.len() as u64;
                text[base as usize..].starts_with(w)
            })
            .map(|base| Region::new(base, base + w.len() as Pos))
            .collect();
        let mut stats = self.stats.borrow_mut();
        stats.record_word_probe(probes);
        stats.record_scan(verify_bytes);
        drop(stats);
        self.clip_to_scope(RegionSet::from_regions(hits))
    }

    fn prefix_spans(&self, prefix: &str) -> RegionSet {
        // With a suffix array, prefix search is a binary search; the span of
        // each hit extends to the end of the word starting there. Without
        // one, fall back to scanning the word-index vocabulary.
        if let Some(sa) = self.suffix {
            let mut hits = sa.prefix_positions(self.corpus, prefix);
            if let Some(span) = &self.scope {
                hits.retain(|&p| span.start <= p && p < span.end);
            }
            self.stats.borrow_mut().record_word_probe(hits.len());
            let text = self.corpus.text().as_bytes();
            let spans = hits
                .into_iter()
                .map(|p| {
                    let mut e = p as usize;
                    while e < text.len() && (text[e] as char).is_ascii_alphanumeric() {
                        e += 1;
                    }
                    Region::new(p, e as Pos)
                })
                .collect();
            self.clip_to_scope(RegionSet::from_regions(spans))
        } else {
            let mut spans = Vec::new();
            let mut probes = 0usize;
            self.words.for_each_word(&mut |word, positions| {
                if word.starts_with(prefix) {
                    let positions = self.in_scope(positions);
                    probes += positions.len();
                    let len = word.len() as Pos;
                    spans.extend(positions.iter().map(|&p| Region::new(p, p + len)));
                }
            });
            self.stats.borrow_mut().record_word_probe(probes);
            self.clip_to_scope(RegionSet::from_regions(spans))
        }
    }

    fn name_set(&self, n: &str) -> Result<RegionSet, EvalError> {
        let set = self.instance.get(n).ok_or_else(|| EvalError::UnknownName(n.to_owned()))?;
        Ok(match &self.scope {
            None => set.clone(),
            Some(span) => set.within_span(span),
        })
    }

    fn eval_uncached(
        &self,
        expr: &RegionExpr,
        cache: &mut HashMap<RegionExpr, RegionSet>,
    ) -> Result<RegionSet, EvalError> {
        use RegionExpr::*;
        let record = |op: &'static str, consumed: usize, out: &RegionSet| {
            self.stats.borrow_mut().record_op(op, consumed, out.len());
        };
        Ok(match expr {
            Name(n) => {
                let s = self.name_set(n)?;
                record("name", 0, &s);
                s
            }
            Word(w) => {
                let s = self.word_spans(w);
                record("word", 0, &s);
                s
            }
            Prefix(p) => {
                let s = self.prefix_spans(p);
                record("prefix", 0, &s);
                s
            }
            Union(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = x.union(&y);
                record("∪", x.len() + y.len(), &out);
                out
            }
            Intersect(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = x.intersect(&y);
                record("∩", x.len() + y.len(), &out);
                out
            }
            Difference(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = x.difference(&y);
                record("−", x.len() + y.len(), &out);
                out
            }
            SelectEq(e, w) => {
                let x = self.eval_memo(e, cache)?;
                let occ = self.word_spans(w);
                let out = x.intersect(&occ);
                record("σ", x.len() + occ.len(), &out);
                out
            }
            SelectContains(e, w) => {
                let x = self.eval_memo(e, cache)?;
                let occ = self.word_spans(w);
                let out = x.including(&occ);
                record("σ∋", x.len() + occ.len(), &out);
                out
            }
            Innermost(e) => {
                let x = self.eval_memo(e, cache)?;
                let out = x.innermost();
                record("ι", x.len(), &out);
                out
            }
            Outermost(e) => {
                let x = self.eval_memo(e, cache)?;
                let out = x.outermost();
                record("ω", x.len(), &out);
                out
            }
            Including(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = x.including(&y);
                record("⊃", x.len() + y.len(), &out);
                out
            }
            IncludedIn(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = x.included_in(&y);
                record("⊂", x.len() + y.len(), &out);
                out
            }
            DirectIncluding(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = direct_including(&x, &y, &self.forest);
                // ⊃d consults the whole universe, which is what makes it
                // "significantly more expensive than the simple inclusion".
                record("⊃d", x.len() + y.len() + self.universe.len(), &out);
                out
            }
            DirectIncludedIn(a, b) => {
                let (x, y) = (self.eval_memo(a, cache)?, self.eval_memo(b, cache)?);
                let out = direct_included_in(&x, &y, &self.forest);
                record("⊂d", x.len() + y.len() + self.universe.len(), &out);
                out
            }
            NestedExactly { outer, inner, depth } => {
                let (x, y) = (self.eval_memo(outer, cache)?, self.eval_memo(inner, cache)?);
                let out = self.nested_exactly(&x, &y, *depth);
                record("⊃^n", x.len() + y.len(), &out);
                out
            }
            Near { left, right, gap } => {
                let (x, y) = (self.eval_memo(left, cache)?, self.eval_memo(right, cache)?);
                let out = near(&x, &y, *gap);
                record("near", x.len() + y.len(), &out);
                out
            }
            SelectCountAtLeast(e, w, n) => {
                let x = self.eval_memo(e, cache)?;
                let occ = self.word_spans(w);
                let out = count_at_least(&x, &occ, *n);
                record("σ≥n", x.len() + occ.len(), &out);
                out
            }
        })
    }

    /// Members of `outer` that include a member of `inner` with exactly
    /// `depth` indexed regions strictly in between. Exact when `outer`'s
    /// extents are indexed (always true for translated queries).
    fn nested_exactly(&self, outer: &RegionSet, inner: &RegionSet, depth: u32) -> RegionSet {
        let enclosures = self.forest.strict_enclosures(inner);
        let mut candidates: Vec<Region> = Vec::new();
        for p in enclosures.into_iter().flatten() {
            // Walk `depth` more strict enclosures up from the first one.
            if let Some(pi) = self.forest.find(&p) {
                if let Some(anc) = self.forest.ancestor_at(pi, depth) {
                    candidates.push(self.forest.regions()[anc]);
                }
            }
        }
        outer.intersect(&RegionSet::from_regions(candidates))
    }
}

/// Operator label + argument for a traced node. Labels match the keys used
/// by [`EvalStats::record_op`] so traces and stats aggregate on the same
/// vocabulary.
fn op_parts(expr: &RegionExpr) -> (&'static str, String) {
    use RegionExpr::*;
    match expr {
        Name(n) => ("name", n.clone()),
        Word(w) => ("word", format!("\"{w}\"")),
        Prefix(p) => ("prefix", format!("\"{p}*\"")),
        Union(..) => ("∪", String::new()),
        Intersect(..) => ("∩", String::new()),
        Difference(..) => ("−", String::new()),
        SelectEq(_, w) => ("σ", format!("\"{w}\"")),
        SelectContains(_, w) => ("σ∋", format!("\"{w}\"")),
        Innermost(_) => ("ι", String::new()),
        Outermost(_) => ("ω", String::new()),
        Including(..) => ("⊃", String::new()),
        IncludedIn(..) => ("⊂", String::new()),
        DirectIncluding(..) => ("⊃d", String::new()),
        DirectIncludedIn(..) => ("⊂d", String::new()),
        NestedExactly { depth, .. } => ("⊃^n", format!("depth {depth}")),
        Near { gap, .. } => ("near", format!("gap {gap}")),
        SelectCountAtLeast(_, w, n) => ("σ≥n", format!("\"{w}\" × {n}")),
    }
}

/// PAT's proximity search: combined spans of left regions followed within
/// `gap` bytes by right regions.
fn near(left: &RegionSet, right: &RegionSet, gap: u32) -> RegionSet {
    let rights = right.as_slice();
    let starts: Vec<Pos> = rights.iter().map(|r| r.start).collect();
    let mut out = Vec::new();
    for l in left {
        // Right regions starting in [l.end, l.end + gap].
        let lo = starts.partition_point(|&s| s < l.end);
        for r in &rights[lo..] {
            if r.start > l.end.saturating_add(gap) {
                break;
            }
            out.push(Region::new(l.start, r.end.max(l.end)));
        }
    }
    RegionSet::from_regions(out)
}

/// PAT's frequency search: members of `set` containing at least `n`
/// occurrence spans.
fn count_at_least(set: &RegionSet, occurrences: &RegionSet, n: u32) -> RegionSet {
    if n == 0 {
        return set.clone();
    }
    let occs = occurrences.as_slice();
    let starts: Vec<Pos> = occs.iter().map(|o| o.start).collect();
    let out = set
        .iter()
        .filter(|r| {
            let lo = starts.partition_point(|&s| s < r.start);
            let mut count = 0u32;
            for o in &occs[lo..] {
                if o.start >= r.end {
                    break;
                }
                if o.end <= r.end {
                    count += 1;
                    if count >= n {
                        return true;
                    }
                }
            }
            false
        })
        .copied()
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qof_text::{Tokenizer, WordIndex};

    /// A miniature BibTeX-like corpus with a hand-built instance:
    ///
    /// ```text
    /// AUTHOR = Chang . EDITOR = Corliss . AUTHOR = Corliss .
    /// ```
    /// Reference1 = [0, 34), Reference2 = [35, 53) (second "reference")
    fn fixture() -> (Corpus, WordIndex, Instance) {
        //          0         1         2         3         4         5
        //          0123456789012345678901234567890123456789012345678901
        let text = "AUTHOR = Chang . EDITOR = Corliss AUTHOR = Corliss .";
        let corpus = Corpus::from_text(text);
        let words = WordIndex::build(&corpus, &Tokenizer::new());
        let mut inst = Instance::new();
        // Two "references": one holding an author+editor, one an author.
        inst.insert(
            "Reference",
            RegionSet::from_regions(vec![Region::new(0, 33), Region::new(34, 52)]),
        );
        inst.insert(
            "Authors",
            RegionSet::from_regions(vec![Region::new(0, 15), Region::new(34, 51)]),
        );
        inst.insert("Editors", RegionSet::from_regions(vec![Region::new(17, 33)]));
        inst.insert(
            "Last_Name",
            RegionSet::from_regions(vec![
                Region::new(9, 14),  // Chang
                Region::new(26, 33), // Corliss (editor)
                Region::new(43, 50), // Corliss (author)
            ]),
        );
        (corpus, words, inst)
    }

    #[test]
    fn word_spans_have_word_length() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let s = eng.eval(&RegionExpr::word("Chang")).unwrap();
        assert_eq!(s.as_slice(), &[Region::new(9, 14)]);
        let s = eng.eval(&RegionExpr::word("Corliss")).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn select_eq_matches_exact_regions() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let e = RegionExpr::name("Last_Name").select_eq("Chang");
        let s = eng.eval(&e).unwrap();
        assert_eq!(s.as_slice(), &[Region::new(9, 14)]);
    }

    #[test]
    fn paper_query_authors_chang() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name)
        let e = RegionExpr::name("Reference").including(
            RegionExpr::name("Authors").including(RegionExpr::name("Last_Name").select_eq("Chang")),
        );
        let s = eng.eval(&e).unwrap();
        assert_eq!(s.as_slice(), &[Region::new(0, 33)]);
        // Corliss as *author* matches only the second reference.
        let e2 = RegionExpr::name("Reference").including(
            RegionExpr::name("Authors")
                .including(RegionExpr::name("Last_Name").select_eq("Corliss")),
        );
        let s2 = eng.eval(&e2).unwrap();
        assert_eq!(s2.as_slice(), &[Region::new(34, 52)]);
    }

    #[test]
    fn without_authors_test_both_references_match() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // Dropping the Authors test (partial indexing): Corliss matches both.
        let e = RegionExpr::name("Reference")
            .including(RegionExpr::name("Last_Name").select_eq("Corliss"));
        let s = eng.eval(&e).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn select_contains_vs_eq() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let eq = eng.eval(&RegionExpr::name("Authors").select_eq("Chang")).unwrap();
        assert!(eq.is_empty(), "no Authors region IS the word Chang");
        let contains = eng.eval(&RegionExpr::name("Authors").select_contains("Chang")).unwrap();
        assert_eq!(contains.as_slice(), &[Region::new(0, 15)]);
    }

    #[test]
    fn direct_including_through_engine() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // Reference ⊃d Last_Name fails where Authors/Editors intervene.
        let e = RegionExpr::name("Reference").direct_including(RegionExpr::name("Last_Name"));
        let s = eng.eval(&e).unwrap();
        assert!(s.is_empty());
        let e2 = RegionExpr::name("Authors").direct_including(RegionExpr::name("Last_Name"));
        let s2 = eng.eval(&e2).unwrap();
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn unknown_name_errors() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let err = eng.eval(&RegionExpr::name("Nope")).unwrap_err();
        assert_eq!(err, EvalError::UnknownName("Nope".into()));
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let e = RegionExpr::name("Reference")
            .including(RegionExpr::name("Last_Name").select_eq("Chang"));
        eng.eval(&e).unwrap();
        let s = eng.stats();
        assert_eq!(s.ops("⊃"), 1);
        assert_eq!(s.ops("σ"), 1);
        assert_eq!(s.word_probes, 1);
        eng.reset_stats();
        assert_eq!(eng.stats().total_ops(), 0);
    }

    #[test]
    fn unshared_evaluation_repeats_work() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let sub = RegionExpr::name("Last_Name").select_eq("Corliss");
        let e = RegionExpr::name("Authors")
            .including(sub.clone())
            .union(RegionExpr::name("Editors").including(sub));
        let shared = eng.eval(&e).unwrap();
        let ops_shared = eng.stats().ops("σ");
        eng.reset_stats();
        let unshared = eng.eval_unshared(&e).unwrap();
        assert_eq!(shared, unshared, "sharing must not change results");
        assert_eq!(ops_shared, 1);
        assert_eq!(eng.stats().ops("σ"), 2, "without sharing, σ runs twice");
    }

    #[test]
    fn common_subexpressions_evaluate_once() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let sub = RegionExpr::name("Last_Name").select_eq("Corliss");
        let e = RegionExpr::name("Authors")
            .including(sub.clone())
            .union(RegionExpr::name("Editors").including(sub));
        eng.eval(&e).unwrap();
        // σ evaluated once despite two occurrences.
        assert_eq!(eng.stats().ops("σ"), 1);
    }

    #[test]
    fn union_intersect_difference_through_engine() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let a = RegionExpr::name("Authors");
        let b = RegionExpr::name("Editors");
        assert_eq!(eng.eval(&a.clone().union(b.clone())).unwrap().len(), 3);
        assert_eq!(eng.eval(&a.clone().intersect(b.clone())).unwrap().len(), 0);
        assert_eq!(eng.eval(&a.clone().difference(b)).unwrap().len(), 2);
        assert_eq!(eng.eval(&a.clone().difference(a)).unwrap().len(), 0);
    }

    #[test]
    fn innermost_outermost_through_engine() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let all = RegionExpr::name("Reference").union(RegionExpr::name("Last_Name"));
        let inner = eng.eval(&all.clone().innermost()).unwrap();
        assert_eq!(inner.len(), 3); // the three last names
        let outer = eng.eval(&all.outermost()).unwrap();
        assert_eq!(outer.len(), 2); // the two references
    }

    #[test]
    fn prefix_without_suffix_array_scans_vocabulary() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        let s = eng.eval(&RegionExpr::prefix("Cor")).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn prefix_with_suffix_array() {
        let (c, w, i) = fixture();
        let sa = SuffixArray::build(&c, &Tokenizer::new());
        let eng = Engine::new(&c, &w, &i).with_suffix_array(&sa);
        let s = eng.eval(&RegionExpr::prefix("Cor")).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice()[0], Region::new(26, 33));
    }

    #[test]
    fn phrase_select_is_index_only() {
        let text = "KEYWORDS = point algorithm; Taylor series";
        let corpus = Corpus::from_text(text);
        let words = WordIndex::build(&corpus, &Tokenizer::new());
        let mut inst = Instance::new();
        // The Keyword regions: "point algorithm" and "Taylor series".
        inst.insert(
            "Keyword",
            RegionSet::from_regions(vec![Region::new(11, 26), Region::new(28, 41)]),
        );
        let eng = Engine::new(&corpus, &words, &inst);
        let hit = eng.eval(&RegionExpr::name("Keyword").select_eq("point algorithm")).unwrap();
        assert_eq!(hit.as_slice(), &[Region::new(11, 26)]);
        let miss = eng.eval(&RegionExpr::name("Keyword").select_eq("point series")).unwrap();
        assert!(miss.is_empty());
        // Alignment resolves through the word index; only the final
        // separator verification touches text (one constant-length check
        // per aligned candidate).
        assert!(eng.stats().bytes_scanned <= 2 * "point algorithm".len() as u64);
    }

    #[test]
    fn near_combines_spans() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // "Chang" followed within 3 bytes by ".": use words instead —
        // AUTHOR then "=" then name: word("AUTHOR") near word("Chang")?
        // AUTHOR at 0..6, Chang at 9..14: gap 3.
        let e = RegionExpr::word("AUTHOR").near(RegionExpr::word("Chang"), 3);
        let s = eng.eval(&e).unwrap();
        assert_eq!(s.as_slice(), &[Region::new(0, 14)]);
        // Gap too small: no match.
        let e2 = RegionExpr::word("AUTHOR").near(RegionExpr::word("Chang"), 2);
        assert!(eng.eval(&e2).unwrap().is_empty());
    }

    #[test]
    fn frequency_select() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // References containing at least one "Corliss": both references
        // contain exactly one each... the first has the editor Corliss, the
        // second the author Corliss.
        let e1 = RegionExpr::name("Reference").select_count_at_least("Corliss", 1);
        assert_eq!(eng.eval(&e1).unwrap().len(), 2);
        let e2 = RegionExpr::name("Reference").select_count_at_least("Corliss", 2);
        assert!(eng.eval(&e2).unwrap().is_empty());
        // n = 0 keeps everything.
        let e0 = RegionExpr::name("Reference").select_count_at_least("Corliss", 0);
        assert_eq!(eng.eval(&e0).unwrap().len(), 2);
    }

    #[test]
    fn scoped_engine_restricts_name_sets_and_words() {
        let (c, w, i) = fixture();
        // Scope to the second "reference" only.
        let eng = Engine::new_scoped(&c, &w, &i, 34..52);
        assert_eq!(eng.scope(), Some(&(34..52)));
        let refs = eng.eval(&RegionExpr::name("Reference")).unwrap();
        assert_eq!(refs.as_slice(), &[Region::new(34, 52)]);
        let corliss = eng.eval(&RegionExpr::word("Corliss")).unwrap();
        assert_eq!(corliss.as_slice(), &[Region::new(43, 50)]);
        let prefix = eng.eval(&RegionExpr::prefix("Cor")).unwrap();
        assert_eq!(prefix.as_slice(), &[Region::new(43, 50)]);
    }

    #[test]
    fn scoped_shards_concatenate_to_global_result() {
        let (c, w, i) = fixture();
        let global = Engine::new(&c, &w, &i);
        // Two spans partitioning the corpus between the references.
        let shards = [0..34, 34..52];
        let exprs = [
            RegionExpr::name("Reference").including(
                RegionExpr::name("Authors")
                    .including(RegionExpr::name("Last_Name").select_eq("Corliss")),
            ),
            RegionExpr::name("Reference").union(RegionExpr::name("Last_Name")).innermost(),
            RegionExpr::name("Authors").direct_including(RegionExpr::name("Last_Name")),
            RegionExpr::name("Reference").select_count_at_least("Corliss", 1),
        ];
        for e in &exprs {
            let want = global.eval(e).unwrap();
            let parts: Vec<RegionSet> = shards
                .iter()
                .map(|s| Engine::new_scoped(&c, &w, &i, s.clone()).eval(e).unwrap())
                .collect();
            assert_eq!(RegionSet::concat(parts), want, "shard mismatch for {e}");
        }
    }

    #[test]
    fn shared_cache_serves_repeat_evaluations() {
        let (c, w, i) = fixture();
        let shared = crate::SubexprCache::new();
        let e = RegionExpr::name("Reference")
            .including(RegionExpr::name("Last_Name").select_eq("Chang"));
        let first = {
            let eng = Engine::new(&c, &w, &i).with_shared_cache(&shared);
            eng.eval(&e).unwrap()
        };
        assert_eq!(shared.stats().hits, 0);
        let eng = Engine::new(&c, &w, &i).with_shared_cache(&shared);
        let second = eng.eval(&e).unwrap();
        assert_eq!(first, second);
        assert!(shared.stats().hits >= 1, "second evaluation must hit the cache");
        // The whole expression was answered from the cache: no ⊃ ran.
        assert_eq!(eng.stats().ops("⊃"), 0);
    }

    #[test]
    fn shared_cache_results_match_uncached() {
        let (c, w, i) = fixture();
        let shared = crate::SubexprCache::new();
        let exprs = [
            RegionExpr::name("Last_Name").select_eq("Corliss"),
            RegionExpr::name("Authors").union(RegionExpr::name("Editors")),
            RegionExpr::name("Editors").union(RegionExpr::name("Authors")),
        ];
        for e in &exprs {
            let plain = Engine::new(&c, &w, &i).eval(e).unwrap();
            let cached = Engine::new(&c, &w, &i).with_shared_cache(&shared).eval(e).unwrap();
            assert_eq!(plain, cached, "cache changed the result of {e}");
        }
        // The two commutative spellings share one entry.
        let s = shared.stats();
        assert!(s.hits >= 1, "B ∪ A must hit A ∪ B's entry, got {s:?}");
    }

    #[test]
    fn traced_eval_matches_untraced_and_records_tree() {
        let (c, w, i) = fixture();
        let e = RegionExpr::name("Reference").including(
            RegionExpr::name("Authors").including(RegionExpr::name("Last_Name").select_eq("Chang")),
        );
        let plain = Engine::new(&c, &w, &i).eval(&e).unwrap();
        let sink = TraceSink::new();
        let eng = Engine::new(&c, &w, &i).with_trace(&sink);
        let traced = eng.eval(&e).unwrap();
        assert_eq!(plain, traced, "tracing must not change results");
        let roots = sink.take();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.op, "⊃");
        assert_eq!(root.output, traced.len());
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.input, root.children.iter().map(|ch| ch.output).sum::<usize>());
        // No repeated subexpressions here, so every node is computed and the
        // tree has exactly one node per recorded operator application.
        assert_eq!(root.node_count() as u64, eng.stats().total_ops());
        // The σ node sits under Authors ⊃ …; its probe shows up in the trace.
        let mut sigma_probes = 0;
        root.walk(&mut |n| {
            if n.op == "σ" {
                sigma_probes = n.probes;
                assert_eq!(n.detail, "\"Chang\"");
            }
        });
        assert_eq!(sigma_probes, 1, "σ probes the word index once");
        assert!(root.probes >= 1, "parent totals include child probes");
    }

    #[test]
    fn traced_memo_hits_become_leaves() {
        let (c, w, i) = fixture();
        let sub = RegionExpr::name("Last_Name").select_eq("Corliss");
        let e = RegionExpr::name("Authors")
            .including(sub.clone())
            .union(RegionExpr::name("Editors").including(sub));
        let sink = TraceSink::new();
        let eng = Engine::new(&c, &w, &i).with_trace(&sink);
        let traced = eng.eval(&e).unwrap();
        assert_eq!(traced, Engine::new(&c, &w, &i).eval(&e).unwrap());
        let roots = sink.take();
        let mut memo_hits = Vec::new();
        roots[0].walk(&mut |n| {
            if n.source == CacheSource::LocalMemo {
                memo_hits.push((n.op.clone(), n.output));
            }
        });
        // The second σ occurrence is served by the memo: a childless leaf
        // whose output still reports the set's true cardinality (both
        // Corliss regions — the editor's and the author's).
        assert_eq!(memo_hits, vec![("σ".to_owned(), 2)]);
        // One extra tree node (the memo leaf) relative to computed ops.
        assert_eq!(roots[0].node_count() as u64, eng.stats().total_ops() + 1);
    }

    #[test]
    fn traced_shared_cache_hit_is_a_leaf() {
        let (c, w, i) = fixture();
        let shared = crate::SubexprCache::new();
        let e = RegionExpr::name("Reference")
            .including(RegionExpr::name("Last_Name").select_eq("Chang"));
        let first = Engine::new(&c, &w, &i).with_shared_cache(&shared).eval(&e).unwrap();
        let sink = TraceSink::new();
        let eng = Engine::new(&c, &w, &i).with_shared_cache(&shared).with_trace(&sink);
        let second = eng.eval(&e).unwrap();
        assert_eq!(first, second);
        let roots = sink.take();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].source, CacheSource::SharedCache);
        assert_eq!(roots[0].output, second.len());
        assert!(roots[0].children.is_empty());
    }

    #[test]
    fn nested_exactly_counts_levels() {
        let (c, w, i) = fixture();
        let eng = Engine::new(&c, &w, &i);
        // Reference ⊃^1 Last_Name: exactly one indexed region (Authors or
        // Editors) between — true for both references.
        let e = RegionExpr::name("Reference").nested_exactly(RegionExpr::name("Last_Name"), 1);
        assert_eq!(eng.eval(&e).unwrap().len(), 2);
        // Depth 0: Reference directly above Last_Name — never.
        let e0 = RegionExpr::name("Reference").nested_exactly(RegionExpr::name("Last_Name"), 0);
        assert!(eng.eval(&e0).unwrap().is_empty());
        // Authors ⊃^0 Last_Name — direct, both author groups.
        let ea = RegionExpr::name("Authors").nested_exactly(RegionExpr::name("Last_Name"), 0);
        assert_eq!(eng.eval(&ea).unwrap().len(), 2);
    }
}
