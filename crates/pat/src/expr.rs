//! Region expressions — the language of §3.1:
//!
//! ```text
//! e → Rᵢ | e ∪ e | e ∩ e | e − e | σ_w(e) | ι(e) | ω(e)
//!   | e ⊃ e | e ⊂ e | e ⊃d e | e ⊂d e | (e)
//! ```
//!
//! plus the match-point primitives (`word`, `prefix`) that `σ` is built
//! from, and the exact-nesting-depth operator used to translate fixed-length
//! path variables (§5.3).

use std::fmt;

/// A region expression. Construct with the fluent builder methods, e.g.:
///
/// ```
/// use qof_pat::RegionExpr;
/// let e = RegionExpr::name("Reference")
///     .including(RegionExpr::name("Authors")
///         .including(RegionExpr::name("Last_Name").select_eq("Chang")));
/// assert_eq!(e.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionExpr {
    /// The instance of a region name `Rᵢ`.
    Name(String),
    /// Occurrence spans of a word (match points with extent).
    Word(String),
    /// Occurrence spans of every word starting with a prefix (PAT's lexical
    /// search through the suffix array).
    Prefix(String),
    /// `e ∪ e`.
    Union(Box<RegionExpr>, Box<RegionExpr>),
    /// `e ∩ e`.
    Intersect(Box<RegionExpr>, Box<RegionExpr>),
    /// `e − e`.
    Difference(Box<RegionExpr>, Box<RegionExpr>),
    /// `σ_w(e)`: regions that are exactly the word `w` ("a `Last_Name` region
    /// that *is* the word Chang").
    SelectEq(Box<RegionExpr>, String),
    /// Regions containing at least one occurrence of the word.
    SelectContains(Box<RegionExpr>, String),
    /// `ι(e)`: members containing no other member.
    Innermost(Box<RegionExpr>),
    /// `ω(e)`: members contained in no other member.
    Outermost(Box<RegionExpr>),
    /// `e ⊃ e`.
    Including(Box<RegionExpr>, Box<RegionExpr>),
    /// `e ⊂ e`.
    IncludedIn(Box<RegionExpr>, Box<RegionExpr>),
    /// `e ⊃d e` (direct inclusion, relative to all indexed regions).
    DirectIncluding(Box<RegionExpr>, Box<RegionExpr>),
    /// `e ⊂d e`.
    DirectIncludedIn(Box<RegionExpr>, Box<RegionExpr>),
    /// Members of `outer` that include a member of `inner` with exactly
    /// `depth` indexed regions strictly in between — the translation of the
    /// fixed-length path variables `Ai.X1.…​.Xn.Aj` of §5.3.
    NestedExactly {
        /// The outer operand.
        outer: Box<RegionExpr>,
        /// The inner operand.
        inner: Box<RegionExpr>,
        /// Exact count of indexed regions strictly between the two.
        depth: u32,
    },
    /// PAT's proximity search: for each left region followed (within `gap`
    /// bytes) by a right region, the combined span from the left region's
    /// start to the right region's end.
    Near {
        /// The left operand.
        left: Box<RegionExpr>,
        /// The right operand.
        right: Box<RegionExpr>,
        /// Maximum byte gap between the left end and the right start.
        gap: u32,
    },
    /// PAT's frequency search: members containing at least `count`
    /// occurrences of the word.
    SelectCountAtLeast(Box<RegionExpr>, String, u32),
}

impl RegionExpr {
    /// `Rᵢ` — the instance of a region name.
    pub fn name(n: impl Into<String>) -> Self {
        RegionExpr::Name(n.into())
    }

    /// Match points of a word.
    pub fn word(w: impl Into<String>) -> Self {
        RegionExpr::Word(w.into())
    }

    /// Match points of all words with the given prefix.
    pub fn prefix(p: impl Into<String>) -> Self {
        RegionExpr::Prefix(p.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: RegionExpr) -> Self {
        RegionExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: RegionExpr) -> Self {
        RegionExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: RegionExpr) -> Self {
        RegionExpr::Difference(Box::new(self), Box::new(other))
    }

    /// `σ_w(self)` — members that are exactly the word `w`.
    pub fn select_eq(self, w: impl Into<String>) -> Self {
        RegionExpr::SelectEq(Box::new(self), w.into())
    }

    /// Members containing an occurrence of `w`.
    pub fn select_contains(self, w: impl Into<String>) -> Self {
        RegionExpr::SelectContains(Box::new(self), w.into())
    }

    /// `ι(self)`.
    pub fn innermost(self) -> Self {
        RegionExpr::Innermost(Box::new(self))
    }

    /// `ω(self)`.
    pub fn outermost(self) -> Self {
        RegionExpr::Outermost(Box::new(self))
    }

    /// `self ⊃ other`.
    pub fn including(self, other: RegionExpr) -> Self {
        RegionExpr::Including(Box::new(self), Box::new(other))
    }

    /// `self ⊂ other`.
    pub fn included_in(self, other: RegionExpr) -> Self {
        RegionExpr::IncludedIn(Box::new(self), Box::new(other))
    }

    /// `self ⊃d other`.
    pub fn direct_including(self, other: RegionExpr) -> Self {
        RegionExpr::DirectIncluding(Box::new(self), Box::new(other))
    }

    /// `self ⊂d other`.
    pub fn direct_included_in(self, other: RegionExpr) -> Self {
        RegionExpr::DirectIncludedIn(Box::new(self), Box::new(other))
    }

    /// Exact-nesting-depth inclusion (fixed-length path variables).
    pub fn nested_exactly(self, inner: RegionExpr, depth: u32) -> Self {
        RegionExpr::NestedExactly { outer: Box::new(self), inner: Box::new(inner), depth }
    }

    /// Proximity: combined spans of `self` regions followed within `gap`
    /// bytes by `other` regions (PAT's "near").
    pub fn near(self, other: RegionExpr, gap: u32) -> Self {
        RegionExpr::Near { left: Box::new(self), right: Box::new(other), gap }
    }

    /// Frequency search: members containing at least `count` occurrences
    /// of `w`.
    pub fn select_count_at_least(self, w: impl Into<String>, count: u32) -> Self {
        RegionExpr::SelectCountAtLeast(Box::new(self), w.into(), count)
    }

    /// Number of AST nodes (used to compare expression sizes in EXPLAIN).
    pub fn size(&self) -> usize {
        use RegionExpr::*;
        match self {
            Name(_) | Word(_) | Prefix(_) => 1,
            SelectEq(e, _)
            | SelectContains(e, _)
            | SelectCountAtLeast(e, _, _)
            | Innermost(e)
            | Outermost(e) => 1 + e.size(),
            Union(a, b)
            | Intersect(a, b)
            | Difference(a, b)
            | Including(a, b)
            | IncludedIn(a, b)
            | DirectIncluding(a, b)
            | DirectIncludedIn(a, b) => 1 + a.size() + b.size(),
            NestedExactly { outer, inner, .. } | Near { left: outer, right: inner, .. } => {
                1 + outer.size() + inner.size()
            }
        }
    }

    /// The canonical form used as a subexpression-cache key: commutative
    /// operands (`∪`, `∩`) are ordered, so syntactically different spellings
    /// of the same expression (`A ∪ B` vs `B ∪ A`) share one cache entry.
    /// Normalization is recursive; every subexpression of a normalized
    /// expression is itself normalized.
    pub fn normalized(&self) -> RegionExpr {
        use RegionExpr::*;
        match self {
            Name(_) | Word(_) | Prefix(_) => self.clone(),
            Union(a, b) => {
                let (x, y) = (a.normalized(), b.normalized());
                let (x, y) = if y < x { (y, x) } else { (x, y) };
                Union(Box::new(x), Box::new(y))
            }
            Intersect(a, b) => {
                let (x, y) = (a.normalized(), b.normalized());
                let (x, y) = if y < x { (y, x) } else { (x, y) };
                Intersect(Box::new(x), Box::new(y))
            }
            Difference(a, b) => Difference(Box::new(a.normalized()), Box::new(b.normalized())),
            SelectEq(e, w) => SelectEq(Box::new(e.normalized()), w.clone()),
            SelectContains(e, w) => SelectContains(Box::new(e.normalized()), w.clone()),
            SelectCountAtLeast(e, w, n) => {
                SelectCountAtLeast(Box::new(e.normalized()), w.clone(), *n)
            }
            Innermost(e) => Innermost(Box::new(e.normalized())),
            Outermost(e) => Outermost(Box::new(e.normalized())),
            Including(a, b) => Including(Box::new(a.normalized()), Box::new(b.normalized())),
            IncludedIn(a, b) => IncludedIn(Box::new(a.normalized()), Box::new(b.normalized())),
            DirectIncluding(a, b) => {
                DirectIncluding(Box::new(a.normalized()), Box::new(b.normalized()))
            }
            DirectIncludedIn(a, b) => {
                DirectIncludedIn(Box::new(a.normalized()), Box::new(b.normalized()))
            }
            NestedExactly { outer, inner, depth } => NestedExactly {
                outer: Box::new(outer.normalized()),
                inner: Box::new(inner.normalized()),
                depth: *depth,
            },
            Near { left, right, gap } => Near {
                left: Box::new(left.normalized()),
                right: Box::new(right.normalized()),
                gap: *gap,
            },
        }
    }

    /// All region names referenced by the expression.
    pub fn names(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a RegionExpr, out: &mut Vec<&'a str>) {
            use RegionExpr::*;
            match e {
                Name(n) => out.push(n),
                Word(_) | Prefix(_) => {}
                SelectEq(e, _)
                | SelectContains(e, _)
                | SelectCountAtLeast(e, _, _)
                | Innermost(e)
                | Outermost(e) => walk(e, out),
                Union(a, b)
                | Intersect(a, b)
                | Difference(a, b)
                | Including(a, b)
                | IncludedIn(a, b)
                | DirectIncluding(a, b)
                | DirectIncludedIn(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                NestedExactly { outer, inner, .. } | Near { left: outer, right: inner, .. } => {
                    walk(outer, out);
                    walk(inner, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for RegionExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper groups inclusion chains from the right and omits their
        // parentheses; binary set operators are parenthesized for clarity.
        use RegionExpr::*;
        match self {
            Name(n) => write!(f, "{n}"),
            Word(w) => write!(f, "word(\"{w}\")"),
            Prefix(p) => write!(f, "prefix(\"{p}\")"),
            Union(a, b) => write!(f, "({a} ∪ {b})"),
            Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Difference(a, b) => write!(f, "({a} − {b})"),
            SelectEq(e, w) => write!(f, "σ_\"{w}\"({e})"),
            SelectContains(e, w) => write!(f, "σ∋\"{w}\"({e})"),
            Innermost(e) => write!(f, "ι({e})"),
            Outermost(e) => write!(f, "ω({e})"),
            Including(a, b) => write!(f, "{} ⊃ {}", Chain(a), b),
            IncludedIn(a, b) => write!(f, "{} ⊂ {}", Chain(a), b),
            DirectIncluding(a, b) => write!(f, "{} ⊃d {}", Chain(a), b),
            DirectIncludedIn(a, b) => write!(f, "{} ⊂d {}", Chain(a), b),
            NestedExactly { outer, inner, depth } => {
                write!(f, "{} ⊃^{} {}", Chain(outer), depth, inner)
            }
            Near { left, right, gap } => write!(f, "({left} near[{gap}] {right})"),
            SelectCountAtLeast(e, w, n) => write!(f, "σ≥{n}\"{w}\"({e})"),
        }
    }
}

/// Wraps non-atomic left operands of inclusion operators in parentheses so
/// the right-grouping convention stays unambiguous in printed plans.
struct Chain<'a>(&'a RegionExpr);

impl fmt::Display for Chain<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use RegionExpr::*;
        match self.0 {
            Including(..)
            | IncludedIn(..)
            | DirectIncluding(..)
            | DirectIncludedIn(..)
            | NestedExactly { .. } => write!(f, "({})", self.0),
            other => write!(f, "{other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_displays_like_the_paper() {
        // e2 = Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name)
        let e = RegionExpr::name("Reference").including(
            RegionExpr::name("Authors").including(RegionExpr::name("Last_Name").select_eq("Chang")),
        );
        assert_eq!(e.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
    }

    #[test]
    fn direct_chain_display() {
        let e = RegionExpr::name("Reference").direct_including(
            RegionExpr::name("Authors").direct_including(
                RegionExpr::name("Name")
                    .direct_including(RegionExpr::name("Last_Name").select_eq("Chang")),
            ),
        );
        assert_eq!(e.to_string(), "Reference ⊃d Authors ⊃d Name ⊃d σ_\"Chang\"(Last_Name)");
        assert_eq!(e.size(), 8);
    }

    #[test]
    fn left_nested_chain_gets_parens() {
        let e =
            RegionExpr::name("A").including(RegionExpr::name("B")).including(RegionExpr::name("C"));
        assert_eq!(e.to_string(), "(A ⊃ B) ⊃ C");
    }

    #[test]
    fn union_of_chains_from_the_paper() {
        // (Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name)) ∪
        // (Reference ⊃ Editors ⊃ σ_"Corliss"(Last_Name))
        let chang = RegionExpr::name("Reference").including(
            RegionExpr::name("Authors").including(RegionExpr::name("Last_Name").select_eq("Chang")),
        );
        let corliss = RegionExpr::name("Reference").including(
            RegionExpr::name("Editors")
                .including(RegionExpr::name("Last_Name").select_eq("Corliss")),
        );
        let e = chang.union(corliss);
        assert!(e.to_string().contains("∪"));
        let names = e.names();
        assert_eq!(
            names,
            ["Reference", "Authors", "Last_Name", "Reference", "Editors", "Last_Name"]
        );
    }

    #[test]
    fn normalization_orders_commutative_operands() {
        let a = RegionExpr::name("A");
        let b = RegionExpr::name("B");
        assert_eq!(
            a.clone().union(b.clone()).normalized(),
            b.clone().union(a.clone()).normalized()
        );
        assert_eq!(
            a.clone().intersect(b.clone()).normalized(),
            b.clone().intersect(a.clone()).normalized()
        );
        // Non-commutative operators keep their operand order.
        assert_ne!(
            a.clone().difference(b.clone()).normalized(),
            b.clone().difference(a.clone()).normalized()
        );
        assert_ne!(a.clone().including(b.clone()).normalized(), b.including(a).normalized());
    }

    #[test]
    fn normalization_recurses_and_is_idempotent() {
        let inner =
            RegionExpr::name("Z").union(RegionExpr::name("A")).select_eq("Chang").innermost();
        let e = RegionExpr::name("R").including(inner);
        let n = e.normalized();
        assert_eq!(n, n.normalized());
        // The nested union was reordered.
        let expect = RegionExpr::name("R").including(
            RegionExpr::name("A").union(RegionExpr::name("Z")).select_eq("Chang").innermost(),
        );
        assert_eq!(n, expect);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(RegionExpr::name("A").size(), 1);
        assert_eq!(RegionExpr::name("A").innermost().size(), 2);
        assert_eq!(RegionExpr::name("A").nested_exactly(RegionExpr::name("B"), 2).size(), 3);
    }
}
