//! A shared, thread-safe subexpression cache: the cross-query realization of
//! §5.2's common-subexpression sharing. Within one `eval` call the engine
//! already shares identical subtrees; this cache extends the sharing across
//! queries of a batch (and across shard workers), so repeated chain prefixes
//! — the pattern the `a1` ablation measures — are computed once.
//!
//! Keys are `(scope, normalized RegionExpr)`: scoped (per-shard) engines and
//! the global engine never alias each other's entries, and commutative
//! spellings (`A ∪ B` vs `B ∪ A`) collapse to one entry via
//! [`RegionExpr::normalized`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qof_text::{Pos, Span};

use crate::{RegionExpr, RegionSet};

/// Scope component of a cache key; `None` (unscoped) maps to the full
/// address space so it can never collide with a real shard span.
fn scope_key(scope: Option<&Span>) -> (Pos, Pos) {
    scope.map_or((0, Pos::MAX), |s| (s.start, s.end))
}

/// Hit/miss counters and current size of a [`SubexprCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and were then computed and inserted).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Merges a per-shard stats block into this one. Hit and miss counts
    /// sum losslessly; `entries` is a gauge, not a counter — shard workers
    /// share one cache, so concurrent snapshots see (at most) the same
    /// resident set and the merged block keeps the largest observation.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries = self.entries.max(other.entries);
    }

    /// Fraction of lookups answered from the cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// A thread-safe map from `(scope, normalized expression)` to its evaluated
/// region set. Shared by reference across shard workers and batched queries;
/// the owner (e.g. `FileDatabase`) must clear it whenever the underlying
/// corpus or instance changes.
#[derive(Debug, Default)]
pub struct SubexprCache {
    // Two-level map so lookups can probe by `&RegionExpr` without cloning.
    map: Mutex<HashMap<(Pos, Pos), HashMap<RegionExpr, RegionSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SubexprCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a normalized expression under a scope, counting the outcome.
    pub fn get(&self, scope: Option<&Span>, expr: &RegionExpr) -> Option<RegionSet> {
        let key = scope_key(scope);
        let map = self.map.lock().expect("cache lock poisoned");
        match map.get(&key).and_then(|m| m.get(expr)) {
            Some(set) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(set.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an evaluated result (last writer wins on races; results for
    /// the same key are identical by construction).
    pub fn insert(&self, scope: Option<&Span>, expr: RegionExpr, set: RegionSet) {
        let key = scope_key(scope);
        let mut map = self.map.lock().expect("cache lock poisoned");
        map.entry(key).or_default().insert(expr, set);
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache lock poisoned").values().map(HashMap::len).sum(),
        }
    }

    /// Drops every entry and resets the counters (required after any
    /// mutation of the indexed corpus).
    pub fn clear(&self) {
        self.map.lock().expect("cache lock poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    fn rs(pairs: &[(Pos, Pos)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn get_insert_roundtrip_counts() {
        let cache = SubexprCache::new();
        let e = RegionExpr::name("A").union(RegionExpr::name("B")).normalized();
        assert_eq!(cache.get(None, &e), None);
        cache.insert(None, e.clone(), rs(&[(0, 5)]));
        assert_eq!(cache.get(None, &e), Some(rs(&[(0, 5)])));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn scopes_do_not_alias() {
        let cache = SubexprCache::new();
        let e = RegionExpr::name("A");
        cache.insert(Some(&(0..10)), e.clone(), rs(&[(0, 5)]));
        cache.insert(Some(&(10..20)), e.clone(), rs(&[(12, 15)]));
        assert_eq!(cache.get(Some(&(0..10)), &e), Some(rs(&[(0, 5)])));
        assert_eq!(cache.get(Some(&(10..20)), &e), Some(rs(&[(12, 15)])));
        assert_eq!(cache.get(None, &e), None);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SubexprCache::new();
        cache.insert(None, RegionExpr::name("A"), rs(&[(0, 1)]));
        let _ = cache.get(None, &RegionExpr::name("A"));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        assert!(s.hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn stats_merge_sums_counters_losslessly() {
        let a = CacheStats { hits: 3, misses: 2, entries: 7 };
        let b = CacheStats { hits: 5, misses: 0, entries: 4 };
        let mut m = a;
        m.merge(&b);
        assert_eq!((m.hits, m.misses), (8, 2), "hit/miss counters must sum, not overwrite");
        assert_eq!(m.entries, 7, "entries is a shared gauge: keep the max, never sum shards");
        assert!((m.hit_rate() - 0.8).abs() < f64::EPSILON);
    }

    #[test]
    fn commutative_spellings_share_entries() {
        let cache = SubexprCache::new();
        let ab = RegionExpr::name("A").union(RegionExpr::name("B")).normalized();
        let ba = RegionExpr::name("B").union(RegionExpr::name("A")).normalized();
        cache.insert(None, ab, rs(&[(0, 1)]));
        assert_eq!(cache.get(None, &ba), Some(rs(&[(0, 1)])));
    }
}
