//! A shared, thread-safe subexpression cache: the cross-query realization of
//! §5.2's common-subexpression sharing. Within one `eval` call the engine
//! already shares identical subtrees; this cache extends the sharing across
//! queries of a batch (and across shard workers), so repeated chain prefixes
//! — the pattern the `a1` ablation measures — are computed once.
//!
//! Keys are `(scope, normalized RegionExpr)`: scoped (per-shard) engines and
//! the global engine never alias each other's entries, and commutative
//! spellings (`A ∪ B` vs `B ∪ A`) collapse to one entry via
//! [`RegionExpr::normalized`].
//!
//! The cache is bounded. A long-running `qof serve` process with a diverse
//! query stream would otherwise grow it without limit (every distinct
//! normalized subexpression is one resident `RegionSet` forever); inserts
//! past the entry or byte cap evict the oldest entries first and count each
//! eviction in [`CacheStats::evictions`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qof_text::{Pos, Span};

use crate::{RegionExpr, RegionSet};

/// Default cap on resident entries (see [`SubexprCache::with_limits`]).
pub const DEFAULT_MAX_ENTRIES: usize = 8192;

/// Default cap on approximate resident bytes (64 MiB).
pub const DEFAULT_MAX_BYTES: usize = 64 << 20;

/// Scope component of a cache key; `None` (unscoped) maps to the full
/// address space so it can never collide with a real shard span.
fn scope_key(scope: Option<&Span>) -> (Pos, Pos) {
    scope.map_or((0, Pos::MAX), |s| (s.start, s.end))
}

/// Approximate resident size of one cached region set: the region pairs
/// plus a flat per-entry overhead for the key and map bookkeeping.
fn entry_bytes(set: &RegionSet) -> usize {
    set.len() * std::mem::size_of::<(Pos, Pos)>() + 64
}

/// Hit/miss/eviction counters and current size of a [`SubexprCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and were then computed and inserted).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to stay under the entry/byte caps (cumulative;
    /// `clear()` resets it along with the hit/miss counters).
    pub evictions: u64,
    /// Approximate bytes currently resident (region pairs + overhead).
    pub approx_bytes: usize,
}

impl CacheStats {
    /// Merges a per-shard stats block into this one. Hit, miss, and
    /// eviction counts sum losslessly; `entries`/`approx_bytes` are gauges,
    /// not counters — shard workers share one cache, so concurrent
    /// snapshots see (at most) the same resident set and the merged block
    /// keeps the largest observation.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries = self.entries.max(other.entries);
        self.approx_bytes = self.approx_bytes.max(other.approx_bytes);
    }

    /// Fraction of lookups answered from the cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// The lock-guarded resident state: the two-level map plus the FIFO
/// insertion order the evictor walks and the byte gauge.
#[derive(Debug, Default)]
struct Resident {
    // Two-level map so lookups can probe by `&RegionExpr` without cloning.
    map: HashMap<(Pos, Pos), HashMap<RegionExpr, RegionSet>>,
    /// Insertion order of `(scope, expr)` keys, oldest first. Replaced
    /// entries keep their original position (they are re-counted, not
    /// re-queued), so the queue length always equals the entry count.
    order: VecDeque<((Pos, Pos), RegionExpr)>,
    approx_bytes: usize,
}

impl Resident {
    fn entries(&self) -> usize {
        self.order.len()
    }

    /// Evicts oldest-first until both caps hold; returns how many entries
    /// were dropped.
    fn evict_to(&mut self, max_entries: usize, max_bytes: usize) -> u64 {
        let mut evicted = 0;
        while self.entries() > max_entries || self.approx_bytes > max_bytes {
            let Some((scope, expr)) = self.order.pop_front() else { break };
            if let Some(inner) = self.map.get_mut(&scope) {
                if let Some(set) = inner.remove(&expr) {
                    self.approx_bytes = self.approx_bytes.saturating_sub(entry_bytes(&set));
                    evicted += 1;
                }
                if inner.is_empty() {
                    self.map.remove(&scope);
                }
            }
        }
        evicted
    }
}

/// A thread-safe, bounded map from `(scope, normalized expression)` to its
/// evaluated region set. Shared by reference across shard workers and
/// batched queries; the owner (e.g. `FileDatabase`) must clear it whenever
/// the underlying corpus or instance changes.
#[derive(Debug)]
pub struct SubexprCache {
    resident: Mutex<Resident>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    max_entries: usize,
    max_bytes: usize,
}

impl Default for SubexprCache {
    fn default() -> Self {
        Self::with_limits(DEFAULT_MAX_ENTRIES, DEFAULT_MAX_BYTES)
    }
}

impl SubexprCache {
    /// An empty cache with the default entry/byte caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache capped at `max_entries` resident entries and
    /// `max_bytes` approximate resident bytes (whichever binds first).
    /// Inserts beyond either cap evict the oldest entries.
    pub fn with_limits(max_entries: usize, max_bytes: usize) -> Self {
        Self {
            resident: Mutex::new(Resident::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
        }
    }

    /// Looks up a normalized expression under a scope, counting the outcome.
    pub fn get(&self, scope: Option<&Span>, expr: &RegionExpr) -> Option<RegionSet> {
        let key = scope_key(scope);
        let resident = self.resident.lock().expect("cache lock poisoned");
        match resident.map.get(&key).and_then(|m| m.get(expr)) {
            Some(set) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(set.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an evaluated result (last writer wins on races; results for
    /// the same key are identical by construction), evicting oldest
    /// entries if the insert pushed the cache past its caps.
    pub fn insert(&self, scope: Option<&Span>, expr: RegionExpr, set: RegionSet) {
        let key = scope_key(scope);
        let added = entry_bytes(&set);
        let mut resident = self.resident.lock().expect("cache lock poisoned");
        match resident.map.entry(key).or_default().insert(expr.clone(), set) {
            Some(old) => {
                // Replacement: adjust the byte gauge, keep the queue slot.
                resident.approx_bytes = resident.approx_bytes.saturating_sub(entry_bytes(&old));
            }
            None => resident.order.push_back((key, expr)),
        }
        resident.approx_bytes += added;
        let evicted = resident.evict_to(self.max_entries, self.max_bytes);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        let resident = self.resident.lock().expect("cache lock poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: resident.entries(),
            evictions: self.evictions.load(Ordering::Relaxed),
            approx_bytes: resident.approx_bytes,
        }
    }

    /// Drops every entry and resets the counters (required after any
    /// mutation of the indexed corpus).
    pub fn clear(&self) {
        let mut resident = self.resident.lock().expect("cache lock poisoned");
        *resident = Resident::default();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    fn rs(pairs: &[(Pos, Pos)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn get_insert_roundtrip_counts() {
        let cache = SubexprCache::new();
        let e = RegionExpr::name("A").union(RegionExpr::name("B")).normalized();
        assert_eq!(cache.get(None, &e), None);
        cache.insert(None, e.clone(), rs(&[(0, 5)]));
        assert_eq!(cache.get(None, &e), Some(rs(&[(0, 5)])));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (1, 1, 1, 0));
        assert!(s.approx_bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn scopes_do_not_alias() {
        let cache = SubexprCache::new();
        let e = RegionExpr::name("A");
        cache.insert(Some(&(0..10)), e.clone(), rs(&[(0, 5)]));
        cache.insert(Some(&(10..20)), e.clone(), rs(&[(12, 15)]));
        assert_eq!(cache.get(Some(&(0..10)), &e), Some(rs(&[(0, 5)])));
        assert_eq!(cache.get(Some(&(10..20)), &e), Some(rs(&[(12, 15)])));
        assert_eq!(cache.get(None, &e), None);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SubexprCache::new();
        cache.insert(None, RegionExpr::name("A"), rs(&[(0, 1)]));
        let _ = cache.get(None, &RegionExpr::name("A"));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (0, 0, 0, 0));
        assert_eq!(s.approx_bytes, 0);
        assert!(s.hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn stats_merge_sums_counters_losslessly() {
        let a = CacheStats { hits: 3, misses: 2, entries: 7, evictions: 1, approx_bytes: 100 };
        let b = CacheStats { hits: 5, misses: 0, entries: 4, evictions: 2, approx_bytes: 300 };
        let mut m = a;
        m.merge(&b);
        assert_eq!((m.hits, m.misses), (8, 2), "hit/miss counters must sum, not overwrite");
        assert_eq!(m.evictions, 3, "evictions is a counter: it sums");
        assert_eq!(m.entries, 7, "entries is a shared gauge: keep the max, never sum shards");
        assert_eq!(m.approx_bytes, 300, "bytes is a shared gauge too");
        assert!((m.hit_rate() - 0.8).abs() < f64::EPSILON);
    }

    #[test]
    fn commutative_spellings_share_entries() {
        let cache = SubexprCache::new();
        let ab = RegionExpr::name("A").union(RegionExpr::name("B")).normalized();
        let ba = RegionExpr::name("B").union(RegionExpr::name("A")).normalized();
        cache.insert(None, ab, rs(&[(0, 1)]));
        assert_eq!(cache.get(None, &ba), Some(rs(&[(0, 1)])));
    }

    #[test]
    fn entry_cap_evicts_oldest_first() {
        let cache = SubexprCache::with_limits(3, usize::MAX);
        for i in 0..5u32 {
            cache.insert(None, RegionExpr::name(format!("A{i}")), rs(&[(i, i + 1)]));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 3, "cap holds");
        assert_eq!(s.evictions, 2, "two oldest entries evicted");
        // A0/A1 are gone, A2..A4 survive.
        assert_eq!(cache.get(None, &RegionExpr::name("A0")), None);
        assert_eq!(cache.get(None, &RegionExpr::name("A1")), None);
        for i in 2..5u32 {
            assert!(cache.get(None, &RegionExpr::name(format!("A{i}"))).is_some(), "A{i} resident");
        }
    }

    #[test]
    fn byte_cap_evicts_and_tracks_gauge() {
        // Each entry costs 64 bytes of overhead plus its regions; a cap of
        // 200 bytes holds at most two small entries.
        let cache = SubexprCache::with_limits(usize::MAX, 200);
        for i in 0..4u32 {
            cache.insert(None, RegionExpr::name(format!("B{i}")), rs(&[(i, i + 1)]));
        }
        let s = cache.stats();
        assert!(s.entries <= 2, "byte cap binds: {} entries", s.entries);
        assert!(s.approx_bytes <= 200, "gauge stays under the cap: {}", s.approx_bytes);
        assert_eq!(s.evictions as usize, 4 - s.entries);
    }

    #[test]
    fn replacement_does_not_grow_entries_or_leak_bytes() {
        let cache = SubexprCache::with_limits(8, usize::MAX);
        let e = RegionExpr::name("A");
        cache.insert(None, e.clone(), rs(&[(0, 1), (2, 3), (4, 5)]));
        let big = cache.stats().approx_bytes;
        cache.insert(None, e.clone(), rs(&[(0, 1)]));
        let s = cache.stats();
        assert_eq!(s.entries, 1, "replacement reuses the slot");
        assert!(s.approx_bytes < big, "byte gauge shrinks with the smaller value");
        assert_eq!(cache.get(None, &e), Some(rs(&[(0, 1)])), "last writer wins");
    }
}
