//! The *universe forest*: the nesting structure of all indexed regions.
//!
//! Direct inclusion (`⊃d`, `⊂d`) is defined relative to the whole region
//! index: `r` directly includes `s` iff `r ⊇ s` and *no other indexed
//! region lies strictly between them* (§3.1). Evaluating it efficiently
//! therefore needs, for any region, its deepest strict enclosure among the
//! indexed regions. When the indexed regions are properly nested (always the
//! case for regions extracted from a parse tree), that structure is a
//! forest, built here with a single stack sweep.

use crate::{Region, RegionSet};

/// Nesting forest over the universe of indexed regions.
#[derive(Debug, Clone)]
pub struct UniverseForest {
    regions: Vec<Region>,
    parent: Vec<Option<u32>>,
    depth: Vec<u32>,
    properly_nested: bool,
}

impl UniverseForest {
    /// Builds the forest for `universe` (all indexed regions, deduplicated).
    pub fn build(universe: &RegionSet) -> Self {
        let regions: Vec<Region> = universe.as_slice().to_vec();
        let n = regions.len();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut depth: Vec<u32> = vec![0; n];
        let mut properly_nested = true;
        let mut stack: Vec<u32> = Vec::new();
        for (i, r) in regions.iter().enumerate() {
            while let Some(&top) = stack.last() {
                if regions[top as usize].end <= r.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                let t = regions[top as usize];
                if t.end >= r.end {
                    parent[i] = Some(top);
                    depth[i] = depth[top as usize] + 1;
                } else {
                    // Partial overlap: the universe is not properly nested.
                    properly_nested = false;
                    // Best effort: the nearest stack entry that does contain r.
                    if let Some(&anc) =
                        stack.iter().rev().find(|&&k| regions[k as usize].end >= r.end)
                    {
                        parent[i] = Some(anc);
                        depth[i] = depth[anc as usize] + 1;
                    }
                }
            }
            stack.push(i as u32);
        }
        Self { regions, parent, depth, properly_nested }
    }

    /// True when no two universe regions partially overlap (nesting is a
    /// forest). Grammar-derived instances always satisfy this.
    pub fn is_properly_nested(&self) -> bool {
        self.properly_nested
    }

    /// Number of universe regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The universe regions in canonical order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Index of `r` in the universe, if its exact extents are indexed.
    pub fn find(&self, r: &Region) -> Option<usize> {
        self.regions.binary_search(r).ok()
    }

    /// True when every member of `set` has its extents in the universe.
    pub fn covers(&self, set: &RegionSet) -> bool {
        set.iter().all(|r| self.find(r).is_some())
    }

    /// Parent (deepest strict enclosure) of universe region `idx`.
    pub fn parent_of(&self, idx: usize) -> Option<usize> {
        self.parent[idx].map(|p| p as usize)
    }

    /// Nesting depth of universe region `idx` (roots are 0).
    pub fn depth_of(&self, idx: usize) -> u32 {
        self.depth[idx]
    }

    /// Ancestor of `idx` exactly `steps` parent links up.
    pub fn ancestor_at(&self, idx: usize, steps: u32) -> Option<usize> {
        let mut cur = idx;
        for _ in 0..steps {
            cur = self.parent[cur]? as usize;
        }
        Some(cur)
    }

    /// For each region of `query` (in canonical order), the extents of its
    /// deepest **strict** enclosure among the universe regions, or `None`
    /// when no universe region strictly contains it.
    ///
    /// Correct for arbitrary `query` sets as long as the universe is
    /// properly nested.
    pub fn strict_enclosures(&self, query: &RegionSet) -> Vec<Option<Region>> {
        let mut out = Vec::with_capacity(query.len());
        // Merged sweep: universe regions are pushed onto an open-region
        // stack; each query is answered from the stack.
        let mut stack: Vec<Region> = Vec::new();
        let mut ui = 0usize;
        for q in query {
            // Push universe regions that come before q in canonical order
            // (ties: universe first, since an equal-extents universe region
            // must be on the stack when q is answered).
            while ui < self.regions.len() && self.regions[ui] <= *q {
                let u = self.regions[ui];
                while let Some(top) = stack.last() {
                    if top.end <= u.start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(u);
                ui += 1;
            }
            while let Some(top) = stack.last() {
                if top.end <= q.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            // Stack ends are non-increasing from bottom to top; the deepest
            // strict container is the last entry with end >= q.end that is
            // not q itself.
            let k = stack.partition_point(|r| r.end >= q.end);
            let mut ans = None;
            for j in (0..k).rev() {
                if stack[j] != *q {
                    debug_assert!(stack[j].includes(q) || !self.properly_nested);
                    ans = Some(stack[j]);
                    break;
                }
            }
            out.push(ans);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qof_text::Pos;

    fn rs(pairs: &[(Pos, Pos)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn builds_parent_chain() {
        let u = rs(&[(0, 100), (10, 50), (20, 30), (60, 90), (200, 250)]);
        let f = UniverseForest::build(&u);
        assert!(f.is_properly_nested());
        let idx = |a, b| f.find(&Region::new(a, b)).unwrap();
        assert_eq!(f.parent_of(idx(0, 100)), None);
        assert_eq!(f.parent_of(idx(10, 50)), Some(idx(0, 100)));
        assert_eq!(f.parent_of(idx(20, 30)), Some(idx(10, 50)));
        assert_eq!(f.parent_of(idx(60, 90)), Some(idx(0, 100)));
        assert_eq!(f.parent_of(idx(200, 250)), None);
        assert_eq!(f.depth_of(idx(20, 30)), 2);
        assert_eq!(f.ancestor_at(idx(20, 30), 2), Some(idx(0, 100)));
        assert_eq!(f.ancestor_at(idx(20, 30), 3), None);
    }

    #[test]
    fn detects_partial_overlap() {
        let u = rs(&[(0, 10), (5, 15)]);
        let f = UniverseForest::build(&u);
        assert!(!f.is_properly_nested());
    }

    #[test]
    fn equal_end_nesting_is_proper() {
        let u = rs(&[(0, 10), (5, 10)]);
        let f = UniverseForest::build(&u);
        assert!(f.is_properly_nested());
        let inner = f.find(&Region::new(5, 10)).unwrap();
        assert_eq!(f.parent_of(inner), f.find(&Region::new(0, 10)));
    }

    #[test]
    fn strict_enclosures_for_members_and_strangers() {
        let u = rs(&[(0, 100), (10, 50), (20, 30)]);
        let f = UniverseForest::build(&u);
        // Universe members: enclosure == parent.
        let q = rs(&[(10, 50), (20, 30)]);
        let e = f.strict_enclosures(&q);
        assert_eq!(e, vec![Some(Region::new(0, 100)), Some(Region::new(10, 50))]);
        // A stranger region nested below (20,30).
        let q2 = rs(&[(22, 25)]);
        assert_eq!(f.strict_enclosures(&q2), vec![Some(Region::new(20, 30))]);
        // A stranger with the same extents as a universe region.
        let q3 = rs(&[(20, 30)]);
        assert_eq!(f.strict_enclosures(&q3), vec![Some(Region::new(10, 50))]);
        // Outside everything.
        let q4 = rs(&[(500, 600)]);
        assert_eq!(f.strict_enclosures(&q4), vec![None]);
    }

    #[test]
    fn strict_enclosures_touching_boundaries() {
        let u = rs(&[(0, 10), (10, 20)]);
        let f = UniverseForest::build(&u);
        // Query at [10, 12): inside the second region only (half-open).
        assert_eq!(f.strict_enclosures(&rs(&[(10, 12)])), vec![Some(Region::new(10, 20))]);
        // Query spanning the boundary is inside neither.
        assert_eq!(f.strict_enclosures(&rs(&[(8, 12)])), vec![None]);
    }

    #[test]
    fn covers_checks_membership() {
        let u = rs(&[(0, 10), (20, 30)]);
        let f = UniverseForest::build(&u);
        assert!(f.covers(&rs(&[(0, 10)])));
        assert!(!f.covers(&rs(&[(0, 10), (1, 2)])));
        assert!(f.covers(&RegionSet::new()));
    }
}
