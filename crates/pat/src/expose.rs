//! Metrics exposition: the renderers that turn a [`MetricsSnapshot`] into
//! machine-readable text. Two surfaces exist and both live here so they
//! cannot drift apart:
//!
//! * [`render_prometheus`] — Prometheus text exposition format v0.0.4, the
//!   body of the query server's `GET /metrics`. Counters become `counter`
//!   series; the log₂ latency histograms become native Prometheus
//!   `histogram` series (`_bucket{le=…}` cumulative counts, `_sum`,
//!   `_count`), with per-operator histograms labelled `{op="⊃"}`.
//! * [`snapshot_to_json`] — a dependency-free JSON document with the same
//!   counters and full bucket contents, the body of `qof stats --json` and
//!   of `GET /metrics?format=json`.
//!
//! All durations are nanoseconds in the JSON document and seconds in the
//! Prometheus rendering (Prometheus' base-unit convention).

use std::fmt::Write as _;

use crate::history::HistorySample;
use crate::slo::{SloSpec, SloStatus};
use crate::trace::{Histogram, MetricsSnapshot};
use crate::workload::WorkloadEntry;

/// Version stamp of the `/metrics/history` JSON envelope.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn esc_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a string for a JSON literal.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds as a Prometheus seconds value (`f64` prints shortest
/// round-tripping decimal, so `2048` ns renders as `0.000002048`).
#[allow(clippy::cast_precision_loss)]
fn secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

/// Emits one histogram's `_bucket`/`_sum`/`_count` series under `name`,
/// with `labels` (e.g. `op="⊃"`) spliced into every sample.
fn histogram_series(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, &n) in h.bucket_counts().iter().enumerate() {
        cumulative += n;
        // Only materialize boundaries up to the last non-empty bucket;
        // `+Inf` below carries the total regardless.
        if cumulative == 0 || n == 0 {
            continue;
        }
        if let Some(ub) = Histogram::bucket_upper_bound(i) {
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}", secs(ub));
        }
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count());
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", secs(h.sum()));
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", secs(h.sum()));
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

/// Renders the snapshot in the Prometheus text exposition format v0.0.4.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counters: [(&str, &str, u64); 7] = [
        ("qof_queries_total", "Queries executed (successes and failures).", snap.queries),
        ("qof_query_errors_total", "Queries that returned an error.", snap.query_errors),
        ("qof_cache_hits_total", "Shared subexpression-cache hits.", snap.cache_hits),
        ("qof_cache_misses_total", "Shared subexpression-cache misses.", snap.cache_misses),
        (
            "qof_cache_evictions_total",
            "Shared subexpression-cache entries evicted by the entry/byte caps.",
            snap.cache_evictions,
        ),
        ("qof_plan_cache_hits_total", "Optimized-plan cache hits.", snap.plan_cache_hits),
        ("qof_plan_cache_misses_total", "Optimized-plan cache misses.", snap.plan_cache_misses),
    ];
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    if !snap.index_bytes.is_empty() {
        let _ = writeln!(
            out,
            "# HELP qof_index_bytes Resident word-index footprint in bytes, by backend."
        );
        let _ = writeln!(out, "# TYPE qof_index_bytes gauge");
        for (backend, bytes) in &snap.index_bytes {
            let _ = writeln!(out, "qof_index_bytes{{backend=\"{}\"}} {bytes}", esc_label(backend));
        }
        let _ = writeln!(out, "# HELP qof_corpus_bytes Corpus text bytes behind the index.");
        let _ = writeln!(out, "# TYPE qof_corpus_bytes gauge");
        let _ = writeln!(out, "qof_corpus_bytes {}", snap.corpus_bytes);
    }
    let _ = writeln!(out, "# HELP qof_query_latency_seconds End-to-end query latency.");
    let _ = writeln!(out, "# TYPE qof_query_latency_seconds histogram");
    histogram_series(&mut out, "qof_query_latency_seconds", "", &snap.query_latency);
    if !snap.op_latency.is_empty() {
        let _ = writeln!(
            out,
            "# HELP qof_op_latency_seconds Per-operator evaluation latency (exclusive time)."
        );
        let _ = writeln!(out, "# TYPE qof_op_latency_seconds histogram");
        for (op, h) in &snap.op_latency {
            let label = format!("op=\"{}\"", esc_label(op));
            histogram_series(&mut out, "qof_op_latency_seconds", &label, h);
        }
    }
    out
}

/// One histogram as a JSON object: count, sum, the p50/p95 summary, and
/// the non-empty buckets (`le_nanos` exclusive upper bound, 0 = open end).
fn histogram_json(h: &Histogram) -> String {
    let s = h.summary();
    let mut out = format!(
        "{{\"count\":{},\"sum_nanos\":{},\"p50_nanos\":{},\"p95_nanos\":{},\"buckets\":[",
        s.count, s.sum_nanos, s.p50_nanos, s.p95_nanos
    );
    let mut first = true;
    for (i, &n) in h.bucket_counts().iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let le = Histogram::bucket_upper_bound(i).unwrap_or(0);
        let _ = write!(out, "{{\"le_nanos\":{le},\"count\":{n}}}");
    }
    out.push_str("]}");
    out
}

/// Serializes the snapshot as JSON: the `qof stats --json` document, also
/// served by `GET /metrics?format=json`.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"queries\":{},\"query_errors\":{},\"cache_hits\":{},\"cache_misses\":{}",
        snap.queries, snap.query_errors, snap.cache_hits, snap.cache_misses
    );
    let _ = write!(out, ",\"cache_hit_rate\":{}", snap.cache_hit_rate());
    let _ = write!(out, ",\"cache_evictions\":{}", snap.cache_evictions);
    let _ = write!(
        out,
        ",\"plan_cache_hits\":{},\"plan_cache_misses\":{}",
        snap.plan_cache_hits, snap.plan_cache_misses
    );
    let _ = write!(out, ",\"plan_cache_hit_rate\":{}", snap.plan_cache_hit_rate());
    out.push_str(",\"index_bytes\":{");
    for (i, (backend, bytes)) in snap.index_bytes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{bytes}", esc_json(backend));
    }
    let _ = write!(out, "}},\"corpus_bytes\":{}", snap.corpus_bytes);
    let _ = write!(out, ",\"query_latency\":{}", histogram_json(&snap.query_latency));
    out.push_str(",\"op_latency\":{");
    for (i, (op, h)) in snap.op_latency.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", esc_json(op), histogram_json(h));
    }
    out.push_str("}}");
    out
}

/// Renders the evaluated SLO state as Prometheus gauges — appended after
/// [`render_prometheus`] by the server when `--slo` is set, so the base
/// exposition (and its golden test) stays byte-identical without SLOs.
pub fn render_slo_prometheus(spec: &SloSpec, status: &SloStatus) -> String {
    let mut out = String::new();
    #[allow(clippy::cast_precision_loss)]
    if let Some(target) = spec.p95_nanos {
        let _ = writeln!(out, "# HELP qof_slo_latency_p95_target_seconds Declared p95 objective.");
        let _ = writeln!(out, "# TYPE qof_slo_latency_p95_target_seconds gauge");
        let _ = writeln!(out, "qof_slo_latency_p95_target_seconds {}", secs(target));
    }
    if let Some(budget) = spec.error_budget {
        let _ = writeln!(out, "# HELP qof_slo_error_budget Declared error-rate budget (fraction).");
        let _ = writeln!(out, "# TYPE qof_slo_error_budget gauge");
        let _ = writeln!(out, "qof_slo_error_budget {budget}");
    }
    let objectives = [("latency", status.latency.as_ref()), ("error", status.error.as_ref())];
    let _ = writeln!(
        out,
        "# HELP qof_slo_burn_rate Error-budget burn rate per objective and window \
         (1 = budget consumed exactly at accrual speed)."
    );
    let _ = writeln!(out, "# TYPE qof_slo_burn_rate gauge");
    for (name, obj) in objectives {
        if let Some(o) = obj {
            let _ = writeln!(
                out,
                "qof_slo_burn_rate{{objective=\"{name}\",window=\"short\"}} {}",
                o.burn_short
            );
            let _ = writeln!(
                out,
                "qof_slo_burn_rate{{objective=\"{name}\",window=\"long\"}} {}",
                o.burn_long
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP qof_slo_breach Whether the objective burns over threshold in both windows."
    );
    let _ = writeln!(out, "# TYPE qof_slo_breach gauge");
    for (name, obj) in objectives {
        if let Some(o) = obj {
            let _ =
                writeln!(out, "qof_slo_breach{{objective=\"{name}\"}} {}", u8::from(o.breached));
        }
    }
    out
}

/// One [`SloStatus`] as a JSON object (embedded in the history envelope).
fn slo_status_json(spec: &SloSpec, status: &SloStatus) -> String {
    let mut out = format!("{{\"declared\":\"{}\"", esc_json(&spec.describe()));
    for (name, obj) in [("latency", status.latency.as_ref()), ("error", status.error.as_ref())] {
        if let Some(o) = obj {
            let _ = write!(
                out,
                ",\"{name}\":{{\"burn_short\":{},\"burn_long\":{},\"breached\":{}}}",
                o.burn_short, o.burn_long, o.breached
            );
        }
    }
    let _ = write!(out, ",\"breached\":{}}}", status.breached());
    out
}

/// Serializes a trailing window of history samples (plus the evaluated SLO
/// state, when objectives are declared) as the `GET /metrics/history`
/// document, also printed by `qof stats --history`.
pub fn history_to_json(
    samples: &[HistorySample],
    window_ms: u64,
    now_ms: u64,
    slo: Option<(&SloSpec, &SloStatus)>,
) -> String {
    let mut out = format!(
        "{{\"schema_version\":{HISTORY_SCHEMA_VERSION},\"now_ms\":{now_ms},\
         \"window_ms\":{window_ms},\"samples\":["
    );
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ts_ms\":{},\"dur_ms\":{},\"queries\":{},\"query_errors\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"latency\":{}}}",
            s.ts_ms,
            s.dur_ms,
            s.queries,
            s.query_errors,
            s.cache_hits,
            s.cache_misses,
            s.plan_cache_hits,
            s.plan_cache_misses,
            histogram_json(&s.latency)
        );
    }
    out.push(']');
    if let Some((spec, status)) = slo {
        let _ = write!(out, ",\"slo\":{}", slo_status_json(spec, status));
    }
    out.push('}');
    out
}

/// Version stamp of the `GET /workload` JSON envelope.
pub const WORKLOAD_SCHEMA_VERSION: u64 = 1;

/// Serializes a workload-table snapshot as the `GET /workload` document,
/// also printed by `qof stats --workload` and rebuilt offline by
/// `qof qlog analyze --json`. Fingerprints render as fixed-width 16-hex
/// strings (JSON numbers would lose bits past 2^53 in consumers).
pub fn workload_to_json(entries: &[WorkloadEntry], capacity: usize) -> String {
    let mut out = format!(
        "{{\"schema_version\":{WORKLOAD_SCHEMA_VERSION},\"capacity\":{capacity},\
         \"entries\":["
    );
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fingerprint\":\"{:016x}\",\"exemplar\":\"{}\",\"hits\":{},\
             \"overcount\":{},\"errors\":{},\"total_bytes\":{},\"max_bytes\":{},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"worst_est_ratio\":{},\"worst_est_trace\":{},\"latency\":{}}}",
            e.fingerprint,
            esc_json(&e.exemplar),
            e.hits,
            e.overcount,
            e.errors,
            e.total_bytes,
            e.max_bytes,
            e.plan_cache_hits,
            e.plan_cache_misses,
            e.cache_hits,
            e.cache_misses,
            e.worst_est_ratio,
            e.worst_est_trace,
            histogram_json(&e.latency)
        );
    }
    out.push_str("]}");
    out
}

/// Renders the workload table as Prometheus series with `fingerprint`
/// labels — appended after [`render_prometheus`] by the server when
/// `GET /workload?format=prometheus` is asked, so the base exposition
/// (and its golden test) stays byte-identical.
///
/// Everything is a gauge, not a counter: space-saving eviction can
/// recycle an entry, so a series may reset or vanish between scrapes.
pub fn render_workload_prometheus(entries: &[WorkloadEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP qof_workload_hits Observations counted against the fingerprint \
         (space-saving: up to `overcount` may be inherited)."
    );
    let _ = writeln!(out, "# TYPE qof_workload_hits gauge");
    for e in entries {
        let _ =
            writeln!(out, "qof_workload_hits{{fingerprint=\"{:016x}\"}} {}", e.fingerprint, e.hits);
    }
    let _ = writeln!(out, "# HELP qof_workload_errors Failed queries per fingerprint.");
    let _ = writeln!(out, "# TYPE qof_workload_errors gauge");
    for e in entries {
        let _ = writeln!(
            out,
            "qof_workload_errors{{fingerprint=\"{:016x}\"}} {}",
            e.fingerprint, e.errors
        );
    }
    let _ = writeln!(out, "# HELP qof_workload_bytes_total Bytes touched per fingerprint.");
    let _ = writeln!(out, "# TYPE qof_workload_bytes_total gauge");
    for e in entries {
        let _ = writeln!(
            out,
            "qof_workload_bytes_total{{fingerprint=\"{:016x}\"}} {}",
            e.fingerprint, e.total_bytes
        );
    }
    let _ = writeln!(out, "# HELP qof_workload_latency_seconds Per-fingerprint query latency.");
    let _ = writeln!(out, "# TYPE qof_workload_latency_seconds histogram");
    for e in entries {
        let label = format!("fingerprint=\"{:016x}\"", e.fingerprint);
        histogram_series(&mut out, "qof_workload_latency_seconds", &label, &e.latency);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MetricsRegistry;

    /// A registry with a fully known content: 3 queries (1 error), cache
    /// 2/1, two ops. Latencies land in known log₂ buckets.
    fn known_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.record_query(1_000, true); // bucket [512, 1024) → le 1024ns
        reg.record_query(1_000, true);
        reg.record_query(1 << 20, false); // le 2^21 ns
        reg.record_cache(2, 1);
        reg.record_cache_evictions(5);
        reg.record_plan_cache(true);
        reg.record_plan_cache(true);
        reg.record_plan_cache(false);
        reg.record_op("⊃", 600); // le 1024ns
        reg.record_op("σ", 100); // le 128ns
        reg.record_index_bytes("qofx", 4096, 10_000);
        reg.snapshot()
    }

    #[test]
    fn prometheus_rendering_is_golden() {
        let text = render_prometheus(&known_snapshot());
        let want = "\
# HELP qof_queries_total Queries executed (successes and failures).
# TYPE qof_queries_total counter
qof_queries_total 3
# HELP qof_query_errors_total Queries that returned an error.
# TYPE qof_query_errors_total counter
qof_query_errors_total 1
# HELP qof_cache_hits_total Shared subexpression-cache hits.
# TYPE qof_cache_hits_total counter
qof_cache_hits_total 2
# HELP qof_cache_misses_total Shared subexpression-cache misses.
# TYPE qof_cache_misses_total counter
qof_cache_misses_total 1
# HELP qof_cache_evictions_total Shared subexpression-cache entries evicted by the entry/byte caps.
# TYPE qof_cache_evictions_total counter
qof_cache_evictions_total 5
# HELP qof_plan_cache_hits_total Optimized-plan cache hits.
# TYPE qof_plan_cache_hits_total counter
qof_plan_cache_hits_total 2
# HELP qof_plan_cache_misses_total Optimized-plan cache misses.
# TYPE qof_plan_cache_misses_total counter
qof_plan_cache_misses_total 1
# HELP qof_index_bytes Resident word-index footprint in bytes, by backend.
# TYPE qof_index_bytes gauge
qof_index_bytes{backend=\"qofx\"} 4096
# HELP qof_corpus_bytes Corpus text bytes behind the index.
# TYPE qof_corpus_bytes gauge
qof_corpus_bytes 10000
# HELP qof_query_latency_seconds End-to-end query latency.
# TYPE qof_query_latency_seconds histogram
qof_query_latency_seconds_bucket{le=\"0.000001024\"} 2
qof_query_latency_seconds_bucket{le=\"0.002097152\"} 3
qof_query_latency_seconds_bucket{le=\"+Inf\"} 3
qof_query_latency_seconds_sum 0.001050576
qof_query_latency_seconds_count 3
# HELP qof_op_latency_seconds Per-operator evaluation latency (exclusive time).
# TYPE qof_op_latency_seconds histogram
qof_op_latency_seconds_bucket{op=\"σ\",le=\"0.000000128\"} 1
qof_op_latency_seconds_bucket{op=\"σ\",le=\"+Inf\"} 1
qof_op_latency_seconds_sum{op=\"σ\"} 0.0000001
qof_op_latency_seconds_count{op=\"σ\"} 1
qof_op_latency_seconds_bucket{op=\"⊃\",le=\"0.000001024\"} 1
qof_op_latency_seconds_bucket{op=\"⊃\",le=\"+Inf\"} 1
qof_op_latency_seconds_sum{op=\"⊃\"} 0.0000006
qof_op_latency_seconds_count{op=\"⊃\"} 1
";
        assert_eq!(text, want);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let text = render_prometheus(&known_snapshot());
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("qof_query_latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 3, "+Inf bucket carries the total count");
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = MetricsRegistry::new().snapshot();
        let text = render_prometheus(&snap);
        assert!(text.contains("qof_queries_total 0"));
        assert!(text.contains("qof_query_latency_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("qof_op_latency_seconds"), "no op series when none recorded");
        assert!(!text.contains("qof_index_bytes"), "no gauge until a database publishes");
        let json = snapshot_to_json(&snap);
        assert!(json.contains("\"queries\":0"));
        assert!(json.contains("\"op_latency\":{}"));
        assert!(json.contains("\"index_bytes\":{},\"corpus_bytes\":0"), "{json}");
    }

    #[test]
    fn json_document_matches_the_snapshot() {
        let snap = known_snapshot();
        let json = snapshot_to_json(&snap);
        assert!(json.contains("\"queries\":3,\"query_errors\":1"));
        assert!(json.contains("\"cache_hits\":2,\"cache_misses\":1"));
        assert!(json.contains("\"cache_evictions\":5"));
        assert!(json.contains("\"plan_cache_hits\":2,\"plan_cache_misses\":1"), "{json}");
        assert!(json.contains("\"plan_cache_hit_rate\":0.6666666666666666"), "{json}");
        assert!(json.contains("\"index_bytes\":{\"qofx\":4096},\"corpus_bytes\":10000"), "{json}");
        assert!(json.contains("\"le_nanos\":1024,\"count\":2"), "{json}");
        assert!(json.contains("\"⊃\""));
        // Structural sanity: balanced braces, no trailing commas.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
        assert!(!json.contains(",}") && !json.contains(",]"), "{json}");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(esc_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc_label("⊃"), "⊃");
    }

    #[test]
    fn history_json_envelope() {
        let reg = MetricsRegistry::new();
        reg.record_query(1_000, true);
        reg.record_history_sample(1_000);
        reg.record_query(2_000, false);
        reg.record_history_sample(2_000);
        let samples = reg.history().samples(0, 2_000);
        let json = history_to_json(&samples, 60_000, 2_000, None);
        assert!(json.contains("\"schema_version\":1"), "{json}");
        assert!(json.contains("\"now_ms\":2000,\"window_ms\":60000"), "{json}");
        assert!(json.contains("\"ts_ms\":1000,\"dur_ms\":0,\"queries\":1"), "{json}");
        assert!(json.contains("\"ts_ms\":2000,\"dur_ms\":1000,\"queries\":1"), "{json}");
        assert!(json.contains("\"query_errors\":1"), "{json}");
        assert!(!json.contains("\"slo\""), "no slo key without objectives: {json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
        // Our own reader parses the envelope (qof top consumes it).
        let parsed = crate::json::Json::parse(&json).expect("envelope parses");
        let obj = parsed.as_obj().unwrap();
        assert_eq!(crate::json::get_arr(obj, "samples").unwrap().len(), 2);
    }

    #[test]
    fn workload_json_and_prometheus() {
        use crate::workload::{WorkloadObs, WorkloadTable};
        let t = WorkloadTable::new();
        t.observe(&WorkloadObs {
            fingerprint: 0xabcd,
            exemplar: "SELECT r FROM References r".to_owned(),
            nanos: 1_000,
            bytes: 42,
            plan_cache_hits: 1,
            plan_cache_misses: 1,
            cache_hits: 0,
            cache_misses: 3,
            error: false,
            est_ratio: 2.5,
            trace_id: 9,
        });
        let snap = t.snapshot();
        let json = workload_to_json(&snap, t.capacity());
        assert!(json.contains("\"schema_version\":1,\"capacity\":64"), "{json}");
        assert!(json.contains("\"fingerprint\":\"000000000000abcd\""), "{json}");
        assert!(json.contains("\"hits\":1,\"overcount\":0,\"errors\":0"), "{json}");
        assert!(json.contains("\"total_bytes\":42,\"max_bytes\":42"), "{json}");
        assert!(json.contains("\"worst_est_ratio\":2.5,\"worst_est_trace\":9"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
        let parsed = crate::json::Json::parse(&json).expect("workload document parses");
        let obj = parsed.as_obj().unwrap();
        assert_eq!(crate::json::get_arr(obj, "entries").unwrap().len(), 1);
        let text = render_workload_prometheus(&snap);
        assert!(text.contains("qof_workload_hits{fingerprint=\"000000000000abcd\"} 1"), "{text}");
        assert!(text.contains("qof_workload_errors{fingerprint=\"000000000000abcd\"} 0"), "{text}");
        assert!(
            text.contains("qof_workload_bytes_total{fingerprint=\"000000000000abcd\"} 42"),
            "{text}"
        );
        assert!(
            text.contains("qof_workload_latency_seconds_count{fingerprint=\"000000000000abcd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn slo_gauges_and_json() {
        use crate::slo::SloSpec;
        let spec = SloSpec::parse("p95=50ms,err=1%").unwrap();
        let reg = MetricsRegistry::new();
        for _ in 0..10 {
            reg.record_query(1_000, false); // all errors, all fast
        }
        reg.record_history_sample(1_000);
        let status = spec.evaluate(reg.history(), 1_000);
        let text = render_slo_prometheus(&spec, &status);
        assert!(text.contains("qof_slo_latency_p95_target_seconds 0.05"), "{text}");
        assert!(text.contains("qof_slo_error_budget 0.01"), "{text}");
        assert!(
            text.contains("qof_slo_burn_rate{objective=\"error\",window=\"short\"} 100"),
            "{text}"
        );
        assert!(text.contains("qof_slo_breach{objective=\"error\"} 1"), "{text}");
        assert!(text.contains("qof_slo_breach{objective=\"latency\"} 0"), "{text}");
        let samples = reg.history().samples(0, 1_000);
        let json = history_to_json(&samples, 0, 1_000, Some((&spec, &status)));
        assert!(json.contains("\"slo\":{\"declared\":\"p95≤50ms, err≤1%\""), "{json}");
        assert!(json.contains("\"breached\":true}"), "{json}");
        let parsed = crate::json::Json::parse(&json).expect("envelope parses");
        assert!(parsed.as_obj().is_some());
    }
}
