//! Delta-coded posting lists with a block directory — the compressed
//! representation behind [`CompressedWordIndex`](crate::CompressedWordIndex)
//! and the `.qofx` on-disk format (DESIGN.md §13).
//!
//! A posting list is a strictly ascending sequence of byte positions. It is
//! stored as blocks of up to [`BLOCK_LEN`] postings; each block records its
//! first posting absolutely in a small directory and the rest as LEB128
//! gaps, so a reader can skip whole blocks (the directory gives every
//! block's first posting) and only pay the varint decode for blocks that
//! overlap the span it cares about.

use crate::varint::{decode_u32, decode_u64, encode_u32, encode_u64};
use crate::{Pos, Span};

/// Postings per block: small enough that a span probe decodes little,
/// large enough that the per-block directory entry amortizes away.
pub const BLOCK_LEN: usize = 128;

/// One directory entry: where a block starts, in value space and byte space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockRef {
    /// The block's first posting (stored absolutely).
    first: Pos,
    /// Byte offset of the block's gap payload within `payload`.
    offset: u32,
}

/// An immutable compressed posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPostings {
    count: usize,
    dir: Vec<BlockRef>,
    /// Concatenated per-block gap payloads (each block's first posting
    /// lives in `dir`, the remaining postings as varint gaps).
    payload: Vec<u8>,
}

impl CompressedPostings {
    /// Compresses a sorted, strictly ascending posting list.
    ///
    /// # Panics
    /// Panics (debug) if `postings` is not strictly ascending.
    pub fn encode(postings: &[Pos]) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0] < w[1]), "postings must ascend strictly");
        let mut dir = Vec::with_capacity(postings.len().div_ceil(BLOCK_LEN));
        let mut payload = Vec::new();
        for block in postings.chunks(BLOCK_LEN) {
            dir.push(BlockRef { first: block[0], offset: payload.len() as u32 });
            let mut prev = block[0];
            for &p in &block[1..] {
                encode_u32(p - prev, &mut payload);
                prev = p;
            }
        }
        CompressedPostings { count: postings.len(), dir, payload }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size in bytes (directory + payload), as stored.
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len() + self.dir.len() * (std::mem::size_of::<Pos>() + 1)
    }

    /// Decompresses the full list.
    pub fn decode(&self) -> Vec<Pos> {
        let mut out = Vec::with_capacity(self.count);
        for b in 0..self.dir.len() {
            self.decode_block(b, &mut out);
        }
        debug_assert_eq!(out.len(), self.count);
        out
    }

    /// Decompresses only the postings inside `span` (half-open), skipping
    /// blocks that lie entirely outside it via the block directory.
    pub fn decode_within(&self, span: &Span) -> Vec<Pos> {
        // First block whose *successor* starts past span.start: earlier
        // blocks end before the span (block maxima stay below the next
        // block's first posting).
        let lo = self.dir.partition_point(|b| b.first < span.start).saturating_sub(1);
        let mut out = Vec::new();
        for b in lo..self.dir.len() {
            if self.dir[b].first >= span.end {
                break;
            }
            let from = out.len();
            self.decode_block(b, &mut out);
            // Trim the (at most two) partially overlapping blocks.
            let tail = &mut out[from..];
            let keep_from = tail.partition_point(|&p| p < span.start);
            let keep_to = tail.partition_point(|&p| p < span.end);
            out.copy_within(from + keep_from..from + keep_to, from);
            out.truncate(from + keep_to - keep_from);
        }
        out
    }

    /// Appends block `b`'s postings to `out`.
    fn decode_block(&self, b: usize, out: &mut Vec<Pos>) {
        let start = self.dir[b].offset as usize;
        let end = self.dir.get(b + 1).map_or(self.payload.len(), |n| n.offset as usize);
        let mut cur = self.dir[b].first;
        out.push(cur);
        let mut at = start;
        while at < end {
            // Encoding is in-process and trusted; a decode failure here is
            // a bug, not an input error.
            let gap = decode_u32(&self.payload, &mut at).expect("in-memory payload is well-formed");
            cur += gap;
            out.push(cur);
        }
    }

    /// Serializes to the `.qofx` wire form: `count`, `n_blocks`, per-block
    /// `(first-posting gap, payload length)`, then the payloads.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        encode_u64(self.count as u64, out);
        encode_u64(self.dir.len() as u64, out);
        let mut prev_first = 0u32;
        for (b, r) in self.dir.iter().enumerate() {
            let end = self.dir.get(b + 1).map_or(self.payload.len(), |n| n.offset as usize);
            encode_u32(r.first - prev_first, out);
            encode_u64((end - r.offset as usize) as u64, out);
            prev_first = r.first;
        }
        out.extend_from_slice(&self.payload);
    }

    /// Deserializes the [`write_to`](Self::write_to) wire form. Returns
    /// `None` on truncated or structurally inconsistent input (the caller
    /// translates this into its own corruption diagnostic).
    pub fn read_from(buf: &[u8], at: &mut usize) -> Option<Self> {
        let count = usize::try_from(decode_u64(buf, at)?).ok()?;
        let n_blocks = usize::try_from(decode_u64(buf, at)?).ok()?;
        if n_blocks != count.div_ceil(BLOCK_LEN) {
            return None;
        }
        let mut dir = Vec::with_capacity(n_blocks);
        let mut first = 0u32;
        let mut offset = 0u64;
        for _ in 0..n_blocks {
            first = first.checked_add(decode_u32(buf, at)?)?;
            let len = decode_u64(buf, at)?;
            dir.push(BlockRef { first, offset: u32::try_from(offset).ok()? });
            offset = offset.checked_add(len)?;
        }
        let payload_len = usize::try_from(offset).ok()?;
        let end = at.checked_add(payload_len)?;
        let payload = buf.get(*at..end)?.to_vec();
        *at = end;
        let decoded = CompressedPostings { count, dir, payload };
        // The payload must decode to exactly `count` ascending postings;
        // walk it now so later `decode()` calls cannot panic on bad bytes.
        decoded.validate().then_some(decoded)
    }

    /// Checks that every block's payload is well-formed varint gaps
    /// (non-zero: postings ascend strictly) summing to `count` postings.
    fn validate(&self) -> bool {
        let mut total = 0usize;
        for (b, r) in self.dir.iter().enumerate() {
            let end = self.dir.get(b + 1).map_or(self.payload.len(), |n| n.offset as usize);
            let mut at = r.offset as usize;
            if at > end || end > self.payload.len() {
                return false;
            }
            let mut in_block = 1usize;
            let mut cur = r.first;
            while at < end {
                let Some(gap) = decode_u32(&self.payload, &mut at) else { return false };
                let Some(next) = (gap > 0).then(|| cur.checked_add(gap)).flatten() else {
                    return false;
                };
                cur = next;
                in_block += 1;
            }
            if at != end || in_block > BLOCK_LEN {
                return false;
            }
            if let Some(next) = self.dir.get(b + 1) {
                if in_block != BLOCK_LEN || next.first <= cur {
                    return false;
                }
            }
            total += in_block;
        }
        total == self.count || (self.count == 0 && self.dir.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, stride: u32) -> Vec<Pos> {
        (0..n as u32)
            .map(|i| i * stride + (i % 7))
            .scan(0, |acc, v| {
                *acc = (*acc).max(v) + 1;
                Some(*acc)
            })
            .collect()
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        for n in [0, 1, 2, BLOCK_LEN - 1, BLOCK_LEN, BLOCK_LEN + 1, 3 * BLOCK_LEN + 17] {
            let postings = sample(n, 13);
            let c = CompressedPostings::encode(&postings);
            assert_eq!(c.len(), n);
            assert_eq!(c.decode(), postings, "n={n}");
        }
    }

    #[test]
    fn decode_within_matches_slice_filter() {
        let postings = sample(5 * BLOCK_LEN, 11);
        let c = CompressedPostings::encode(&postings);
        let max = *postings.last().unwrap();
        for span in [0..0, 0..1, 0..max + 10, 500..600, 3000..3001, max..max + 5, 7..4000] {
            let want: Vec<Pos> = postings.iter().copied().filter(|p| span.contains(p)).collect();
            assert_eq!(c.decode_within(&span), want, "span={span:?}");
        }
    }

    #[test]
    fn wire_form_round_trips() {
        for n in [0, 1, BLOCK_LEN, 2 * BLOCK_LEN + 5] {
            let postings = sample(n, 9);
            let c = CompressedPostings::encode(&postings);
            let mut buf = vec![0xaa; 3]; // leading noise: decode from an offset
            c.write_to(&mut buf);
            let mut at = 3;
            let back = CompressedPostings::read_from(&buf, &mut at).unwrap();
            assert_eq!(at, buf.len());
            assert_eq!(back, c);
            assert_eq!(back.decode(), postings);
        }
    }

    #[test]
    fn wire_form_rejects_truncation_and_bit_flips() {
        let postings = sample(2 * BLOCK_LEN + 40, 21);
        let c = CompressedPostings::encode(&postings);
        let mut buf = Vec::new();
        c.write_to(&mut buf);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut at = 0;
            assert!(
                CompressedPostings::read_from(&buf[..cut], &mut at).is_none(),
                "cut at {cut} must not parse"
            );
        }
        // Flipping any byte either fails to parse or still decodes to a
        // *valid* (ascending, right-count) list — never a panic.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let mut at = 0;
            if let Some(parsed) = CompressedPostings::read_from(&bad, &mut at) {
                let decoded = parsed.decode();
                assert_eq!(decoded.len(), parsed.len());
                assert!(decoded.windows(2).all(|w| w[0] < w[1]), "flip at {i}");
            }
        }
    }

    #[test]
    fn gaps_compress_dense_lists() {
        // Dense positions (small gaps) must land well under 4 bytes per
        // posting — the raw Vec<u32> footprint.
        let postings: Vec<Pos> = (0..4096u32).map(|i| i * 3).collect();
        let c = CompressedPostings::encode(&postings);
        assert!(
            c.compressed_bytes() < postings.len() * 2,
            "{} bytes for {} postings",
            c.compressed_bytes(),
            postings.len()
        );
    }
}
