//! Word tokenization. The word index and the PAT array both index *word
//! start* positions, as PAT does: a word is a maximal run of word characters.

use crate::{Pos, Span};

/// A single word occurrence: its span in the global text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The word text (a slice of the corpus).
    pub text: &'a str,
    /// Where the word occurs.
    pub span: Span,
}

/// Splits corpus text into word tokens.
///
/// A word character is ASCII alphanumeric by default; additional characters
/// (e.g. `-` or `_`) can be admitted. Matching can be case-folded, in which
/// case the index stores lowercase keys while spans always refer to the
/// original text.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    extra: Vec<char>,
    case_fold: bool,
}

impl Tokenizer {
    /// Case-sensitive ASCII-alphanumeric tokenizer (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits additional word characters such as `-` or `'`.
    pub fn with_extra_chars(mut self, chars: &[char]) -> Self {
        self.extra.extend_from_slice(chars);
        self
    }

    /// Enables case folding: index keys are lowercased.
    pub fn case_insensitive(mut self) -> Self {
        self.case_fold = true;
        self
    }

    /// Whether this tokenizer folds case.
    pub fn folds_case(&self) -> bool {
        self.case_fold
    }

    /// Normalizes a query word the same way indexed words are normalized.
    pub fn normalize(&self, word: &str) -> String {
        if self.case_fold {
            word.to_lowercase()
        } else {
            word.to_owned()
        }
    }

    fn is_word_char(&self, c: char) -> bool {
        c.is_ascii_alphanumeric() || self.extra.contains(&c)
    }

    /// Iterates over the tokens of `text`, with spans offset by `base`
    /// (the position of `text` within the global corpus).
    pub fn tokenize<'a>(
        &'a self,
        text: &'a str,
        base: Pos,
    ) -> impl Iterator<Item = Token<'a>> + 'a {
        TokenIter { tok: self, text, base, at: 0 }
    }
}

struct TokenIter<'a> {
    tok: &'a Tokenizer,
    text: &'a str,
    base: Pos,
    at: usize,
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        let bytes = self.text.as_bytes();
        // Skip non-word bytes. Word chars are ASCII, so byte-wise advance is
        // safe: multi-byte UTF-8 sequences contain no ASCII bytes.
        while self.at < bytes.len() && !self.tok.is_word_char(bytes[self.at] as char) {
            self.at += 1;
        }
        if self.at >= bytes.len() {
            return None;
        }
        let start = self.at;
        while self.at < bytes.len() && self.tok.is_word_char(bytes[self.at] as char) {
            self.at += 1;
        }
        let span = (self.base + start as Pos)..(self.base + self.at as Pos);
        Some(Token { text: &self.text[start..self.at], span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(t: &Tokenizer, s: &str) -> Vec<String> {
        t.tokenize(s, 0).map(|t| t.text.to_owned()).collect()
    }

    #[test]
    fn basic_words() {
        let t = Tokenizer::new();
        assert_eq!(
            words(&t, "G. F. Corliss and Y. F. Chang"),
            ["G", "F", "Corliss", "and", "Y", "F", "Chang"]
        );
    }

    #[test]
    fn spans_are_offset_by_base() {
        let t = Tokenizer::new();
        let toks: Vec<_> = t.tokenize("ab cd", 100).collect();
        assert_eq!(toks[0].span, 100..102);
        assert_eq!(toks[1].span, 103..105);
    }

    #[test]
    fn extra_chars_join_words() {
        let t = Tokenizer::new().with_extra_chars(&['-']);
        assert_eq!(words(&t, "pre-processor runs"), ["pre-processor", "runs"]);
    }

    #[test]
    fn digits_are_words() {
        let t = Tokenizer::new();
        assert_eq!(words(&t, "pages 114--144, 1982"), ["pages", "114", "144", "1982"]);
    }

    #[test]
    fn unicode_is_skipped_without_panic() {
        let t = Tokenizer::new();
        assert_eq!(words(&t, "naïve café x"), ["na", "ve", "caf", "x"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        let t = Tokenizer::new();
        assert!(words(&t, "").is_empty());
        assert!(words(&t, "!@# $%").is_empty());
    }

    #[test]
    fn normalize_respects_case_mode() {
        let cs = Tokenizer::new();
        let ci = Tokenizer::new().case_insensitive();
        assert_eq!(cs.normalize("Chang"), "Chang");
        assert_eq!(ci.normalize("Chang"), "chang");
    }
}
