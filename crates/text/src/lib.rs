#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # qof-text
//!
//! Low-level text substrate for the *Optimizing Queries on Files* (Consens &
//! Milo, SIGMOD 1994) reproduction: a multi-file [`Corpus`] with a single
//! global byte-offset space, a configurable [`Tokenizer`], an inverted
//! [`WordIndex`] recording the location of every indexed word (the paper's
//! "word index"), and a [`SuffixArray`] over word-start positions — the
//! classic PAT array of semi-infinite strings ("sistrings") that the PAT
//! system of Open Text is built on.
//!
//! Positions are `u32` byte offsets ([`Pos`]); a span is a half-open
//! `start..end` pair. Everything higher in the stack (regions, the region
//! algebra, structuring schemas) is expressed in terms of these offsets.

mod compressed;
mod corpus;
mod postings;
mod suffix;
mod token;
pub mod varint;
mod word_index;
mod word_lookup;

pub use compressed::{CompressedWordIndex, PostingsSource};
pub use corpus::{Corpus, CorpusBuilder, FileEntry, FileId};
pub use postings::{CompressedPostings, BLOCK_LEN};
pub use suffix::SuffixArray;
pub use token::{Token, Tokenizer};
pub use word_index::{WordIndex, WordIndexBuilder, WordStats};
pub use word_lookup::WordLookup;

/// A byte offset into the global corpus text.
pub type Pos = u32;

/// A half-open byte span `start..end` in the global corpus text.
pub type Span = std::ops::Range<Pos>;
