//! The corpus: one or more named files mapped into a single global offset
//! space, mirroring how PAT indexes a whole file system as one logical text.

use crate::{Pos, Span};

/// Identifier of a file within a [`Corpus`] (its insertion index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// A single file's name and the span it occupies in the global text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name (path-like label; the corpus does not touch the real FS).
    pub name: String,
    /// Span of this file's contents in the global text.
    pub span: Span,
}

/// An immutable collection of files concatenated into one logical text.
///
/// Files are separated by a single `\n` so that no token can straddle a file
/// boundary. All higher layers (word index, region indices, parse trees)
/// address the corpus through global byte offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    text: String,
    files: Vec<FileEntry>,
}

/// Incremental constructor for a [`Corpus`].
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    text: String,
    files: Vec<FileEntry>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a file, returning its id. A newline separator is inserted
    /// between files so spans of distinct files never touch.
    pub fn add_file(&mut self, name: impl Into<String>, contents: &str) -> FileId {
        if !self.files.is_empty() {
            self.text.push('\n');
        }
        let start = self.text.len() as Pos;
        self.text.push_str(contents);
        let end = self.text.len() as Pos;
        let id = FileId(self.files.len() as u32);
        self.files.push(FileEntry { name: name.into(), span: start..end });
        id
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Corpus {
        Corpus { text: self.text, files: self.files }
    }
}

impl Corpus {
    /// Builds a corpus holding a single anonymous file.
    pub fn from_text(contents: &str) -> Self {
        let mut b = CorpusBuilder::new();
        b.add_file("<text>", contents);
        b.build()
    }

    /// The complete global text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Total length of the global text in bytes.
    pub fn len(&self) -> Pos {
        self.text.len() as Pos
    }

    /// True if the corpus holds no text.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The registered files in insertion order.
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// Slice of the global text covered by `span`.
    ///
    /// # Panics
    /// Panics if the span is out of bounds or not on char boundaries.
    pub fn slice(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// The file containing position `pos`, if any (separator bytes between
    /// files belong to no file).
    pub fn file_of(&self, pos: Pos) -> Option<FileId> {
        let idx = self.files.partition_point(|f| f.span.end <= pos);
        let f = self.files.get(idx)?;
        (f.span.start <= pos && pos < f.span.end).then_some(FileId(idx as u32))
    }

    /// Entry for a given file id.
    pub fn file(&self, id: FileId) -> Option<&FileEntry> {
        self.files.get(id.0 as usize)
    }

    /// Appends a file to the corpus (the incremental-indexing path), with
    /// the same separator convention as [`CorpusBuilder::add_file`].
    /// Returns the new file's id; its span starts past all existing text,
    /// so existing offsets remain valid.
    pub fn push_file(&mut self, name: impl Into<String>, contents: &str) -> FileId {
        if !self.files.is_empty() {
            self.text.push('\n');
        }
        let start = self.text.len() as Pos;
        self.text.push_str(contents);
        let end = self.text.len() as Pos;
        let id = FileId(self.files.len() as u32);
        self.files.push(FileEntry { name: name.into(), span: start..end });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_file_roundtrip() {
        let c = Corpus::from_text("hello world");
        assert_eq!(c.text(), "hello world");
        assert_eq!(c.len(), 11);
        assert_eq!(c.files().len(), 1);
        assert_eq!(c.slice(0..5), "hello");
    }

    #[test]
    fn files_are_separated() {
        let mut b = CorpusBuilder::new();
        let a = b.add_file("a.bib", "aaa");
        let d = b.add_file("b.bib", "bbbb");
        let c = b.build();
        assert_eq!(c.text(), "aaa\nbbbb");
        assert_eq!(c.file(a).unwrap().span, 0..3);
        assert_eq!(c.file(d).unwrap().span, 4..8);
    }

    #[test]
    fn file_of_maps_positions() {
        let mut b = CorpusBuilder::new();
        b.add_file("a", "xy");
        b.add_file("b", "zw");
        let c = b.build();
        assert_eq!(c.file_of(0), Some(FileId(0)));
        assert_eq!(c.file_of(1), Some(FileId(0)));
        assert_eq!(c.file_of(2), None); // separator newline
        assert_eq!(c.file_of(3), Some(FileId(1)));
        assert_eq!(c.file_of(4), Some(FileId(1)));
        assert_eq!(c.file_of(5), None); // past the end
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::default();
        assert!(c.is_empty());
        assert_eq!(c.file_of(0), None);
    }

    #[test]
    fn push_file_appends_with_separator() {
        let mut c = Corpus::from_text("aaa");
        let id = c.push_file("b", "bbb");
        assert_eq!(c.text(), "aaa\nbbb");
        assert_eq!(c.file(id).unwrap().span, 4..7);
        assert_eq!(c.file_of(5), Some(id));
    }

    #[test]
    fn empty_file_entries_are_tracked() {
        let mut b = CorpusBuilder::new();
        b.add_file("empty", "");
        let id = b.add_file("full", "abc");
        let c = b.build();
        assert_eq!(c.files().len(), 2);
        assert_eq!(c.file(id).unwrap().span, 1..4);
    }
}
