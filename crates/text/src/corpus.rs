//! The corpus: one or more named files mapped into a single global offset
//! space, mirroring how PAT indexes a whole file system as one logical text.

use crate::{Pos, Span};

/// Identifier of a file within a [`Corpus`] (its insertion index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// A single file's name and the span it occupies in the global text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name (path-like label; the corpus does not touch the real FS).
    pub name: String,
    /// Span of this file's contents in the global text.
    pub span: Span,
}

/// An immutable collection of files concatenated into one logical text.
///
/// Files are separated by a single `\n` so that no token can straddle a file
/// boundary. All higher layers (word index, region indices, parse trees)
/// address the corpus through global byte offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    text: String,
    files: Vec<FileEntry>,
}

/// Incremental constructor for a [`Corpus`].
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    text: String,
    files: Vec<FileEntry>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a file, returning its id. A newline separator is inserted
    /// between files so spans of distinct files never touch.
    pub fn add_file(&mut self, name: impl Into<String>, contents: &str) -> FileId {
        if !self.files.is_empty() {
            self.text.push('\n');
        }
        let start = self.text.len() as Pos;
        self.text.push_str(contents);
        let end = self.text.len() as Pos;
        let id = FileId(self.files.len() as u32);
        self.files.push(FileEntry { name: name.into(), span: start..end });
        id
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Corpus {
        Corpus { text: self.text, files: self.files }
    }
}

impl Corpus {
    /// Builds a corpus holding a single anonymous file.
    pub fn from_text(contents: &str) -> Self {
        let mut b = CorpusBuilder::new();
        b.add_file("<text>", contents);
        b.build()
    }

    /// The complete global text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Total length of the global text in bytes.
    pub fn len(&self) -> Pos {
        self.text.len() as Pos
    }

    /// True if the corpus holds no text.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The registered files in insertion order.
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// Slice of the global text covered by `span`.
    ///
    /// # Panics
    /// Panics if the span is out of bounds or not on char boundaries.
    pub fn slice(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// The file containing position `pos`, if any (separator bytes between
    /// files belong to no file).
    pub fn file_of(&self, pos: Pos) -> Option<FileId> {
        let idx = self.files.partition_point(|f| f.span.end <= pos);
        let f = self.files.get(idx)?;
        (f.span.start <= pos && pos < f.span.end).then_some(FileId(idx as u32))
    }

    /// Entry for a given file id.
    pub fn file(&self, id: FileId) -> Option<&FileEntry> {
        self.files.get(id.0 as usize)
    }

    /// Partitions the files into at most `shards` contiguous groups of
    /// roughly equal byte size and returns each group's covering span.
    ///
    /// Files are never split: every returned span starts at a file start
    /// and ends at a file end, so regions and tokens (which never cross
    /// file boundaries) fall wholly inside exactly one shard, and
    /// per-shard results concatenate back losslessly. Separator bytes
    /// between two shards belong to neither — nothing lives there.
    pub fn shard_spans(&self, shards: usize) -> Vec<Span> {
        let n = self.files.len();
        let shards = shards.clamp(1, n.max(1));
        if n == 0 {
            return Vec::new();
        }
        let mut remaining: u64 =
            self.files.iter().map(|f| u64::from(f.span.end - f.span.start)).sum();
        let mut out = Vec::with_capacity(shards);
        let mut i = 0usize;
        for g in 0..shards {
            let groups_left = shards - g;
            // Greedy first-fit to the average of what's left; always leave
            // at least one file for each remaining group.
            let target = remaining.div_ceil(groups_left as u64);
            let max_i = n - (groups_left - 1);
            let start = self.files[i].span.start;
            let mut end = start;
            let mut taken = 0u64;
            while i < max_i && (taken == 0 || taken < target) {
                taken += u64::from(self.files[i].span.end - self.files[i].span.start);
                end = self.files[i].span.end;
                i += 1;
            }
            remaining -= taken;
            out.push(start..end);
        }
        debug_assert_eq!(i, n, "every file must land in a shard");
        out
    }

    /// Reassembles a corpus from a previously captured global text and
    /// file table — the persistent-index reopen path. Validates the
    /// builder invariants an on-disk file could violate: spans must be
    /// in bounds, ascending, non-overlapping, and lie on `char`
    /// boundaries of `text`.
    pub fn from_parts(text: String, files: Vec<FileEntry>) -> Result<Self, String> {
        let len = text.len();
        let mut prev_end = 0usize;
        for (i, f) in files.iter().enumerate() {
            let (start, end) = (f.span.start as usize, f.span.end as usize);
            if start > end || end > len {
                return Err(format!("file {i} span {start}..{end} out of bounds"));
            }
            if i > 0 && start < prev_end {
                return Err(format!("file {i} span overlaps its predecessor"));
            }
            if !text.is_char_boundary(start) || !text.is_char_boundary(end) {
                return Err(format!("file {i} span splits a character"));
            }
            prev_end = end;
        }
        Ok(Corpus { text, files })
    }

    /// Appends a file to the corpus (the incremental-indexing path), with
    /// the same separator convention as [`CorpusBuilder::add_file`].
    /// Returns the new file's id; its span starts past all existing text,
    /// so existing offsets remain valid.
    pub fn push_file(&mut self, name: impl Into<String>, contents: &str) -> FileId {
        if !self.files.is_empty() {
            self.text.push('\n');
        }
        let start = self.text.len() as Pos;
        self.text.push_str(contents);
        let end = self.text.len() as Pos;
        let id = FileId(self.files.len() as u32);
        self.files.push(FileEntry { name: name.into(), span: start..end });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_file_roundtrip() {
        let c = Corpus::from_text("hello world");
        assert_eq!(c.text(), "hello world");
        assert_eq!(c.len(), 11);
        assert_eq!(c.files().len(), 1);
        assert_eq!(c.slice(0..5), "hello");
    }

    #[test]
    fn files_are_separated() {
        let mut b = CorpusBuilder::new();
        let a = b.add_file("a.bib", "aaa");
        let d = b.add_file("b.bib", "bbbb");
        let c = b.build();
        assert_eq!(c.text(), "aaa\nbbbb");
        assert_eq!(c.file(a).unwrap().span, 0..3);
        assert_eq!(c.file(d).unwrap().span, 4..8);
    }

    #[test]
    fn file_of_maps_positions() {
        let mut b = CorpusBuilder::new();
        b.add_file("a", "xy");
        b.add_file("b", "zw");
        let c = b.build();
        assert_eq!(c.file_of(0), Some(FileId(0)));
        assert_eq!(c.file_of(1), Some(FileId(0)));
        assert_eq!(c.file_of(2), None); // separator newline
        assert_eq!(c.file_of(3), Some(FileId(1)));
        assert_eq!(c.file_of(4), Some(FileId(1)));
        assert_eq!(c.file_of(5), None); // past the end
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::default();
        assert!(c.is_empty());
        assert_eq!(c.file_of(0), None);
    }

    #[test]
    fn push_file_appends_with_separator() {
        let mut c = Corpus::from_text("aaa");
        let id = c.push_file("b", "bbb");
        assert_eq!(c.text(), "aaa\nbbb");
        assert_eq!(c.file(id).unwrap().span, 4..7);
        assert_eq!(c.file_of(5), Some(id));
    }

    #[test]
    fn shard_spans_partition_on_file_boundaries() {
        let mut b = CorpusBuilder::new();
        for (name, len) in [("a", 10), ("b", 10), ("c", 10), ("d", 10)] {
            b.add_file(name, &"x".repeat(len));
        }
        let c = b.build();
        let spans = c.shard_spans(2);
        assert_eq!(spans.len(), 2);
        // Each span starts and ends on file boundaries and covers two files.
        assert_eq!(spans[0], 0..21);
        assert_eq!(spans[1], 22..43);
        // One shard per file when asked for more shards than files.
        let spans = c.shard_spans(16);
        assert_eq!(spans.len(), 4);
        for (span, f) in spans.iter().zip(c.files()) {
            assert_eq!(*span, f.span);
        }
        // A single shard covers everything.
        assert_eq!(c.shard_spans(1), vec![0..43]);
        assert_eq!(c.shard_spans(0), vec![0..43], "0 is clamped to 1");
    }

    #[test]
    fn shard_spans_balance_uneven_files() {
        let mut b = CorpusBuilder::new();
        b.add_file("big", &"x".repeat(100));
        for i in 0..5 {
            b.add_file(format!("small{i}"), &"y".repeat(10));
        }
        let c = b.build();
        let spans = c.shard_spans(3);
        assert_eq!(spans.len(), 3);
        // The big file fills the first shard alone; the small ones spread
        // over the rest. Every file lands in exactly one span.
        assert_eq!(spans[0], c.files()[0].span);
        let mut fi = 0;
        for span in &spans {
            while fi < c.files().len() && c.files()[fi].span.start >= span.start {
                let f = &c.files()[fi].span;
                if f.end > span.end {
                    break;
                }
                assert!(span.start <= f.start && f.end <= span.end);
                fi += 1;
            }
        }
        assert_eq!(fi, c.files().len());
    }

    #[test]
    fn shard_spans_empty_corpus() {
        assert!(Corpus::default().shard_spans(4).is_empty());
    }

    #[test]
    fn empty_file_entries_are_tracked() {
        let mut b = CorpusBuilder::new();
        b.add_file("empty", "");
        let id = b.add_file("full", "abc");
        let c = b.build();
        assert_eq!(c.files().len(), 2);
        assert_eq!(c.file(id).unwrap().span, 1..4);
    }
}
