//! LEB128 variable-length integers — the byte-level substrate of the
//! compressed posting lists and of the `.qofx` on-disk index format
//! (DESIGN.md §13). Little-endian base-128: seven payload bits per byte,
//! high bit set on every byte except the last.

/// Appends `value` to `out` as an unsigned LEB128 varint (1–5 bytes for
/// `u32`, 1–10 for `u64`).
#[inline]
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one unsigned LEB128 varint from `buf[*at..]`, advancing `*at`.
///
/// Returns `None` on truncated input or on an encoding longer than ten
/// bytes / overflowing 64 bits (corrupt data, never produced by
/// [`encode_u64`]).
#[inline]
pub fn decode_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    // Fast path: single-byte varints (values < 128) dominate delta-coded
    // posting gaps and region runs.
    let first = *buf.get(*at)?;
    if first & 0x80 == 0 {
        *at += 1;
        return Some(u64::from(first));
    }
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*at)?;
        *at += 1;
        let payload = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// [`encode_u64`] for `u32` values.
#[inline]
pub fn encode_u32(value: u32, out: &mut Vec<u8>) {
    encode_u64(u64::from(value), out);
}

/// [`decode_u64`] restricted to values that fit a `u32`.
#[inline]
pub fn decode_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    decode_u64(buf, at).and_then(|v| u32::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_representative_values() {
        let values =
            [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::from(u32::MAX), u64::MAX - 1, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(v, &mut buf);
        }
        let mut at = 0;
        for &v in &values {
            assert_eq!(decode_u64(&buf, &mut at), Some(v));
        }
        assert_eq!(at, buf.len(), "decoding must consume exactly what encoding produced");
    }

    #[test]
    fn single_byte_values_encode_in_one_byte() {
        for v in 0u32..128 {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf, [v as u8]);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        encode_u64(u64::from(u32::MAX), &mut buf);
        for cut in 0..buf.len() {
            let mut at = 0;
            assert_eq!(decode_u64(&buf[..cut], &mut at), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut at = 0;
        assert_eq!(decode_u64(&buf, &mut at), None);
        // A value with bits above the 64th is rejected too.
        let buf = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        let mut at = 0;
        assert_eq!(decode_u64(&buf, &mut at), None);
    }

    #[test]
    fn u32_decoder_rejects_oversized_values() {
        let mut buf = Vec::new();
        encode_u64(u64::from(u32::MAX) + 1, &mut buf);
        let mut at = 0;
        assert_eq!(decode_u32(&buf, &mut at), None);
    }
}
