//! [`WordLookup`]: the object-safe word-index interface the query engine
//! evaluates against, letting the in-memory [`WordIndex`] and the
//! compressed [`CompressedWordIndex`] backend serve the same hot path.
//!
//! The trait is deliberately visitation-based where iteration would
//! otherwise force an allocation or an object-safety violation:
//! [`for_each_word_count`](WordLookup::for_each_word_count) feeds the
//! statistics store without decoding a single posting list, and
//! [`for_each_word`](WordLookup::for_each_word) backs the vocabulary-scan
//! fallback of prefix search.

use crate::compressed::CompressedWordIndex;
use crate::word_index::WordIndex;
use crate::Pos;

/// A read-only word index: the service contract of the paper's underlying
/// text system (§2), backend-agnostic.
pub trait WordLookup: Sync {
    /// Sorted start positions of `word` (empty when unindexed). Case
    /// folding follows the tokenizer the index was built with.
    fn positions(&self, word: &str) -> &[Pos];

    /// Whether `word` has at least one posting. Backends answer this from
    /// their dictionary without decoding postings.
    fn contains(&self, word: &str) -> bool;

    /// Occurrence count of `word` — PAT's frequency search primitive,
    /// likewise decode-free.
    fn frequency(&self, word: &str) -> usize;

    /// Visits every `(word, positions)` pair (order unspecified).
    fn for_each_word(&self, f: &mut dyn FnMut(&str, &[Pos]));

    /// Visits every `(word, posting count)` pair without decoding.
    fn for_each_word_count(&self, f: &mut dyn FnMut(&str, u64));

    /// Number of distinct words.
    fn distinct_words(&self) -> usize;

    /// Total posting count.
    fn postings(&self) -> usize;

    /// Resident size of the index in bytes (approximate; decoded-posting
    /// caches excluded).
    fn index_bytes(&self) -> usize;

    /// Whether the index was selectively built (§7 word scoping).
    fn is_scoped(&self) -> bool;
}

impl WordLookup for WordIndex {
    fn positions(&self, word: &str) -> &[Pos] {
        WordIndex::positions(self, word)
    }

    fn contains(&self, word: &str) -> bool {
        WordIndex::contains(self, word)
    }

    fn frequency(&self, word: &str) -> usize {
        WordIndex::frequency(self, word)
    }

    fn for_each_word(&self, f: &mut dyn FnMut(&str, &[Pos])) {
        for (word, positions) in self.iter() {
            f(word, positions);
        }
    }

    fn for_each_word_count(&self, f: &mut dyn FnMut(&str, u64)) {
        for (word, positions) in self.iter() {
            f(word, positions.len() as u64);
        }
    }

    fn distinct_words(&self) -> usize {
        self.stats().distinct_words
    }

    fn postings(&self) -> usize {
        self.stats().postings
    }

    fn index_bytes(&self) -> usize {
        self.stats().approx_bytes
    }

    fn is_scoped(&self) -> bool {
        WordIndex::is_scoped(self)
    }
}

impl WordLookup for CompressedWordIndex {
    fn positions(&self, word: &str) -> &[Pos] {
        CompressedWordIndex::positions(self, word)
    }

    fn contains(&self, word: &str) -> bool {
        CompressedWordIndex::contains(self, word)
    }

    fn frequency(&self, word: &str) -> usize {
        CompressedWordIndex::frequency(self, word)
    }

    fn for_each_word(&self, f: &mut dyn FnMut(&str, &[Pos])) {
        CompressedWordIndex::for_each_word(self, f);
    }

    fn for_each_word_count(&self, f: &mut dyn FnMut(&str, u64)) {
        CompressedWordIndex::for_each_word_count(self, f);
    }

    fn distinct_words(&self) -> usize {
        CompressedWordIndex::distinct_words(self)
    }

    fn postings(&self) -> usize {
        CompressedWordIndex::postings(self)
    }

    fn index_bytes(&self) -> usize {
        CompressedWordIndex::index_bytes(self)
    }

    fn is_scoped(&self) -> bool {
        CompressedWordIndex::is_scoped(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, Tokenizer};

    /// Both backends answer the whole trait surface identically.
    #[test]
    fn backends_agree_through_the_trait_object() {
        let corpus = Corpus::from_text("alpha beta beta gamma Alpha beta delta gamma gamma");
        let mem = WordIndex::build(&corpus, &Tokenizer::new());
        let compressed = CompressedWordIndex::from_word_index(&mem);
        let a: &dyn WordLookup = &mem;
        let b: &dyn WordLookup = &compressed;
        assert_eq!(a.distinct_words(), b.distinct_words());
        assert_eq!(a.postings(), b.postings());
        assert_eq!(a.is_scoped(), b.is_scoped());
        for word in ["alpha", "beta", "Gamma", "delta", "nope"] {
            assert_eq!(a.positions(word), b.positions(word), "{word}");
            assert_eq!(a.contains(word), b.contains(word), "{word}");
            assert_eq!(a.frequency(word), b.frequency(word), "{word}");
        }
        let collect = |ix: &dyn WordLookup| {
            let mut v: Vec<(String, Vec<Pos>)> = Vec::new();
            ix.for_each_word(&mut |w, p| v.push((w.to_owned(), p.to_vec())));
            v.sort();
            v
        };
        assert_eq!(collect(a), collect(b));
        let counts = |ix: &dyn WordLookup| {
            let mut v: Vec<(String, u64)> = Vec::new();
            ix.for_each_word_count(&mut |w, c| v.push((w.to_owned(), c)));
            v.sort();
            v
        };
        assert_eq!(counts(a), counts(b));
    }
}
