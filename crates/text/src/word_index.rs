//! The word index: for every indexed word, the sorted list of its occurrence
//! positions. This is the paper's "word index, recording the location(s) of
//! all the words in the file" (§2), with optional *selective word indexing*
//! (§7): only occurrences inside given spans are indexed.

use std::collections::HashMap;

use crate::{Corpus, Pos, Span, Tokenizer};

/// Aggregate statistics about a built [`WordIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordStats {
    /// Number of distinct words.
    pub distinct_words: usize,
    /// Total number of indexed occurrences (postings).
    pub postings: usize,
    /// Approximate resident size of the index in bytes.
    pub approx_bytes: usize,
}

/// Inverted index mapping each word to the sorted positions where it starts.
#[derive(Debug, Clone, Default)]
pub struct WordIndex {
    map: HashMap<String, Vec<Pos>>,
    postings: usize,
    case_fold: bool,
    /// The spans this index was selectively built over (sorted by start,
    /// descending end at ties), or `None` for a full index. Incremental
    /// appends filter against it so out-of-scope occurrences can never
    /// leak into a selective index.
    scope: Option<Vec<Span>>,
}

/// Builder configuring word-index construction.
pub struct WordIndexBuilder<'a> {
    tokenizer: &'a Tokenizer,
    /// When set, only occurrences whose span is inside one of these spans
    /// are indexed (selective indexing). Spans must be sorted by start.
    scope: Option<Vec<Span>>,
}

impl<'a> WordIndexBuilder<'a> {
    /// A builder indexing every word occurrence.
    pub fn new(tokenizer: &'a Tokenizer) -> Self {
        Self { tokenizer, scope: None }
    }

    /// Restricts indexing to occurrences inside the given spans. The spans
    /// may arrive in any order (the builder sorts them by start) and may
    /// overlap.
    pub fn scoped_to(mut self, mut spans: Vec<Span>) -> Self {
        spans.sort_by_key(|s| (s.start, std::cmp::Reverse(s.end)));
        self.scope = Some(spans);
        self
    }

    /// Tokenizes the corpus and builds the index.
    pub fn build(self, corpus: &Corpus) -> WordIndex {
        let mut map: HashMap<String, Vec<Pos>> = HashMap::new();
        let mut postings = 0usize;
        // Running maximum of span ends among scope spans whose start <= token
        // start; a token is in scope iff that max covers its end.
        let scope = self.scope.as_deref();
        let mut scope_idx = 0usize;
        let mut max_end: Pos = 0;
        for tok in self.tokenizer.tokenize(corpus.text(), 0) {
            if let Some(spans) = scope {
                while scope_idx < spans.len() && spans[scope_idx].start <= tok.span.start {
                    max_end = max_end.max(spans[scope_idx].end);
                    scope_idx += 1;
                }
                if tok.span.end > max_end {
                    continue;
                }
            }
            let key = self.tokenizer.normalize(tok.text);
            map.entry(key).or_default().push(tok.span.start);
            postings += 1;
        }
        WordIndex { map, postings, case_fold: self.tokenizer.folds_case(), scope: self.scope }
    }
}

impl WordIndex {
    /// Convenience: index every word of `corpus` with `tokenizer`.
    pub fn build(corpus: &Corpus, tokenizer: &Tokenizer) -> Self {
        WordIndexBuilder::new(tokenizer).build(corpus)
    }

    /// Sorted start positions of `word` (normalized per the build tokenizer).
    /// Returns an empty slice for unindexed words.
    ///
    /// This is the engine's hottest index entry point; case folding only
    /// allocates when the word actually needs folding (`to_lowercase` is a
    /// fixed point on ASCII text with no uppercase letters, which covers
    /// every already-normalized lookup).
    pub fn positions(&self, word: &str) -> &[Pos] {
        if self.case_fold && !word.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase()) {
            let key = word.to_lowercase();
            return self.map.get(key.as_str()).map_or(&[], Vec::as_slice);
        }
        self.map.get(word).map_or(&[], Vec::as_slice)
    }

    /// Whether the index has at least one posting for `word`.
    pub fn contains(&self, word: &str) -> bool {
        !self.positions(word).is_empty()
    }

    /// Number of occurrences of `word` (PAT's frequency search primitive).
    pub fn frequency(&self, word: &str) -> usize {
        self.positions(word).len()
    }

    /// Index statistics, used by the index-size/performance tradeoff
    /// experiments (E9).
    pub fn stats(&self) -> WordStats {
        let key_bytes: usize = self.map.keys().map(std::string::String::len).sum();
        // Each entry also pays for its `String` and `Vec` headers plus the
        // hash table's control byte; without this the E9 size/performance
        // tradeoff under-reported small-vocabulary indexes.
        let entry_overhead = std::mem::size_of::<String>() + std::mem::size_of::<Vec<Pos>>() + 1;
        WordStats {
            distinct_words: self.map.len(),
            postings: self.postings,
            approx_bytes: key_bytes
                + self.postings * std::mem::size_of::<Pos>()
                + self.map.len() * entry_overhead,
        }
    }

    /// Iterates over `(word, positions)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Pos])> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Whether this index was selectively built (§7): only occurrences
    /// inside its scope spans are indexed.
    pub fn is_scoped(&self) -> bool {
        self.scope.is_some()
    }

    /// Whether lookups fold case (set by the build tokenizer).
    pub(crate) fn case_fold(&self) -> bool {
        self.case_fold
    }

    /// The selective-indexing scope spans, if any.
    pub(crate) fn scope(&self) -> Option<&[Span]> {
        self.scope.as_deref()
    }

    /// Reassembles an index from its parts — the compressed backend's
    /// materialization path ([`CompressedWordIndex::to_word_index`]).
    ///
    /// [`CompressedWordIndex::to_word_index`]:
    ///     crate::CompressedWordIndex::to_word_index
    pub(crate) fn from_parts(
        map: HashMap<String, Vec<Pos>>,
        postings: usize,
        case_fold: bool,
        scope: Option<Vec<Span>>,
    ) -> Self {
        debug_assert_eq!(postings, map.values().map(Vec::len).sum::<usize>());
        WordIndex { map, postings, case_fold, scope }
    }

    /// Extends the scope of a selectively built index with more spans
    /// (e.g. the in-scope regions of a newly appended file) ahead of
    /// [`WordIndex::append_span`]. No-op on a full index, which always
    /// indexes everything.
    pub fn extend_scope(&mut self, spans: impl IntoIterator<Item = Span>) {
        if let Some(scope) = &mut self.scope {
            scope.extend(spans);
            scope.sort_by_key(|s| (s.start, std::cmp::Reverse(s.end)));
        }
    }

    /// Indexes the words of a newly appended span (incremental indexing).
    /// The span must lie past every previously indexed position, so the
    /// per-word position lists stay sorted.
    ///
    /// On a selectively built index, only occurrences inside the scope are
    /// appended — the scope the index was built with is stored, so
    /// incremental appends can never index out-of-scope occurrences. Grow
    /// the scope first with [`WordIndex::extend_scope`] when the new file
    /// contributes in-scope regions.
    ///
    /// # Panics
    /// Panics in debug builds if an out-of-order position is appended.
    pub fn append_span(&mut self, corpus: &Corpus, tokenizer: &Tokenizer, span: Span) {
        debug_assert_eq!(self.case_fold, tokenizer.folds_case(), "tokenizer mode must match");
        let text = corpus.slice(span.clone());
        // Same running-max sweep as the builder: a token is in scope iff
        // some scope span starting at or before it covers its end.
        let scope = self.scope.as_deref();
        let mut scope_idx = 0usize;
        let mut max_end: Pos = 0;
        for tok in tokenizer.tokenize(text, span.start) {
            if let Some(spans) = scope {
                while scope_idx < spans.len() && spans[scope_idx].start <= tok.span.start {
                    max_end = max_end.max(spans[scope_idx].end);
                    scope_idx += 1;
                }
                if tok.span.end > max_end {
                    continue;
                }
            }
            let key = tokenizer.normalize(tok.text);
            let list = self.map.entry(key).or_default();
            debug_assert!(list.last().is_none_or(|&p| p < tok.span.start));
            list.push(tok.span.start);
            self.postings += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(text: &str) -> (Corpus, WordIndex) {
        let c = Corpus::from_text(text);
        let t = Tokenizer::new();
        let i = WordIndex::build(&c, &t);
        (c, i)
    }

    #[test]
    fn positions_are_sorted_starts() {
        let (_, i) = idx("a b a c a");
        assert_eq!(i.positions("a"), &[0, 4, 8]);
        assert_eq!(i.positions("b"), &[2]);
        assert!(i.positions("z").is_empty());
    }

    #[test]
    fn frequency_counts() {
        let (_, i) = idx("Chang and Chang and Corliss");
        assert_eq!(i.frequency("Chang"), 2);
        assert_eq!(i.frequency("Corliss"), 1);
        assert_eq!(i.frequency("chang"), 0); // case-sensitive by default
    }

    #[test]
    fn case_insensitive_index_folds_queries() {
        let c = Corpus::from_text("Chang CHANG chang");
        let t = Tokenizer::new().case_insensitive();
        let i = WordIndex::build(&c, &t);
        assert_eq!(i.frequency("Chang"), 3);
        assert_eq!(i.frequency("chAnG"), 3);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn scoped_index_only_covers_given_spans() {
        let c = Corpus::from_text("aaa bbb ccc ddd");
        let t = Tokenizer::new();
        // Scope covers "bbb ccc" only.
        let i = WordIndexBuilder::new(&t).scoped_to(Vec::from([4..11])).build(&c);
        assert!(i.positions("aaa").is_empty());
        assert_eq!(i.positions("bbb"), &[4]);
        assert_eq!(i.positions("ccc"), &[8]);
        assert!(i.positions("ddd").is_empty());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn scoped_index_requires_full_containment() {
        let c = Corpus::from_text("abcdef");
        let t = Tokenizer::new();
        // Token 0..6; scope 0..3 cuts it in half: not indexed.
        let i = WordIndexBuilder::new(&t).scoped_to(Vec::from([0..3])).build(&c);
        assert!(i.positions("abcdef").is_empty());
    }

    #[test]
    fn stats_reflect_content() {
        let (_, i) = idx("x y x");
        let s = i.stats();
        assert_eq!(s.distinct_words, 2);
        assert_eq!(s.postings, 3);
        assert!(s.approx_bytes > 0);
    }

    #[test]
    fn multiple_files_share_one_index() {
        let mut b = CorpusBuilder::new();
        b.add_file("a", "alpha beta");
        b.add_file("b", "beta gamma");
        let c = b.build();
        let i = WordIndex::build(&c, &Tokenizer::new());
        assert_eq!(i.frequency("beta"), 2);
        assert_eq!(i.positions("beta"), &[6, 11]);
    }

    use crate::CorpusBuilder;

    #[test]
    fn case_fold_lookup_paths_agree() {
        let c = Corpus::from_text("Chang CHANG chang müller");
        let t = Tokenizer::new().case_insensitive();
        let i = WordIndex::build(&c, &t);
        // Already-folded ASCII (allocation-free path), mixed-case ASCII and
        // non-ASCII (folding path) must all resolve identically.
        assert_eq!(i.positions("chang"), i.positions("CHANG"));
        assert_eq!(i.positions("chang"), i.positions("Chang"));
        assert_eq!(i.frequency("chang"), 3);
        // Non-ASCII lookups take the folding path (and find nothing here:
        // the tokenizer splits on non-ASCII bytes).
        assert_eq!(i.positions("müller"), i.positions("MÜLLER"));
    }

    #[test]
    fn stats_count_entry_overhead() {
        let (_, i) = idx("x y x");
        let s = i.stats();
        let headers = std::mem::size_of::<String>() + std::mem::size_of::<Vec<Pos>>() + 1;
        // 2 distinct words of 1 byte each, 3 postings, plus 2 entry headers.
        assert_eq!(s.approx_bytes, 2 + 3 * std::mem::size_of::<Pos>() + 2 * headers);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn append_to_scoped_index_respects_stored_scope() {
        // Scope covers "bbb" only; the initial build indexes just that.
        let mut c = Corpus::from_text("aaa bbb");
        let t = Tokenizer::new();
        let mut i = WordIndexBuilder::new(&t).scoped_to(Vec::from([4..7])).build(&c);
        assert!(i.is_scoped());
        assert_eq!(i.frequency("bbb"), 1);
        // Appending a file without extending the scope must index nothing:
        // the new text lies entirely outside the selective scope.
        let id = c.push_file("more", "bbb ccc");
        let span = c.file(id).unwrap().span.clone();
        i.append_span(&c, &t, span);
        assert_eq!(i.frequency("bbb"), 1, "out-of-scope occurrence was indexed");
        assert_eq!(i.frequency("ccc"), 0, "out-of-scope occurrence was indexed");
        // Extending the scope over part of the next file indexes only that
        // part: "ddd" is in scope, "eee" is not.
        let id = c.push_file("scoped", "ddd eee");
        let span = c.file(id).unwrap().span.clone();
        i.extend_scope([span.start..span.start + 3]);
        i.append_span(&c, &t, span);
        assert_eq!(i.frequency("ddd"), 1);
        assert_eq!(i.frequency("eee"), 0);
    }

    #[test]
    fn append_to_full_index_still_indexes_everything() {
        let mut c = Corpus::from_text("alpha");
        let t = Tokenizer::new();
        let mut i = WordIndex::build(&c, &t);
        assert!(!i.is_scoped());
        // extend_scope on a full index is a no-op and must not narrow it.
        i.extend_scope(std::iter::once(0..1));
        let id = c.push_file("more", "beta");
        let span = c.file(id).unwrap().span.clone();
        i.append_span(&c, &t, span);
        assert_eq!(i.frequency("beta"), 1);
    }

    #[test]
    fn append_span_extends_postings() {
        let mut c = Corpus::from_text("alpha beta");
        let t = Tokenizer::new();
        let mut i = WordIndex::build(&c, &t);
        let id = c.push_file("more", "beta gamma");
        let span = c.file(id).unwrap().span.clone();
        i.append_span(&c, &t, span);
        assert_eq!(i.frequency("beta"), 2);
        assert_eq!(i.frequency("gamma"), 1);
        assert_eq!(i.positions("beta"), &[6, 11]);
    }
}
