//! A PAT array: the suffix array over *word-start* positions that the PAT
//! system ([Gon87]) uses as its index structure. Each entry denotes the
//! semi-infinite string ("sistring") starting at a word boundary; entries are
//! sorted lexicographically, so any prefix query resolves to a contiguous
//! range found by binary search.

use crate::{Corpus, Pos, Tokenizer};

/// Suffix array over the word-start positions of a corpus.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    /// Word-start positions sorted by the sistring beginning there.
    sorted: Vec<Pos>,
}

impl SuffixArray {
    /// Builds the PAT array for `corpus`, considering only positions where a
    /// word starts (per `tokenizer`).
    pub fn build(corpus: &Corpus, tokenizer: &Tokenizer) -> Self {
        let text = corpus.text();
        let mut sorted: Vec<Pos> = tokenizer.tokenize(text, 0).map(|t| t.span.start).collect();
        sorted.sort_unstable_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        Self { sorted }
    }

    /// Number of indexed sistrings (== number of word occurrences).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the corpus had no words.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// All word-start positions whose sistring begins with `prefix`,
    /// in ascending position order. This is PAT's prefix ("lexical") search.
    pub fn prefix_positions(&self, corpus: &Corpus, prefix: &str) -> Vec<Pos> {
        let text = corpus.text();
        let lo = self.sorted.partition_point(|&p| &text[p as usize..] < prefix);
        let hi =
            self.sorted[lo..].partition_point(|&p| text[p as usize..].starts_with(prefix)) + lo;
        let mut out: Vec<Pos> = self.sorted[lo..hi].to_vec();
        out.sort_unstable();
        out
    }

    /// Number of sistrings starting with `prefix` (frequency search without
    /// materializing positions).
    pub fn prefix_count(&self, corpus: &Corpus, prefix: &str) -> usize {
        let text = corpus.text();
        let lo = self.sorted.partition_point(|&p| &text[p as usize..] < prefix);
        self.sorted[lo..].partition_point(|&p| text[p as usize..].starts_with(prefix))
    }

    /// All positions whose sistring is lexicographically within
    /// `[low, high)` — PAT's range search.
    pub fn range_positions(&self, corpus: &Corpus, low: &str, high: &str) -> Vec<Pos> {
        let text = corpus.text();
        let lo = self.sorted.partition_point(|&p| &text[p as usize..] < low);
        let hi = self.sorted.partition_point(|&p| &text[p as usize..] < high);
        let mut out: Vec<Pos> = self.sorted[lo..hi.max(lo)].to_vec();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(text: &str) -> (Corpus, SuffixArray) {
        let c = Corpus::from_text(text);
        let t = Tokenizer::new();
        let s = SuffixArray::build(&c, &t);
        (c, s)
    }

    #[test]
    fn prefix_search_finds_all_words() {
        let (c, s) = sa("car cart cat dog carp");
        assert_eq!(s.prefix_positions(&c, "car"), vec![0, 4, 17]);
        assert_eq!(s.prefix_positions(&c, "cat"), vec![9]);
        assert!(s.prefix_positions(&c, "zebra").is_empty());
    }

    #[test]
    fn prefix_count_matches_positions() {
        let (c, s) = sa("ab abc abd xyz");
        assert_eq!(s.prefix_count(&c, "ab"), 3);
        assert_eq!(s.prefix_count(&c, "ab"), s.prefix_positions(&c, "ab").len());
    }

    #[test]
    fn whole_word_prefix_includes_longer_context() {
        // The sistring at "cat" is "cat dog"; prefix "cat d" matches it.
        let (c, s) = sa("cat dog");
        assert_eq!(s.prefix_positions(&c, "cat d"), vec![0]);
    }

    #[test]
    fn range_search() {
        let (c, s) = sa("apple banana cherry date");
        // Everything >= "b" and < "d": banana, cherry.
        assert_eq!(s.range_positions(&c, "b", "d"), vec![6, 13]);
    }

    #[test]
    fn empty_corpus_is_empty() {
        let (_, s) = sa("");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn positions_are_word_starts_only() {
        let (c, s) = sa("scatter cat");
        // "cat" inside "scatter" does not start a word; only position 8 matches.
        assert_eq!(s.prefix_positions(&c, "cat"), vec![8]);
    }
}
