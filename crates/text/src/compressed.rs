//! The compressed word-index backend: a sorted dictionary over delta-coded
//! posting lists ([`CompressedPostings`]), decoded lazily per word. This is
//! the in-memory face of the `.qofx` on-disk format (DESIGN.md §13): after
//! a persisted index is reopened, posting bytes stay on disk and are paged
//! in with positioned reads (`pread`) only when a query first touches the
//! word — no `unsafe`, no `mmap`.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::OnceLock;

use crate::postings::CompressedPostings;
use crate::varint::{decode_u32, decode_u64, encode_u32, encode_u64};
use crate::word_index::WordIndex;
use crate::{Pos, Span};

/// Where a [`CompressedWordIndex`] reads posting bytes from.
#[derive(Debug)]
pub enum PostingsSource {
    /// The whole postings blob resides in memory (a freshly compressed
    /// index, or a deserialized one asked to stay resident).
    Bytes(Vec<u8>),
    /// The blob lives in an open `.qofx` file and is paged in on demand
    /// with positioned reads; `offset`/`len` bound the blob within it.
    Paged {
        /// The open index file.
        file: File,
        /// Absolute byte offset of the blob in the file.
        offset: u64,
        /// Blob length in bytes.
        len: u64,
    },
}

impl PostingsSource {
    /// Reads `len` bytes at blob-relative `offset`.
    fn read(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        match self {
            PostingsSource::Bytes(blob) => {
                let start = usize::try_from(offset)
                    .ok()
                    .filter(|&s| s.checked_add(len).is_some_and(|e| e <= blob.len()))
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "postings range out of blob")
                    })?;
                Ok(blob[start..start + len].to_vec())
            }
            PostingsSource::Paged { file, offset: base, len: total } => {
                if offset.checked_add(len as u64).is_none_or(|end| end > *total) {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "postings range out of blob",
                    ));
                }
                let mut buf = vec![0u8; len];
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    file.read_exact_at(&mut buf, base + offset)?;
                }
                #[cfg(not(unix))]
                {
                    use std::io::{Read, Seek, SeekFrom};
                    let mut f = file.try_clone()?;
                    f.seek(SeekFrom::Start(base + offset))?;
                    f.read_exact(&mut buf)?;
                }
                Ok(buf)
            }
        }
    }

    /// Blob length in bytes.
    fn len(&self) -> u64 {
        match self {
            PostingsSource::Bytes(blob) => blob.len() as u64,
            PostingsSource::Paged { len, .. } => *len,
        }
    }

    /// Bytes this source keeps resident in memory.
    fn resident_bytes(&self) -> usize {
        match self {
            PostingsSource::Bytes(blob) => blob.len(),
            PostingsSource::Paged { .. } => 0,
        }
    }
}

/// One dictionary entry: a word, its posting count, and where its
/// compressed postings live in the blob.
#[derive(Debug)]
struct Entry {
    word: String,
    count: u64,
    offset: u64,
    len: u32,
    /// Lazily decoded positions; filled on the first lookup that needs
    /// actual positions (counts and membership never decode).
    decoded: OnceLock<Vec<Pos>>,
}

/// A compressed, immutable word index: sorted dictionary, delta-coded
/// posting lists, per-word lazy decode. Query-path results are identical
/// to the [`WordIndex`] it was built from (property-tested end to end).
#[derive(Debug)]
pub struct CompressedWordIndex {
    /// Sorted by word (unique), enabling binary-search lookup.
    entries: Vec<Entry>,
    source: PostingsSource,
    postings: usize,
    case_fold: bool,
    scope: Option<Vec<Span>>,
}

impl CompressedWordIndex {
    /// Compresses an in-memory [`WordIndex`] (sorting its dictionary).
    pub fn from_word_index(index: &WordIndex) -> Self {
        let mut words: Vec<(&str, &[Pos])> = index.iter().collect();
        words.sort_unstable_by_key(|&(w, _)| w);
        let mut entries = Vec::with_capacity(words.len());
        let mut blob = Vec::new();
        let mut postings = 0usize;
        for (word, positions) in words {
            let offset = blob.len() as u64;
            CompressedPostings::encode(positions).write_to(&mut blob);
            entries.push(Entry {
                word: word.to_owned(),
                count: positions.len() as u64,
                offset,
                len: (blob.len() as u64 - offset) as u32,
                decoded: OnceLock::new(),
            });
            postings += positions.len();
        }
        CompressedWordIndex {
            entries,
            source: PostingsSource::Bytes(blob),
            postings,
            case_fold: index.case_fold(),
            scope: index.scope().map(<[Span]>::to_vec),
        }
    }

    /// Rebuilds the equivalent uncompressed [`WordIndex`] — the
    /// materialization path `add_file` takes before mutating a database
    /// that was opened from a `.qofx` file.
    pub fn to_word_index(&self) -> WordIndex {
        let mut map = std::collections::HashMap::with_capacity(self.entries.len());
        for e in &self.entries {
            map.insert(e.word.clone(), self.decoded(e).to_vec());
        }
        WordIndex::from_parts(map, self.postings, self.case_fold, self.scope.clone())
    }

    fn lookup(&self, word: &str) -> Option<&Entry> {
        let i = self.entries.binary_search_by(|e| e.word.as_str().cmp(word)).ok()?;
        Some(&self.entries[i])
    }

    /// The entry for `word` under the same case-folding contract as
    /// [`WordIndex::positions`].
    fn entry(&self, word: &str) -> Option<&Entry> {
        if self.case_fold && !word.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase()) {
            return self.lookup(word.to_lowercase().as_str());
        }
        self.lookup(word)
    }

    /// Decodes (once) and returns an entry's positions.
    ///
    /// The `.qofx` checksum was verified at open, so a decode failure here
    /// means the file changed underneath us; the entry then reads as
    /// unindexed rather than poisoning the whole process.
    fn decoded<'a>(&self, e: &'a Entry) -> &'a [Pos] {
        e.decoded.get_or_init(|| {
            let Ok(bytes) = self.source.read(e.offset, e.len as usize) else {
                return Vec::new();
            };
            let mut at = 0;
            match CompressedPostings::read_from(&bytes, &mut at) {
                Some(c) if at == bytes.len() && c.len() as u64 == e.count => c.decode(),
                _ => Vec::new(),
            }
        })
    }

    /// Sorted start positions of `word`; empty for unindexed words.
    /// The first call for a word pages in and decodes its postings.
    pub fn positions(&self, word: &str) -> &[Pos] {
        self.entry(word).map_or(&[], |e| self.decoded(e))
    }

    /// Whether `word` is indexed — answered from the dictionary alone,
    /// without touching posting bytes.
    pub fn contains(&self, word: &str) -> bool {
        self.entry(word).is_some_and(|e| e.count > 0)
    }

    /// Occurrence count of `word` — from the dictionary, no decode.
    pub fn frequency(&self, word: &str) -> usize {
        self.entry(word).map_or(0, |e| e.count as usize)
    }

    /// Number of distinct words.
    pub fn distinct_words(&self) -> usize {
        self.entries.len()
    }

    /// Total posting count.
    pub fn postings(&self) -> usize {
        self.postings
    }

    /// Whether the index was selectively built (§7).
    pub fn is_scoped(&self) -> bool {
        self.scope.is_some()
    }

    /// Whether lookups fold ASCII case (mirrors the tokenizer's setting;
    /// persisted in the `.qofx` header flags, not the word section).
    pub fn case_fold(&self) -> bool {
        self.case_fold
    }

    /// Resident bytes: dictionary strings + entry headers + whatever part
    /// of the blob is held in memory. Lazily decoded lists are *not*
    /// counted — they are a cache, not the index.
    pub fn index_bytes(&self) -> usize {
        let key_bytes: usize = self.entries.iter().map(|e| e.word.len()).sum();
        key_bytes
            + self.entries.len() * std::mem::size_of::<Entry>()
            + self.source.resident_bytes()
            + self.scope.as_ref().map_or(0, |s| s.len() * std::mem::size_of::<Span>())
    }

    /// Visits every `(word, count)` pair in dictionary order — no decode.
    pub fn for_each_word_count(&self, f: &mut dyn FnMut(&str, u64)) {
        for e in &self.entries {
            f(&e.word, e.count);
        }
    }

    /// Visits every `(word, positions)` pair in dictionary order,
    /// decoding each list (the vocabulary-scan fallback of prefix search).
    pub fn for_each_word(&self, f: &mut dyn FnMut(&str, &[Pos])) {
        for e in &self.entries {
            f(&e.word, self.decoded(e));
        }
    }

    /// Serializes the word section of the `.qofx` format: scope spans,
    /// dictionary (word, count, byte length — offsets are cumulative),
    /// then the postings blob. Works for both sources; a paged source
    /// reads its blob back once.
    pub fn serialize(&self, out: &mut Vec<u8>) -> io::Result<()> {
        match &self.scope {
            None => out.push(0),
            Some(spans) => {
                out.push(1);
                encode_u64(spans.len() as u64, out);
                for s in spans {
                    encode_u32(s.start, out);
                    encode_u32(s.end, out);
                }
            }
        }
        encode_u64(self.entries.len() as u64, out);
        for e in &self.entries {
            encode_u64(e.word.len() as u64, out);
            out.extend_from_slice(e.word.as_bytes());
            encode_u64(e.count, out);
            encode_u32(e.len, out);
        }
        let blob_len = self.source.len();
        encode_u64(blob_len, out);
        let blob = self.source.read(0, usize::try_from(blob_len).expect("blob fits memory"))?;
        out.extend_from_slice(&blob);
        Ok(())
    }

    /// Deserializes a [`serialize`](Self::serialize)d word section from
    /// `buf[*at..]`. With `paged: Some((path, base))` — `base` being the
    /// absolute file offset of `buf[0]` — the blob is *not* copied: the
    /// returned index pages posting bytes from the file on demand.
    /// `case_fold` comes from the container's header flags.
    ///
    /// Structural errors return `Err(description)`; the caller wraps them
    /// in its corruption diagnostic.
    pub fn deserialize(
        buf: &[u8],
        at: &mut usize,
        case_fold: bool,
        paged: Option<(&Path, u64)>,
    ) -> Result<Self, String> {
        let truncated = || "word section truncated".to_owned();
        let scope = match buf.get(*at).copied() {
            Some(0) => {
                *at += 1;
                None
            }
            Some(1) => {
                *at += 1;
                let n = decode_u64(buf, at).ok_or_else(truncated)?;
                let n = usize::try_from(n).map_err(|_| truncated())?;
                let mut spans = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let start = decode_u32(buf, at).ok_or_else(truncated)?;
                    let end = decode_u32(buf, at).ok_or_else(truncated)?;
                    if start > end {
                        return Err("inverted scope span".to_owned());
                    }
                    spans.push(start..end);
                }
                Some(spans)
            }
            _ => return Err("bad scope tag in word section".to_owned()),
        };
        let n_words = decode_u64(buf, at).ok_or_else(truncated)?;
        let n_words = usize::try_from(n_words).map_err(|_| truncated())?;
        let mut entries: Vec<Entry> = Vec::with_capacity(n_words.min(1 << 20));
        let mut postings = 0usize;
        let mut offset = 0u64;
        for _ in 0..n_words {
            let wlen = decode_u64(buf, at).ok_or_else(truncated)?;
            let wlen = usize::try_from(wlen).map_err(|_| truncated())?;
            let end = at.checked_add(wlen).ok_or_else(truncated)?;
            let word = std::str::from_utf8(buf.get(*at..end).ok_or_else(truncated)?)
                .map_err(|_| "dictionary word is not UTF-8".to_owned())?
                .to_owned();
            *at = end;
            let count = decode_u64(buf, at).ok_or_else(truncated)?;
            let len = decode_u32(buf, at).ok_or_else(truncated)?;
            if entries.last().is_some_and(|e| e.word.as_str() >= word.as_str()) {
                return Err("dictionary is not sorted".to_owned());
            }
            entries.push(Entry { word, count, offset, len, decoded: OnceLock::new() });
            postings = postings
                .checked_add(usize::try_from(count).map_err(|_| truncated())?)
                .ok_or_else(truncated)?;
            offset = offset.checked_add(u64::from(len)).ok_or_else(truncated)?;
        }
        let blob_len = decode_u64(buf, at).ok_or_else(truncated)?;
        if blob_len != offset {
            return Err("postings blob length disagrees with dictionary".to_owned());
        }
        let blob_len_us = usize::try_from(blob_len).map_err(|_| truncated())?;
        let blob_end = at.checked_add(blob_len_us).ok_or_else(truncated)?;
        if blob_end > buf.len() {
            return Err(truncated());
        }
        let source = match paged {
            Some((path, base)) => {
                let file = File::open(path).map_err(|e| format!("reopen for paging: {e}"))?;
                PostingsSource::Paged { file, offset: base + *at as u64, len: blob_len }
            }
            None => PostingsSource::Bytes(buf[*at..blob_end].to_vec()),
        };
        *at = blob_end;
        Ok(CompressedWordIndex { entries, source, postings, case_fold, scope })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, Tokenizer, WordIndexBuilder};

    fn sample_index(scoped: bool) -> (Corpus, WordIndex) {
        let corpus = Corpus::from_text(
            "the Quick brown fox jumps over the lazy dog the quick fox again and again \
             zebra apple Apple APPLE banana the the the",
        );
        let tok = Tokenizer::new();
        let index = if scoped {
            WordIndexBuilder::new(&tok).scoped_to(vec![0..60, 80..120]).build(&corpus)
        } else {
            WordIndex::build(&corpus, &tok)
        };
        (corpus, index)
    }

    #[test]
    fn lookups_match_the_uncompressed_index() {
        for scoped in [false, true] {
            let (_, index) = sample_index(scoped);
            let c = CompressedWordIndex::from_word_index(&index);
            assert_eq!(c.postings(), index.stats().postings);
            assert_eq!(c.distinct_words(), index.stats().distinct_words);
            assert_eq!(c.is_scoped(), index.is_scoped());
            for word in ["the", "quick", "Quick", "APPLE", "zebra", "absent", "Fox"] {
                assert_eq!(c.positions(word), index.positions(word), "{word} (scoped={scoped})");
                assert_eq!(c.contains(word), index.contains(word), "{word}");
                assert_eq!(c.frequency(word), index.frequency(word), "{word}");
            }
        }
    }

    #[test]
    fn round_trips_through_word_index() {
        let (_, index) = sample_index(true);
        let c = CompressedWordIndex::from_word_index(&index);
        let back = c.to_word_index();
        assert_eq!(back.stats().postings, index.stats().postings);
        assert_eq!(back.stats().distinct_words, index.stats().distinct_words);
        for (word, positions) in index.iter() {
            assert_eq!(back.positions(word), positions, "{word}");
        }
        assert_eq!(back.is_scoped(), index.is_scoped());
    }

    #[test]
    fn serialization_round_trips_in_memory() {
        let (_, index) = sample_index(false);
        let c = CompressedWordIndex::from_word_index(&index);
        let mut buf = vec![7u8; 5];
        c.serialize(&mut buf).unwrap();
        let mut at = 5;
        let back = CompressedWordIndex::deserialize(&buf, &mut at, c.case_fold, None).unwrap();
        assert_eq!(at, buf.len());
        assert_eq!(back.postings(), c.postings());
        for (word, positions) in index.iter() {
            assert_eq!(back.positions(word), positions, "{word}");
        }
    }

    #[test]
    fn paged_source_reads_from_disk_lazily() {
        let (_, index) = sample_index(false);
        let c = CompressedWordIndex::from_word_index(&index);
        let mut buf = vec![0u8; 11]; // pretend header
        c.serialize(&mut buf).unwrap();
        let path = std::env::temp_dir().join(format!("qof-paged-test-{}.bin", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let mut at = 11;
        let paged =
            CompressedWordIndex::deserialize(&buf, &mut at, c.case_fold, Some((&path, 0))).unwrap();
        assert!(paged.index_bytes() < c.index_bytes(), "paged keeps no blob resident");
        // Counts need no IO; positions page in on demand.
        assert_eq!(paged.frequency("the"), index.frequency("the"));
        for (word, positions) in index.iter() {
            assert_eq!(paged.positions(word), positions, "{word}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_sections_are_rejected_not_panicking() {
        let (_, index) = sample_index(false);
        let c = CompressedWordIndex::from_word_index(&index);
        let mut buf = Vec::new();
        c.serialize(&mut buf).unwrap();
        for cut in [0, 1, buf.len() / 3, buf.len() - 1] {
            let mut at = 0;
            assert!(
                CompressedWordIndex::deserialize(&buf[..cut], &mut at, true, None).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn compressed_index_is_smaller_than_approx_vec_footprint() {
        let text: String = (0..2000).map(|i| format!("word{} common filler ", i % 50)).collect();
        let corpus = Corpus::from_text(&text);
        let index = WordIndex::build(&corpus, &Tokenizer::new());
        let c = CompressedWordIndex::from_word_index(&index);
        assert!(
            c.index_bytes() < index.stats().approx_bytes,
            "{} vs {}",
            c.index_bytes(),
            index.stats().approx_bytes
        );
    }
}
