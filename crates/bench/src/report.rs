//! Machine-readable experiment reporting: the `BENCH_harness.json` file
//! that CI archives and validates. The format is hand-rolled (the crate is
//! dependency-free so the workspace builds offline) and deliberately flat:
//!
//! ```json
//! {
//!   "schema_version": 4,
//!   "scale": "small",
//!   "total_wall_secs": 1.25,
//!   "experiments": [
//!     { "id": "e11", "title": "…", "wall_secs": 0.42,
//!       "trace": { "schema_version": 1, "query": "…", "phases": [], … },
//!       "measurements": [
//!         { "name": "batch_speedup_threads4", "value": 2.3, "unit": "x" }
//!       ] }
//!   ]
//! }
//! ```
//!
//! Schema history: v2 added the optional per-experiment `trace` block — a
//! full `QueryTrace` document (see `qof_core::TRACE_SCHEMA_VERSION`) with
//! per-operator timings, per-phase breakdowns and the run's cache hit
//! ratio. v3 added the `e12` server-load experiment to the canonical run
//! order and bumped embedded traces to trace schema v2 (which carries the
//! query `id`). All v2 fields are unchanged. Embedded traces follow
//! `qof_core::TRACE_SCHEMA_VERSION` as it evolves (v3 adds per-rewrite
//! `certified` and the static `facts` array; v4 adds estimated-vs-actual
//! cardinalities and plan-cache counters); the `a2` analyzer-overhead and
//! `a3` cost-model experiments joined the canonical order without a report
//! schema bump — experiments are data, not schema. v4 marks the embedded
//! traces' move to trace schema v5, which restructures every operator span
//! (sink-assigned `span_id`, timeline `start_nanos` offsets on ops, phases
//! and shards) — a consumer reading v4 must be span-aware; the `a4`
//! observability experiment rode along as data.

use std::fmt::Write as _;
use std::path::Path;

/// One named scalar an experiment measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Measurement name, unique within its experiment (e.g. `index_secs_800`).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label: `s`, `x` (ratio), `B`, `regions`, …
    pub unit: &'static str,
}

/// Everything one experiment run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (`f2`, `e1` … `e11`, `a1`).
    pub id: &'static str,
    /// Human title, matching the harness banner.
    pub title: &'static str,
    /// Wall-clock seconds of the whole experiment (setup included).
    pub wall_secs: f64,
    /// Key numbers the experiment printed.
    pub measurements: Vec<Measurement>,
    /// An optional pre-serialized `QueryTrace` JSON document from a traced
    /// run of the experiment's representative query, embedded verbatim
    /// under `"trace"`. Must be the output of `QueryTrace::to_json` (the
    /// renderer trusts it to be valid JSON).
    pub trace_json: Option<String>,
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number (or `null` for non-finite values, which JSON cannot hold).
/// Negative zero (e.g. an empty `f64` sum) is normalized to plain `0`.
fn num(v: f64) -> String {
    if v.is_finite() {
        let v = if v == 0.0 { 0.0 } else { v };
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders the full report document.
pub fn render_json(scale: &str, reports: &[ExperimentReport]) -> String {
    let total: f64 = reports.iter().map(|r| r.wall_secs).sum();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 4,");
    let _ = writeln!(out, "  \"scale\": \"{}\",", esc(scale));
    let _ = writeln!(out, "  \"total_wall_secs\": {},", num(total));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"id\": \"{}\",", esc(r.id));
        let _ = writeln!(out, "      \"title\": \"{}\",", esc(r.title));
        let _ = writeln!(out, "      \"wall_secs\": {},", num(r.wall_secs));
        if let Some(trace) = &r.trace_json {
            let _ = writeln!(out, "      \"trace\": {trace},");
        }
        out.push_str("      \"measurements\": [\n");
        for (j, m) in r.measurements.iter().enumerate() {
            let comma = if j + 1 == r.measurements.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{ \"name\": \"{}\", \"value\": {}, \"unit\": \"{}\" }}{comma}",
                esc(&m.name),
                num(m.value),
                esc(m.unit),
            );
        }
        out.push_str("      ]\n");
        let comma = if i + 1 == reports.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the report document to `path`.
pub fn write_json(path: &Path, scale: &str, reports: &[ExperimentReport]) -> std::io::Result<()> {
    std::fs::write(path, render_json(scale, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_valid_json() {
        let reports = vec![ExperimentReport {
            id: "e11",
            title: "quote \" and slash \\",
            wall_secs: 0.5,
            measurements: vec![
                Measurement { name: "speedup".into(), value: 2.0, unit: "x" },
                Measurement { name: "bad".into(), value: f64::INFINITY, unit: "s" },
            ],
            trace_json: None,
        }];
        let json = render_json("small", &reports);
        assert!(json.contains("\"schema_version\": 4"));
        assert!(!json.contains("\"trace\""), "no trace block unless one was attached");
        assert!(json.contains("quote \\\" and slash \\\\"));
        assert!(json.contains("\"value\": null"), "non-finite values become null");
        assert!(json.contains("\"total_wall_secs\": 0.5"));
        // Balanced braces/brackets is a cheap structural sanity check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_report_is_well_formed() {
        let json = render_json("full", &[]);
        assert!(json.contains("\"experiments\": [\n  ]"));
        assert!(json.contains("\"total_wall_secs\": 0"));
    }

    #[test]
    fn trace_block_embeds_verbatim() {
        let reports = vec![ExperimentReport {
            id: "e11",
            title: "t",
            wall_secs: 0.1,
            measurements: vec![],
            trace_json: Some("{\"schema_version\":1,\"ops\":[]}".to_owned()),
        }];
        let json = render_json("small", &reports);
        assert!(json.contains("\"trace\": {\"schema_version\":1,\"ops\":[]},"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }
}
