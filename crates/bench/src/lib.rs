//! Shared setup and measurement helpers for the experiment suite E1–E12
//! (see DESIGN.md §4 for the experiment ↔ paper-claim mapping). Both the
//! `cargo bench` wrappers and the `harness` binary run the experiments in
//! [`experiments`], so the numbers they report come from identical code
//! paths; [`report`] serializes them to `BENCH_harness.json`.

pub mod experiments;
pub mod report;

use std::time::Instant;

use qof_core::baseline::{run_baseline_ast, BaselineMode, BaselineResult};
use qof_core::{parse_query, FileDatabase, Query, QueryResult};
use qof_corpus::bibtex::{self, BibtexConfig};
use qof_corpus::sgml::{self, SgmlConfig};
use qof_grammar::IndexSpec;
use qof_text::Corpus;

pub use qof_core as core;
pub use qof_corpus as corpus;
pub use qof_grammar as grammar;
pub use qof_pat as pat;
pub use qof_text as text;

/// The paper's running-example query.
pub const CHANG_AUTHOR: &str =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"";

/// The §5.3 star-variable form of the same attribute test.
pub const CHANG_STAR: &str = "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"";

/// The §5.2 same-variable content join.
pub const EDITOR_IS_AUTHOR: &str =
    "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name";

/// The E2/E6-style batch workload for the parallel-execution experiment:
/// point lookups, a content join, and overlapping conditions so the
/// subexpression cache has something to share.
pub const PARALLEL_WORKLOAD: &[&str] = &[
    CHANG_AUTHOR,
    EDITOR_IS_AUTHOR,
    "SELECT r FROM References r WHERE r.Year = \"1982\"",
    "SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"",
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\" \
     AND r.Year = \"1982\"",
    "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = \"Chang\" \
     OR r.Authors.Name.Last_Name = \"Tompa\"",
];

/// A BibTeX corpus of `n` references with the default experiment knobs.
pub fn bibtex_corpus(n: usize) -> Corpus {
    let cfg = BibtexConfig { n_refs: n, name_pool: 12, seed: 42, ..Default::default() };
    Corpus::from_text(&bibtex::generate(&cfg).0)
}

/// A corpus of `files` BibTeX files (distinct seeds) with `refs` references
/// each — the substrate of the shard-parallel experiment, where the corpus
/// must be partitionable on file boundaries.
pub fn multi_file_bibtex(files: usize, refs: usize) -> Corpus {
    let mut b = qof_text::CorpusBuilder::new();
    for i in 0..files {
        let cfg =
            BibtexConfig { n_refs: refs, seed: 42 + i as u64, name_pool: 12, ..Default::default() };
        b.add_file(format!("f{i}.bib"), &bibtex::generate(&cfg).0);
    }
    b.build()
}

/// A fully indexed BibTeX file database over `n` references.
pub fn bibtex_full(n: usize) -> FileDatabase {
    FileDatabase::build(bibtex_corpus(n), bibtex::schema(), IndexSpec::full())
        .expect("generated corpus indexes")
}

/// A partially indexed BibTeX file database.
pub fn bibtex_partial(n: usize, names: &[&str]) -> FileDatabase {
    FileDatabase::build(bibtex_corpus(n), bibtex::schema(), IndexSpec::names(names.to_vec()))
        .expect("generated corpus indexes")
}

/// An SGML corpus whose sections nest to `depth`.
pub fn sgml_corpus(depth: usize, top: usize) -> Corpus {
    let cfg = SgmlConfig {
        top_sections: top,
        max_depth: depth,
        subsections: (1, 2),
        paragraphs: (1, 2),
        para_words: 8,
        seed: 7,
    };
    Corpus::from_text(&sgml::generate(&cfg).0)
}

/// A fully indexed SGML file database.
pub fn sgml_full(depth: usize, top: usize) -> FileDatabase {
    FileDatabase::build(sgml_corpus(depth, top), sgml::schema(), IndexSpec::full())
        .expect("generated corpus indexes")
}

/// Runs a query on the file database, returning the result and seconds.
pub fn time_query(fdb: &FileDatabase, q: &str) -> (QueryResult, f64) {
    let parsed = parse_query(q).expect("valid query");
    let t = Instant::now();
    let r = fdb.query_ast(&parsed).expect("query runs");
    (r, t.elapsed().as_secs_f64())
}

/// Runs a query through the standard-database baseline, returning seconds.
pub fn time_baseline(
    corpus: &Corpus,
    schema: &qof_grammar::StructuringSchema,
    q: &str,
    mode: BaselineMode,
) -> (BaselineResult, f64) {
    let parsed: Query = parse_query(q).expect("valid query");
    let t = Instant::now();
    let r = run_baseline_ast(corpus, schema, &parsed, mode).expect("baseline runs");
    (r, t.elapsed().as_secs_f64())
}

/// The grep-style scan baseline: counts lines containing a word by reading
/// the whole text (what `grep Chang *.bib` would do).
pub fn grep_scan(corpus: &Corpus, word: &str) -> (usize, f64) {
    let t = Instant::now();
    let hits = corpus.text().lines().filter(|l| l.contains(word)).count();
    (hits, t.elapsed().as_secs_f64())
}

/// Median of `n` timed runs of `f` (seconds).
pub fn median_secs(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..n).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Formats seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:7.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:7.2}ms", s * 1e3)
    } else {
        format!("{s:7.3}s ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build() {
        let fdb = bibtex_full(20);
        let (r, secs) = time_query(&fdb, CHANG_AUTHOR);
        assert!(secs >= 0.0);
        assert!(r.stats.exact_index);
        let s = sgml_full(3, 2);
        assert!(s.instance().region_count() > 0);
        let (hits, _) = grep_scan(fdb.corpus(), "Chang");
        assert!(hits > 0);
    }

    #[test]
    fn median_is_stable() {
        let mut k = 0;
        let m = median_secs(5, || {
            k += 1;
            k as f64
        });
        assert_eq!(m, 3.0);
    }
}
