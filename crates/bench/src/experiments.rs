//! The experiment suite F2–F3, E1–E12, A1 (see DESIGN.md §4 for the
//! experiment ↔ paper-claim mapping). Every experiment prints its
//! human-readable table *and* records its key numbers into an
//! [`ExperimentReport`], which the harness serializes to
//! `BENCH_harness.json` (see [`crate::report`]).
//!
//! Experiments run at two scales: [`Scale::Full`] regenerates the
//! EXPERIMENTS.md tables; [`Scale::Small`] is the CI smoke configuration —
//! same code paths, corpora shrunk to finish in seconds.

use std::time::Instant;

use qof_core::baseline::BaselineMode;
use qof_core::{
    advise, certify, optimize, parse_query, AbsInterp, Direction, ExecOptions, FileDatabase,
    InclusionExpr, Rig, SelectKind,
};
use qof_corpus::{bibtex, logs};
use qof_grammar::{render_tree, IndexSpec, Parser};
use qof_pat::{direct_including, direct_including_layered, Engine, RegionExpr};
use qof_text::{Corpus, Tokenizer, WordIndex};

use crate::report::{ExperimentReport, Measurement};
use crate::{
    bibtex_corpus, bibtex_full, bibtex_partial, fmt_secs, grep_scan, median_secs,
    multi_file_bibtex, sgml_full, time_baseline, time_query, CHANG_AUTHOR, CHANG_STAR,
    EDITOR_IS_AUTHOR, PARALLEL_WORKLOAD,
};

/// How big a corpus each experiment builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI smoke scale: seconds, not minutes.
    Small,
    /// The EXPERIMENTS.md scale.
    Full,
}

impl Scale {
    /// Chooses the scale-appropriate value.
    fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }

    /// The label written into the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// Collects an experiment's measurements.
#[derive(Debug, Default)]
struct Recorder {
    ms: Vec<Measurement>,
    trace_json: Option<String>,
}

impl Recorder {
    fn rec(&mut self, name: impl Into<String>, value: f64, unit: &'static str) {
        self.ms.push(Measurement { name: name.into(), value, unit });
    }

    /// Embeds a serialized `QueryTrace` into the experiment's report
    /// (rendered under `"trace"`; last call wins).
    fn attach_trace(&mut self, json: String) {
        self.trace_json = Some(json);
    }
}

/// `(id, title)` of every experiment, in canonical run order.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("f2", "parse tree (full indexing) and derived RIG — Figure 2 / §3.2"),
    ("f3", "partial indexing Zp = {Reference, Key, Last_Name} — Figure 3 / §6.1"),
    ("e1", "optimized vs unoptimized inclusion expression (§3.2)"),
    ("e2", "index vs standard database vs grep-style scan (§1 headline)"),
    ("e3", "⊃ vs ⊃d (forest) vs ⊃d (paper's layered program) — §3.1"),
    ("e4", "partial indexing: candidates, scan volume, time (§6)"),
    ("e5", "push-down parsing of candidates vs full object construction (§6.2)"),
    ("e6", "content joins: index-located regions + DB join vs pure DB (§5.2)"),
    ("e7", "path variables *X: text index vs OODB traversal (§5.3)"),
    ("e8", "optimizer scaling with expression length (Theorem 3.6)"),
    ("e9", "choosing what to index: size vs time (§7)"),
    ("e10", "exact answers with partial indexing (§6.3)"),
    ("e11", "sharded parallel execution and the subexpression cache"),
    ("e12", "query server under closed-loop load: latency from /metrics, log overhead"),
    ("e13", "persistent compressed index (.qofx): O(1) reopen vs rebuild"),
    ("a1", "ablation: common-subexpression sharing in boolean queries (§5.2)"),
    ("a2", "analyzer: qof check latency and rewrite-certifier overhead"),
    ("a3", "cost model: cardinality-estimation error and plan-cache hit rate"),
    ("a4", "observability: tracing overhead (traced vs untraced) and history-ring footprint"),
    ("a5", "workload analytics: fingerprint aggregation overhead and heavy-hitter accuracy"),
];

/// All experiment ids, in canonical run order.
pub fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|(id, _)| *id).collect()
}

/// Runs one experiment by id; `None` for an unknown id. The returned
/// report carries the experiment's wall-clock time and key measurements.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentReport> {
    let &(id, title) = EXPERIMENTS.iter().find(|(eid, _)| *eid == id)?;
    let mut r = Recorder::default();
    let t0 = Instant::now();
    match id {
        "f2" => f2(),
        "f3" => f3(),
        "e1" => e1(scale, &mut r),
        "e2" => e2(scale, &mut r),
        "e3" => e3(scale, &mut r),
        "e4" => e4(scale, &mut r),
        "e5" => e5(scale, &mut r),
        "e6" => e6(scale, &mut r),
        "e7" => e7(scale, &mut r),
        "e8" => e8(scale, &mut r),
        "e9" => e9(scale, &mut r),
        "e10" => e10(scale, &mut r),
        "e11" => e11(scale, &mut r),
        "e12" => e12(scale, &mut r),
        "e13" => e13(scale, &mut r),
        "a1" => a1(scale, &mut r),
        "a2" => a2(scale, &mut r),
        "a3" => a3(scale, &mut r),
        "a4" => a4(scale, &mut r),
        "a5" => a5(scale, &mut r),
        _ => unreachable!("id came from EXPERIMENTS"),
    }
    Some(ExperimentReport {
        id,
        title,
        wall_secs: t0.elapsed().as_secs_f64(),
        measurements: r.ms,
        trace_json: r.trace_json,
    })
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Figure 2: the parse tree under full indexing, plus the derived RIG.
fn f2() {
    banner("F2", "parse tree (full indexing) and derived RIG — Figure 2 / §3.2");
    let (text, _) = bibtex::generate(&bibtex::BibtexConfig::with_refs(1));
    let schema = bibtex::schema();
    let parser = Parser::new(&schema.grammar, &text);
    let tree = parser.parse_root(0..text.len() as u32).unwrap();
    println!(
        "{}",
        render_tree(
            &tree,
            &schema.grammar,
            &text,
            &["Reference", "Authors", "Name", "Last_Name"],
            5
        )
    );
    println!("derived RIG (all non-terminals indexed):");
    print!("{}", Rig::from_grammar(&schema.grammar));
}

/// Figure 3: the partial-indexing view — Zp = {Reference, Key, `Last_Name`}.
fn f3() {
    banner("F3", "partial indexing Zp = {Reference, Key, Last_Name} — Figure 3 / §6.1");
    let (text, _) = bibtex::generate(&bibtex::BibtexConfig::with_refs(1));
    let schema = bibtex::schema();
    let full = Rig::from_grammar(&schema.grammar);
    let indexed =
        ["Reference", "Key", "Last_Name"].iter().map(std::string::ToString::to_string).collect();
    println!("partial RIG:");
    print!("{}", full.partial(&indexed));
    let parser = Parser::new(&schema.grammar, &text);
    let tree = parser.parse_root(0..text.len() as u32).unwrap();
    println!("parse tree with only the indexed names highlighted:");
    println!(
        "{}",
        render_tree(&tree, &schema.grammar, &text, &["Reference", "Key", "Last_Name"], 5)
    );
}

/// E1: optimized vs unoptimized inclusion expression (§3.2's e1 vs e2).
fn e1(scale: Scale, r: &mut Recorder) {
    banner("E1", "optimized vs unoptimized inclusion expression (§3.2)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>9} {:>9} | {:>7}",
        "refs", "e1 (⊃d)", "e2 (opt)", "ops e1", "ops e2", "speedup"
    );
    for n in scale.pick(vec![100, 400], vec![200, 800, 3200]) {
        let fdb = bibtex_full(n);
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            vec!["Reference".into(), "Authors".into(), "Name".into(), "Last_Name".into()],
            Some((SelectKind::Eq, "Chang".into())),
        );
        let e2 = optimize(&e1, fdb.full_rig()).expr;
        let (x1, x2) = (e1.to_region_expr(), e2.to_region_expr());
        let words = WordIndex::build(fdb.corpus(), &Tokenizer::new());
        let run = |x: &RegionExpr| {
            let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
            let t = Instant::now();
            let res = engine.eval(x).unwrap();
            (t.elapsed().as_secs_f64(), engine.stats(), res.len())
        };
        let t1 = median_secs(5, || run(&x1).0);
        let t2 = median_secs(5, || run(&x2).0);
        let (_, s1, r1) = run(&x1);
        let (_, s2, r2) = run(&x2);
        assert_eq!(r1, r2, "optimization must preserve the answer");
        r.rec(format!("unopt_secs_{n}"), t1, "s");
        r.rec(format!("opt_secs_{n}"), t2, "s");
        r.rec(format!("speedup_{n}"), t1 / t2.max(1e-12), "x");
        println!(
            "{:>8} | {} {} | {:>9} {:>9} | {:>6.2}x",
            n,
            fmt_secs(t1),
            fmt_secs(t2),
            s1.regions_consumed,
            s2.regions_consumed,
            t1 / t2.max(1e-12)
        );
    }
    println!("(ops = regions consumed by operator applications; ⊃d consults the whole universe)");
}

/// E2: index evaluation vs the standard-database pipeline vs raw scan.
fn e2(scale: Scale, r: &mut Recorder) {
    banner("E2", "index vs standard database vs grep-style scan (§1 headline)");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>12} {:>12}",
        "refs", "index", "db full", "db reduced", "grep", "idx bytes", "db bytes"
    );
    for n in scale.pick(vec![100, 400], vec![200, 800, 3200, 12800]) {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let ti = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let tf = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).1
        });
        let tr = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::ReducedLoad).1
        });
        let tg = median_secs(3, || grep_scan(&corpus, "Chang").1);
        let (ri, _) = time_query(&fdb, CHANG_AUTHOR);
        let (rb, _) = time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad);
        assert_eq!(ri.values.len(), rb.values.len());
        r.rec(format!("index_secs_{n}"), ti, "s");
        r.rec(format!("db_full_secs_{n}"), tf, "s");
        r.rec(format!("db_reduced_secs_{n}"), tr, "s");
        r.rec(format!("grep_secs_{n}"), tg, "s");
        println!(
            "{:>8} | {} {} {} {} | {:>12} {:>12}",
            n,
            fmt_secs(ti),
            fmt_secs(tf),
            fmt_secs(tr),
            fmt_secs(tg),
            ri.stats.bytes_touched(),
            rb.stats.parse.bytes_scanned,
        );
    }
    println!("(query work only; index construction is the text system's offline service)");
}

/// E3: the cost of ⊃d vs ⊃ as nesting deepens (§3.1's layered program).
fn e3(scale: Scale, r: &mut Recorder) {
    banner("E3", "⊃ vs ⊃d (forest) vs ⊃d (paper's layered program) — §3.1");
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>12} | {:>8}",
        "depth", "regions", "⊃", "⊃d fast", "⊃d layered", "d/plain"
    );
    for depth in scale.pick(vec![2, 4], vec![2, 4, 6, 8]) {
        let fdb = sgml_full(depth, 4);
        let sections = fdb.instance().get("Section").unwrap().clone();
        let heads = fdb.instance().get("Head").unwrap().clone();
        let universe = fdb.instance().universe();
        let forest = fdb.instance().build_forest();
        let t_plain = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(sections.including(&heads));
            t.elapsed().as_secs_f64()
        });
        let t_fast = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(direct_including(&sections, &heads, &forest));
            t.elapsed().as_secs_f64()
        });
        let t_layered = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(direct_including_layered(&sections, &heads, &universe));
            t.elapsed().as_secs_f64()
        });
        r.rec(format!("plain_secs_depth{depth}"), t_plain, "s");
        r.rec(format!("forest_secs_depth{depth}"), t_fast, "s");
        r.rec(format!("layered_secs_depth{depth}"), t_layered, "s");
        println!(
            "{:>6} {:>9} | {} {} {} | {:>7.1}x",
            depth,
            universe.len(),
            fmt_secs(t_plain),
            fmt_secs(t_fast),
            fmt_secs(t_layered),
            t_layered / t_plain.max(1e-12)
        );
    }
    println!("(the layered program is the paper's evidence that ⊃d is the expensive operator)");
}

/// E4: partial indexing — candidate superset factor and end-to-end cost.
fn e4(scale: Scale, r: &mut Recorder) {
    banner("E4", "partial indexing: candidates, scan volume, time (§6)");
    let n = scale.pick(400, 3200);
    let specs: Vec<(&str, Vec<&str>)> = vec![
        ("full", vec![]),
        ("{Ref,Auth,Last}", vec!["Reference", "Authors", "Last_Name"]),
        ("{Ref,Last}", vec!["Reference", "Last_Name"]),
        ("{Ref}", vec!["Reference"]),
    ];
    println!(
        "{:>16} | {:>8} {:>6} | {:>9} {:>12} {:>12} | {:>10}",
        "index", "regions", "exact", "cands", "parsed B", "of corpus", "time"
    );
    for (label, names) in specs {
        let fdb = if names.is_empty() { bibtex_full(n) } else { bibtex_partial(n, &names) };
        let t = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let (res, _) = time_query(&fdb, CHANG_AUTHOR);
        r.rec(format!("secs_{label}"), t, "s");
        r.rec(format!("candidates_{label}"), res.stats.candidates as f64, "regions");
        println!(
            "{:>16} | {:>8} {:>6} | {:>9} {:>12} {:>11.2}% | {}",
            label,
            fdb.instance().region_count(),
            res.stats.exact_index,
            res.stats.candidates,
            res.stats.parse.bytes_scanned,
            100.0 * res.stats.parse.bytes_scanned as f64 / fdb.corpus().len() as f64,
            fmt_secs(t),
        );
    }
    println!("(answers are identical in every row; smaller indexes parse more candidates)");
}

/// E5: pushing the query into candidate parsing (§6.2).
fn e5(scale: Scale, r: &mut Recorder) {
    banner("E5", "push-down parsing of candidates vs full object construction (§6.2)");
    use qof_grammar::{build_value, build_value_filtered, PathFilter};
    let n = scale.pick(400, 3200);
    let fdb = bibtex_partial(n, &["Reference", "Last_Name"]);
    let refs = fdb.instance().get("Reference").unwrap().clone();
    let schema = bibtex::schema();
    let sym = schema.grammar.symbol("Reference").unwrap();
    let filter = PathFilter::from_paths(&[vec!["Authors", "Name", "Last_Name"]]);
    let text = fdb.corpus().text();
    println!("{:>10} | {:>12} {:>12} | {:>12} {:>12}", "mode", "time", "nodes", "objects", "");
    for (label, filtered) in [("full", false), ("push-down", true)] {
        let t0 = Instant::now();
        let mut db = qof_db::Database::new();
        let parser = Parser::new(&schema.grammar, text);
        for region in &refs {
            let tree = parser.parse_symbol(sym, region.span()).unwrap();
            if filtered {
                build_value_filtered(&tree, &schema.grammar, text, &mut db, &filter);
            } else {
                build_value(&tree, &schema.grammar, text, &mut db);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        r.rec(format!("secs_{label}"), secs, "s");
        println!(
            "{:>10} | {} {:>12} | {:>12}",
            label,
            fmt_secs(secs),
            db.stats().value_nodes,
            db.stats().objects_created
        );
    }
    println!("(same candidates parsed; the filter skips fields the query never reads)");
}

/// E6: the select–project–join hybrid (§5.2).
fn e6(scale: Scale, r: &mut Recorder) {
    banner("E6", "content joins: index-located regions + DB join vs pure DB (§5.2)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>9} | {:>12} {:>12}",
        "refs", "hybrid", "database", "answers", "hyb bytes", "db bytes"
    );
    for n in scale.pick(vec![100, 400], vec![200, 800, 3200]) {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let th = median_secs(3, || time_query(&fdb, EDITOR_IS_AUTHOR).1);
        let tb = median_secs(3, || {
            time_baseline(&corpus, &schema, EDITOR_IS_AUTHOR, BaselineMode::FullLoad).1
        });
        let (rh, _) = time_query(&fdb, EDITOR_IS_AUTHOR);
        let (rb, _) = time_baseline(&corpus, &schema, EDITOR_IS_AUTHOR, BaselineMode::FullLoad);
        assert_eq!(rh.values.len(), rb.values.len());
        r.rec(format!("hybrid_secs_{n}"), th, "s");
        r.rec(format!("db_secs_{n}"), tb, "s");
        println!(
            "{:>8} | {} {} | {:>9} | {:>12} {:>12}",
            n,
            fmt_secs(th),
            fmt_secs(tb),
            rh.values.len(),
            rh.stats.bytes_touched(),
            rb.stats.parse.bytes_scanned
        );
    }
}

/// E7: path expressions with variables — cheap on text, expensive in the
/// OODB (§5.3's inversion claim).
fn e7(scale: Scale, r: &mut Recorder) {
    banner("E7", "path variables *X: text index vs OODB traversal (§5.3)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>14}",
        "refs", "idx fixed", "idx *X", "db fixed", "db *X", "db *X nodes"
    );
    for n in scale.pick(vec![100, 400], vec![200, 800, 3200]) {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let t_if = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let t_is = median_secs(3, || time_query(&fdb, CHANG_STAR).1);
        let t_bf = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).1
        });
        let t_bs = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_STAR, BaselineMode::FullLoad).1
        });
        let (rb, _) = time_baseline(&corpus, &schema, CHANG_STAR, BaselineMode::FullLoad);
        r.rec(format!("idx_star_secs_{n}"), t_is, "s");
        r.rec(format!("db_star_secs_{n}"), t_bs, "s");
        println!(
            "{:>8} | {} {} | {} {} | {:>14}",
            n,
            fmt_secs(t_if),
            fmt_secs(t_is),
            fmt_secs(t_bf),
            fmt_secs(t_bs),
            rb.stats.path.nodes_visited
        );
    }
    println!("(on text, *X is plain ⊃ — no more expensive than the fixed path)");
}

/// E8: the optimizer runs in time polynomial in expression length.
fn e8(scale: Scale, r: &mut Recorder) {
    banner("E8", "optimizer scaling with expression length (Theorem 3.6)");
    println!("{:>8} | {:>12} | {:>14}", "length", "time", "µs per name");
    for n in scale.pick(vec![4usize, 8, 16], vec![4usize, 8, 16, 32, 64, 128]) {
        // A long chain RIG A0 → A1 → … with shortcut edges every 3 nodes,
        // so both rewrite kinds stay busy.
        let mut rig = Rig::new();
        let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        for w in names.windows(2) {
            rig.add_edge(&w[0], &w[1]);
        }
        for i in (0..n.saturating_sub(3)).step_by(3) {
            rig.add_edge(&names[i], &names[i + 3]);
        }
        let e = InclusionExpr::all_direct(Direction::Including, names.clone(), None);
        let t = median_secs(9, || {
            let t0 = Instant::now();
            std::hint::black_box(optimize(&e, &rig));
            t0.elapsed().as_secs_f64()
        });
        r.rec(format!("optimize_secs_len{n}"), t, "s");
        println!("{:>8} | {} | {:>13.2}", n, fmt_secs(t), t * 1e6 / n as f64);
    }
}

/// E9: index selection — size vs query-time tradeoff (§7).
fn e9(scale: Scale, r: &mut Recorder) {
    banner("E9", "choosing what to index: size vs time (§7)");
    let n = scale.pick(400, 3200);
    let schema = bibtex::schema();
    let workload = [CHANG_AUTHOR, "SELECT r FROM References r WHERE r.Year = \"1982\""];
    let full = bibtex_full(n);
    let queries: Vec<_> = workload.iter().map(|q| parse_query(q).unwrap()).collect();
    let advice = advise(&schema, full.full_rig(), &queries);
    println!("advised set: {:?}", advice.index_set);
    let advised_names: Vec<&str> = advice.index_set.iter().map(String::as_str).collect();
    let scoped = IndexSpec::names(["Reference", "Year"]).with_scoped("Authors", "Last_Name");
    let corpus = bibtex_corpus(n);
    let scoped_db = FileDatabase::build(corpus, schema.clone(), scoped).unwrap();
    let setups: Vec<(&str, &FileDatabase)> = vec![("full", &full)];
    let advised_db = bibtex_partial(n, &advised_names);
    let tiny_db = bibtex_partial(n, &["Reference", "Last_Name", "Year"]);
    let mut rows: Vec<(&str, &FileDatabase)> = setups;
    rows.push(("advised", &advised_db));
    rows.push(("scoped §7", &scoped_db));
    rows.push(("tiny", &tiny_db));
    println!(
        "{:>10} | {:>9} {:>12} | {:>10} {:>8} {:>12}",
        "index", "regions", "approx B", "avg time", "exact", "parsed B"
    );
    for (label, fdb) in rows {
        let mut total = 0.0;
        let mut exact = true;
        let mut parsed = 0u64;
        for q in workload {
            let t = median_secs(3, || time_query(fdb, q).1);
            let (res, _) = time_query(fdb, q);
            total += t;
            exact &= res.stats.exact_index;
            parsed += res.stats.parse.bytes_scanned;
        }
        let avg = total / workload.len() as f64;
        r.rec(format!("avg_secs_{label}"), avg, "s");
        println!(
            "{:>10} | {:>9} {:>12} | {} {:>8} {:>12}",
            label,
            fdb.instance().region_count(),
            fdb.instance().approx_bytes(),
            fmt_secs(avg),
            exact,
            parsed
        );
    }
}

/// E10: §6.3 — partial indexes that are provably exact skip parsing.
fn e10(scale: Scale, r: &mut Recorder) {
    banner("E10", "exact answers with partial indexing (§6.3)");
    let cfg = logs::LogConfig {
        n_sessions: scale.pick(500, 4000),
        error_percent: 5,
        ..Default::default()
    };
    let (text, _) = logs::generate(&cfg);
    let corpus = Corpus::from_text(&text);
    let q = "SELECT s FROM Sessions s WHERE s.Requests.Request.Status = \"500\"";
    println!(
        "{:>22} | {:>8} {:>6} | {:>9} {:>12} | {:>10}",
        "index", "regions", "exact", "cands", "parsed B", "time"
    );
    for (label, names) in [
        ("full", vec![]),
        ("{Session,Status}", vec!["Session", "Status"]),
        ("{Session,Request}", vec!["Session", "Request"]),
    ] {
        let spec = if names.is_empty() { IndexSpec::full() } else { IndexSpec::names(names) };
        let fdb = FileDatabase::build(corpus.clone(), logs::schema(), spec).unwrap();
        let t = median_secs(3, || time_query(&fdb, q).1);
        let (res, _) = time_query(&fdb, q);
        r.rec(format!("secs_{label}"), t, "s");
        println!(
            "{:>22} | {:>8} {:>6} | {:>9} {:>12} | {}",
            label,
            fdb.instance().region_count(),
            res.stats.exact_index,
            res.stats.candidates,
            res.stats.parse.bytes_scanned,
            fmt_secs(t)
        );
    }
    println!(
        "({{Session,Status}} is exact: the route runs through unindexed names only; \
              {{Session,Request}} cannot test the status and must parse)"
    );
}

/// E11: the sharded parallel execution layer and the engine-level
/// subexpression cache, on the E2/E6 workload (`query_many` batches).
///
/// Reports, per thread count, the batched wall-clock and its speedup over
/// one thread, plus the cache hit rate of a repeated batch. Results are
/// asserted byte-identical to sequential evaluation at every setting.
fn e11(scale: Scale, r: &mut Recorder) {
    banner("E11", "sharded parallel execution and the subexpression cache");
    let (files, refs) = scale.pick((6, 40), (12, 400));
    let corpus = multi_file_bibtex(files, refs);
    let mut fdb = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
    let batch: Vec<&str> = PARALLEL_WORKLOAD.to_vec();
    println!("corpus: {files} files × {refs} refs; batch of {} queries", batch.len());

    let run_batch = |fdb: &FileDatabase| {
        let t = Instant::now();
        let results = fdb.query_many(&batch);
        (results, t.elapsed().as_secs_f64())
    };
    // Sequential, uncached baseline — also the correctness oracle.
    fdb.set_exec_options(ExecOptions { threads: 1, cache: false });
    let (baseline, _) = run_batch(&fdb);
    let t1 = median_secs(3, || run_batch(&fdb).1);
    r.rec("batch_secs_threads1", t1, "s");
    println!("{:>9} | {:>10} | {:>7}", "threads", "batch", "speedup");
    println!("{:>9} | {} | {:>6.2}x", 1, fmt_secs(t1), 1.0);

    for threads in scale.pick(vec![2, 4], vec![2, 4, 8]) {
        fdb.set_exec_options(ExecOptions { threads, cache: false });
        let (results, _) = run_batch(&fdb);
        for (a, b) in baseline.iter().zip(&results) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.regions, b.regions, "parallel execution changed a result");
            assert_eq!(a.values, b.values, "parallel execution changed a value");
        }
        let tt = median_secs(3, || run_batch(&fdb).1);
        r.rec(format!("batch_secs_threads{threads}"), tt, "s");
        r.rec(format!("batch_speedup_threads{threads}"), t1 / tt.max(1e-12), "x");
        println!("{:>9} | {} | {:>6.2}x", threads, fmt_secs(tt), t1 / tt.max(1e-12));
    }

    // Per-query sharding on the single heaviest query (E6's content join).
    fdb.set_exec_options(ExecOptions { threads: 1, cache: false });
    let tq1 = median_secs(3, || time_query(&fdb, EDITOR_IS_AUTHOR).1);
    let seq = fdb.query(EDITOR_IS_AUTHOR).unwrap();
    fdb.set_exec_options(ExecOptions { threads: 4, cache: false });
    let par = fdb.query(EDITOR_IS_AUTHOR).unwrap();
    assert_eq!(seq.regions, par.regions);
    assert_eq!(seq.values, par.values);
    let tq4 = median_secs(3, || time_query(&fdb, EDITOR_IS_AUTHOR).1);
    r.rec("join_query_secs_threads1", tq1, "s");
    r.rec("join_query_secs_threads4", tq4, "s");
    r.rec("join_query_speedup_threads4", tq1 / tq4.max(1e-12), "x");
    println!(
        "single E6 join: {} (1 thread) vs {} (4 threads, sharded) = {:.2}x",
        fmt_secs(tq1),
        fmt_secs(tq4),
        tq1 / tq4.max(1e-12)
    );

    // The §5.2 cache across a repeated batch: second pass is mostly hits.
    fdb.set_exec_options(ExecOptions { threads: 1, cache: true });
    fdb.clear_subexpr_cache();
    let (warm, _) = run_batch(&fdb);
    for (a, b) in baseline.iter().zip(&warm) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.regions, b.regions, "cached execution changed a result");
        assert_eq!(a.values, b.values, "cached execution changed a value");
    }
    let tc = median_secs(3, || run_batch(&fdb).1);
    let stats = fdb.cache_stats();
    r.rec("cached_batch_secs", tc, "s");
    r.rec("cache_speedup", t1 / tc.max(1e-12), "x");
    r.rec("cache_hit_rate", stats.hit_rate(), "ratio");
    println!(
        "cached repeat batch: {} = {:.2}x vs uncached; hit rate {:.1}% ({} entries)",
        fmt_secs(tc),
        t1 / tc.max(1e-12),
        100.0 * stats.hit_rate(),
        stats.entries
    );
    println!("(speedups depend on available cores; results are asserted identical throughout)");

    // Trace-derived breakdown of the heaviest query: per-phase timings and
    // this run's cache hit ratio, embedded into the report as a full
    // `QueryTrace` document. Traced evaluation re-enters the same memoized
    // engine, so the result must be byte-identical to the untraced run —
    // asserted here instead of a speedup (tracing is pure overhead).
    let untraced = fdb.query(EDITOR_IS_AUTHOR).unwrap();
    let (traced, trace) = fdb.query_traced(EDITOR_IS_AUTHOR).unwrap();
    assert_eq!(untraced.regions, traced.regions, "tracing changed a result");
    assert_eq!(untraced.values, traced.values, "tracing changed a value");
    r.rec("trace_cache_hit_rate", trace.cache_hit_rate(), "ratio");
    r.rec("trace_total_secs", trace.total_nanos as f64 / 1e9, "s");
    r.rec("trace_op_nodes", trace.op_node_count() as f64, "nodes");
    for phase in &trace.phases {
        r.rec(
            format!("trace_phase_{}_secs", phase.name.replace('-', "_")),
            phase.nanos as f64 / 1e9,
            "s",
        );
    }
    let t_untraced = median_secs(3, || time_query(&fdb, EDITOR_IS_AUTHOR).1);
    let t_traced = median_secs(3, || {
        let t = Instant::now();
        std::hint::black_box(fdb.query_traced(EDITOR_IS_AUTHOR).unwrap());
        t.elapsed().as_secs_f64()
    });
    r.rec("trace_overhead_ratio", t_traced / t_untraced.max(1e-12), "x");
    println!(
        "traced E6 join: {} phases, {} operator nodes, cache hit rate {:.1}%, \
         tracing overhead {:.2}x",
        trace.phases.len(),
        trace.op_node_count(),
        100.0 * trace.cache_hit_rate(),
        t_traced / t_untraced.max(1e-12)
    );
    r.attach_trace(trace.to_json());
}

/// Reads quantile `q` (seconds) of a Prometheus histogram out of `/metrics`
/// exposition text: smallest bucket upper bound whose cumulative count
/// covers `q` of the total. Only unlabeled series match (`name_bucket{le=`),
/// so per-operator histograms don't leak in.
fn prom_histogram_quantile(metrics: &str, name: &str, q: f64) -> f64 {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let Some((le, count)) = rest.split_once("\"} ") else { continue };
        let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
        buckets.push((le, count.trim().parse().unwrap_or(0.0)));
    }
    let total = buckets.last().map_or(0.0, |b| b.1);
    if total == 0.0 {
        return 0.0;
    }
    let target = q * total;
    buckets.iter().find(|(_, c)| *c >= target).map_or(f64::INFINITY, |(le, _)| *le)
}

/// Reads a counter's value out of Prometheus exposition text.
fn prom_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// E12: the `qof serve` stack under closed-loop load — concurrent
/// keep-alive HTTP clients posting the E11 workload (plus one malformed
/// query each), with p50/p95 read back from `/metrics` the way a scraper
/// would, the query log cross-checked line-for-line against
/// `qof_queries_total`, and the log's overhead measured by re-running the
/// identical load with the log discarded.
fn e12(scale: Scale, r: &mut Recorder) {
    use std::net::TcpListener;

    use qof_server::{serve, Client, QueryLog, ServerConfig, ServerHandle};

    banner("E12", "query server under closed-loop load: latency from /metrics, log overhead");
    let (files, refs) = scale.pick((4, 30), (8, 200));
    let clients = scale.pick(2, 4);
    let per_client = scale.pick(20, 150);
    println!(
        "corpus: {files} files × {refs} refs; {clients} closed-loop clients × {per_client} \
         requests (first one malformed)"
    );

    let build_db = || {
        FileDatabase::build(multi_file_bibtex(files, refs), bibtex::schema(), IndexSpec::full())
            .expect("generated corpus indexes")
            .with_exec_options(ExecOptions { threads: 1, cache: true })
    };
    // One closed-loop run: start a fresh server, drive it, return the
    // handle (still serving) and the load's wall-clock seconds.
    let run_load = |log: QueryLog| -> (ServerHandle, f64) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback listener");
        let handle = serve(build_db(), listener, log, &ServerConfig::default()).expect("serve");
        let addr = handle.addr();
        let t = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..per_client {
                        let (want, q) = if i == 0 {
                            (400, "SELEC nope")
                        } else {
                            (200, PARALLEL_WORKLOAD[(c + i) % PARALLEL_WORKLOAD.len()])
                        };
                        let (status, body) = client.post("/query", q).expect("request");
                        assert_eq!(status, want, "{body}");
                    }
                });
            }
        });
        (handle, t.elapsed().as_secs_f64())
    };

    // Pass 1: log discarded (the no-overhead baseline).
    let (plain, t_plain) = run_load(QueryLog::discard());
    plain.shutdown();

    // Pass 2: the same load with the query log on a real file.
    let log_path = std::env::temp_dir().join(format!("qof-e12-{}.log", std::process::id()));
    let file = std::fs::File::create(&log_path).expect("create query log");
    let (handle, t_logged) = run_load(QueryLog::new(Box::new(file)));

    let total = (clients * per_client) as u64;
    let mut scraper = Client::connect(handle.addr()).expect("connect");
    let (status, metrics) = scraper.get("/metrics").expect("scrape");
    assert_eq!(status, 200);
    let queries = prom_counter(&metrics, "qof_queries_total");
    let errors = prom_counter(&metrics, "qof_query_errors_total");
    assert_eq!(queries, total, "every request is counted exactly once");
    assert_eq!(errors, clients as u64, "one malformed query per client");
    let log_lines =
        std::fs::read_to_string(&log_path).expect("read query log").lines().count() as u64;
    assert_eq!(log_lines, queries, "metrics and the query log advance in lockstep");
    let (_, recorder_json) = scraper.get("/flight-recorder").expect("recorder");
    assert!(recorder_json.contains("\"id\":"), "flight recorder holds traces");
    handle.shutdown();
    std::fs::remove_file(&log_path).ok();

    let p50 = prom_histogram_quantile(&metrics, "qof_query_latency_seconds", 0.50);
    let p95 = prom_histogram_quantile(&metrics, "qof_query_latency_seconds", 0.95);
    let overhead = t_logged / t_plain.max(1e-12);
    r.rec("requests", total as f64, "queries");
    r.rec("wall_secs_logged", t_logged, "s");
    r.rec("throughput_qps", total as f64 / t_logged.max(1e-12), "1/s");
    r.rec("p50_ms", p50 * 1e3, "ms");
    r.rec("p95_ms", p95 * 1e3, "ms");
    r.rec("log_overhead_ratio", overhead, "x");
    println!(
        "{total} requests in {} = {:.0} q/s; server-side p50 {} p95 {} (log₂ bucket bounds)",
        fmt_secs(t_logged),
        total as f64 / t_logged.max(1e-12),
        fmt_secs(p50),
        fmt_secs(p95),
    );
    println!(
        "query log: {log_lines} lines (= qof_queries_total); overhead vs no log {overhead:.3}x"
    );
    println!("(closed-loop: each client waits for its response before the next request)");
}

/// E13: the tentpole claim of the persistent backend — a server reopening
/// a `.qofx` file must start an order of magnitude faster than one
/// rebuilding from source, answer every representative query identically,
/// and pay less than one index byte per corpus byte on disk (beyond the
/// embedded corpus text itself).
fn e13(scale: Scale, r: &mut Recorder) {
    banner("E13", "persistent compressed index (.qofx): O(1) reopen vs rebuild");
    let (files, refs) = scale.pick((4, 60), (16, 400));
    let corpus = multi_file_bibtex(files, refs);
    let corpus_bytes = u64::from(corpus.len());

    // Stage the corpus as real source files: a cold server start without
    // a persisted index must read them back and re-tokenize, re-structure
    // and re-index everything, so that whole pipeline is the baseline.
    let mut src_dir = std::env::temp_dir();
    src_dir.push(format!("qof-bench-e13-src-{}", std::process::id()));
    std::fs::create_dir_all(&src_dir).expect("temp source dir");
    for f in corpus.files() {
        let span = (f.span.start as usize)..(f.span.end as usize);
        std::fs::write(src_dir.join(&f.name), &corpus.text()[span]).expect("stage source file");
    }
    let names: Vec<String> = corpus.files().iter().map(|f| f.name.clone()).collect();
    drop(corpus);

    // Cold build: what a server without a persisted index must do.
    let t = Instant::now();
    let mut builder = qof_text::CorpusBuilder::new();
    for name in &names {
        let text = std::fs::read_to_string(src_dir.join(name)).expect("read source file");
        builder.add_file(name.clone(), &text);
    }
    let mem = FileDatabase::build(builder.build(), bibtex::schema(), IndexSpec::full())
        .expect("generated corpus indexes");
    let t_build = t.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&src_dir).ok();

    let mut path = std::env::temp_dir();
    path.push(format!("qof-bench-e13-{}.qofx", std::process::id()));
    let t = Instant::now();
    let file_bytes = mem.persist(&path).expect("persist succeeds");
    let t_persist = t.elapsed().as_secs_f64();

    // Reopen repeatedly; the median is the steady cold-start cost.
    let passes = scale.pick(3usize, 9);
    let t_open = median_secs(passes, || {
        let t = Instant::now();
        std::hint::black_box(FileDatabase::open(&path, bibtex::schema()).expect("reopens"));
        t.elapsed().as_secs_f64()
    });
    let qofx = FileDatabase::open(&path, bibtex::schema()).expect("reopens");
    std::fs::remove_file(&path).ok();

    // Every representative query must answer byte-identically on both
    // backends; time them side by side while at it.
    let mut t_mem_total = 0.0;
    let mut t_qofx_total = 0.0;
    for q in PARALLEL_WORKLOAD {
        let (a, ta) = time_query(&mem, q);
        let (b, tb) = time_query(&qofx, q);
        assert_eq!(a.regions, b.regions, "regions differ on {q}");
        assert_eq!(a.values, b.values, "values differ on {q}");
        assert_eq!(a.stats.exact_index, b.stats.exact_index, "exactness differs on {q}");
        t_mem_total += ta;
        t_qofx_total += tb;
    }
    #[allow(clippy::cast_precision_loss)]
    let t_mem_q = t_mem_total / PARALLEL_WORKLOAD.len() as f64;
    #[allow(clippy::cast_precision_loss)]
    let t_qofx_q = t_qofx_total / PARALLEL_WORKLOAD.len() as f64;

    let index_bytes = file_bytes.saturating_sub(corpus_bytes);
    #[allow(clippy::cast_precision_loss)]
    let per_byte = if corpus_bytes == 0 { 0.0 } else { index_bytes as f64 / corpus_bytes as f64 };
    let speedup = t_build / t_open.max(1e-9);

    r.rec("build_secs", t_build, "s");
    r.rec("persist_secs", t_persist, "s");
    r.rec("open_secs", t_open, "s");
    r.rec("cold_start_speedup", speedup, "x");
    r.rec("file_bytes", file_bytes as f64, "B");
    r.rec("corpus_bytes", corpus_bytes as f64, "B");
    r.rec("index_bytes_per_corpus_byte", per_byte, "ratio");
    r.rec("mem_query_secs", t_mem_q, "s");
    r.rec("qofx_query_secs", t_qofx_q, "s");
    println!(
        "{:>10} | {:>9} | {:>9} | {:>9} | {:>7} | {:>7}",
        "build", "persist", "reopen", "speedup", "idx B/B", "q slowdn"
    );
    println!(
        "{} | {} | {} | {:>8.1}x | {:>7.3} | {:>7.2}x",
        fmt_secs(t_build),
        fmt_secs(t_persist),
        fmt_secs(t_open),
        speedup,
        per_byte,
        t_qofx_q / t_mem_q.max(1e-9),
    );
}

/// A1 (ablation): common-subexpression sharing across OR branches (§5.2:
/// "the goal is to find common subexpressions … and evaluate them once").
fn a1(scale: Scale, r: &mut Recorder) {
    banner("A1", "ablation: common-subexpression sharing in boolean queries (§5.2)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>8} {:>9} | {:>7}",
        "refs", "shared", "unshared", "σ∋ ops", "σ∋ ops u", "speedup"
    );
    for n in scale.pick(vec![200usize], vec![800usize, 3200]) {
        let fdb = bibtex_full(n);
        let words = WordIndex::build(fdb.corpus(), &Tokenizer::new());
        // Both OR branches share an expensive subexpression: σ∋ over a
        // frequent abstract word (large posting list) on the Reference set.
        let shared = RegionExpr::name("Reference").select_contains("solving");
        let e = shared
            .clone()
            .intersect(
                RegionExpr::name("Reference").including(
                    RegionExpr::name("Authors")
                        .including(RegionExpr::name("Last_Name").select_eq("Chang")),
                ),
            )
            .union(
                shared.intersect(
                    RegionExpr::name("Reference").including(
                        RegionExpr::name("Editors")
                            .including(RegionExpr::name("Last_Name").select_eq("Corliss")),
                    ),
                ),
            );
        let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
        let t_shared = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(engine.eval(&e).unwrap());
            t.elapsed().as_secs_f64()
        });
        let t_unshared = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(engine.eval_unshared(&e).unwrap());
            t.elapsed().as_secs_f64()
        });
        engine.reset_stats();
        engine.eval(&e).unwrap();
        let ops_s = engine.stats().ops("σ∋");
        engine.reset_stats();
        engine.eval_unshared(&e).unwrap();
        let ops_u = engine.stats().ops("σ∋");
        r.rec(format!("shared_secs_{n}"), t_shared, "s");
        r.rec(format!("unshared_secs_{n}"), t_unshared, "s");
        println!(
            "{:>8} | {} {} | {:>8} {:>9} | {:>6.2}x",
            n,
            fmt_secs(t_shared),
            fmt_secs(t_unshared),
            ops_s,
            ops_u,
            t_unshared / t_shared.max(1e-12)
        );
    }
}

/// A2: what the static-analysis layer costs. Three numbers per corpus
/// size: the full `qof check` pipeline per query (planning + abstract
/// interpretation + lints), the end-to-end query it guards, and the
/// certifier alone on the §3.2 golden chain (the per-plan overhead the
/// query path now always pays).
fn a2(scale: Scale, r: &mut Recorder) {
    banner("A2", "analyzer: qof check latency and rewrite-certifier overhead");
    println!(
        "{:>8} | {:>10} {:>10} {:>12} | {:>9}",
        "refs", "check", "query", "certify", "chk/qry"
    );
    let queries = [CHANG_AUTHOR, CHANG_STAR, "SELECT r FROM References r WHERE r.Year = \"1982\""];
    for n in scale.pick(vec![200usize], vec![800usize, 3200]) {
        let fdb = bibtex_full(n);
        let t_check = median_secs(9, || {
            let t = Instant::now();
            for q in &queries {
                std::hint::black_box(fdb.check(q));
            }
            t.elapsed().as_secs_f64() / queries.len() as f64
        });
        let t_query = median_secs(9, || {
            let t = Instant::now();
            for q in &queries {
                std::hint::black_box(fdb.query(q).unwrap());
            }
            t.elapsed().as_secs_f64() / queries.len() as f64
        });
        // The certifier micro-benchmark: replay + abstract states for the
        // golden chain's two-step rewrite, amortized over a tight loop.
        let rig = fdb.partial_rig();
        let chain = InclusionExpr::all_direct(
            Direction::Including,
            ["Reference", "Authors", "Name", "Last_Name"].iter().map(ToString::to_string).collect(),
            None,
        );
        let opt = optimize(&chain, rig);
        let interp = AbsInterp::new(rig);
        let t_cert = median_secs(9, || {
            let t = Instant::now();
            for _ in 0..100 {
                std::hint::black_box(certify(&chain, rig, &opt, &interp));
            }
            t.elapsed().as_secs_f64() / 100.0
        });
        r.rec(format!("check_secs_{n}"), t_check, "s");
        r.rec(format!("query_secs_{n}"), t_query, "s");
        r.rec(format!("certify_secs_{n}"), t_cert, "s");
        println!(
            "{:>8} | {} {} {:>11} | {:>8.2}x",
            n,
            fmt_secs(t_check),
            fmt_secs(t_query),
            fmt_secs(t_cert),
            t_check / t_query.max(1e-12)
        );
    }
}

/// A3: how good the cost model's numbers are, and what the plan cache
/// buys. A mixed workload runs several passes over the corpus; the first
/// pass measures estimation quality (planner intervals vs the phase-1
/// cardinalities the engine then observed), the repeats measure the plan
/// cache. Soundness — every observation inside its interval — is asserted,
/// not just reported.
fn a3(scale: Scale, r: &mut Recorder) {
    banner("A3", "cost model: cardinality-estimation error and plan-cache hit rate");
    let workload = [
        CHANG_AUTHOR,
        CHANG_STAR,
        EDITOR_IS_AUTHOR,
        "SELECT r FROM References r WHERE r.Year = \"1982\"",
    ];
    println!(
        "{:>8} | {:>9} {:>8} | {:>9} {:>10} | {:>10} {:>10}",
        "refs", "rel err", "sound", "pc hits", "pc misses", "1st pass", "warm pass"
    );
    for n in scale.pick(vec![200usize], vec![800usize, 3200]) {
        let fdb = bibtex_full(n);
        // Pass 1 (cold): every chain misses the plan cache; collect the
        // estimated-vs-actual pairs.
        let t = Instant::now();
        let mut rel_err_sum = 0.0;
        let mut est_count = 0u64;
        let mut sound = 0u64;
        for q in &workload {
            let (_, trace) = fdb.query_traced(q).unwrap();
            for e in &trace.estimates {
                // Point estimate: the interval midpoint when bounded above,
                // else the lower bound.
                let point = match e.est_hi {
                    Some(hi) => (e.est_lo as f64 + hi as f64) / 2.0,
                    None => e.est_lo as f64,
                };
                rel_err_sum += (point - e.observed as f64).abs() / (e.observed as f64).max(1.0);
                est_count += 1;
                let inside = e.est_lo <= e.observed && e.est_hi.is_none_or(|hi| e.observed <= hi);
                assert!(inside, "unsound estimate for {q}: {e:?}");
                sound += u64::from(inside);
            }
            if *q == CHANG_AUTHOR {
                r.attach_trace(trace.to_json());
            }
        }
        let t_cold = t.elapsed().as_secs_f64() / workload.len() as f64;
        // Warm passes: identical queries, so planning comes from the cache.
        let passes = scale.pick(3usize, 9);
        let t_warm = median_secs(passes, || {
            let t = Instant::now();
            for q in &workload {
                std::hint::black_box(fdb.query_traced(q).unwrap());
            }
            t.elapsed().as_secs_f64() / workload.len() as f64
        });
        let pc = fdb.plan_cache_stats();
        let mean_rel_err = rel_err_sum / est_count.max(1) as f64;
        let sound_rate = sound as f64 / est_count.max(1) as f64;
        let hit_rate = pc.hits as f64 / (pc.hits + pc.misses).max(1) as f64;
        r.rec(format!("estimate_mean_rel_error_{n}"), mean_rel_err, "x");
        r.rec(format!("estimate_sound_rate_{n}"), sound_rate, "ratio");
        r.rec(format!("plan_cache_hit_rate_{n}"), hit_rate, "ratio");
        r.rec(format!("plan_cache_hits_{n}"), pc.hits as f64, "count");
        r.rec(format!("plan_cache_misses_{n}"), pc.misses as f64, "count");
        r.rec(format!("cold_pass_secs_{n}"), t_cold, "s");
        r.rec(format!("warm_pass_secs_{n}"), t_warm, "s");
        println!(
            "{:>8} | {:>8.2}x {:>7.0}% | {:>9} {:>10} | {} {}",
            n,
            mean_rel_err,
            sound_rate * 100.0,
            pc.hits,
            pc.misses,
            fmt_secs(t_cold),
            fmt_secs(t_warm),
        );
    }
}

fn a4(scale: Scale, r: &mut Recorder) {
    banner("A4", "observability: tracing overhead and history-ring footprint");
    let workload = [
        CHANG_AUTHOR,
        CHANG_STAR,
        EDITOR_IS_AUTHOR,
        "SELECT r FROM References r WHERE r.Year = \"1982\"",
    ];
    println!(
        "{:>8} | {:>10} {:>10} {:>9} | {:>10} {:>10}",
        "refs", "untraced", "traced", "overhead", "ring cap", "ring bytes"
    );
    for n in scale.pick(vec![200usize], vec![800usize, 3200]) {
        let fdb = bibtex_full(n);
        // Warm both paths first so the plan cache and page cache state are
        // identical for the timed passes.
        for q in &workload {
            fdb.query(q).unwrap();
            fdb.query_traced(q).unwrap();
        }
        let passes = scale.pick(5usize, 11);
        let t_plain = median_secs(passes, || {
            let t = Instant::now();
            for q in &workload {
                std::hint::black_box(fdb.query(q).unwrap());
            }
            t.elapsed().as_secs_f64() / workload.len() as f64
        });
        let t_traced = median_secs(passes, || {
            let t = Instant::now();
            for q in &workload {
                std::hint::black_box(fdb.query_traced(q).unwrap());
            }
            t.elapsed().as_secs_f64() / workload.len() as f64
        });
        let overhead = t_traced / t_plain.max(f64::EPSILON);
        // The time-series ring at its configured capacity: a fixed,
        // corpus-independent upper bound on resident bytes.
        let history = qof_pat::MetricsHistory::default();
        let ring_cap = history.capacity();
        let ring_bytes = history.approx_max_bytes();
        r.rec(format!("untraced_pass_secs_{n}"), t_plain, "s");
        r.rec(format!("traced_pass_secs_{n}"), t_traced, "s");
        r.rec(format!("trace_overhead_x_{n}"), overhead, "x");
        println!(
            "{:>8} | {} {} {:>8.2}x | {:>10} {:>10}",
            n,
            fmt_secs(t_plain),
            fmt_secs(t_traced),
            overhead,
            ring_cap,
            ring_bytes,
        );
    }
    let history = qof_pat::MetricsHistory::default();
    r.rec("history_ring_capacity", history.capacity() as f64, "samples");
    r.rec("history_ring_max_bytes", history.approx_max_bytes() as f64, "bytes");
}

fn a5(scale: Scale, r: &mut Recorder) {
    use qof_pat::{WorkloadObs, WorkloadTable};
    banner("A5", "workload analytics: fingerprint aggregation overhead and heavy-hitter accuracy");
    let workload = [
        CHANG_AUTHOR,
        CHANG_STAR,
        EDITOR_IS_AUTHOR,
        "SELECT r FROM References r WHERE r.Year = \"1982\"",
    ];
    println!(
        "{:>8} | {:>10} {:>10} | {:>11} {:>9}",
        "refs", "untraced", "traced", "observe", "analytics"
    );
    for n in scale.pick(vec![200usize], vec![800usize, 3200]) {
        let fdb = bibtex_full(n);
        for q in &workload {
            fdb.query(q).unwrap();
            fdb.query_traced(q).unwrap();
        }
        let passes = scale.pick(5usize, 11);
        // The untraced path never touches the workload table; timing it
        // documents that analytics cost zero off the traced path.
        let t_plain = median_secs(passes, || {
            let t = Instant::now();
            for q in &workload {
                std::hint::black_box(fdb.query(q).unwrap());
            }
            t.elapsed().as_secs_f64() / workload.len() as f64
        });
        let t_traced = median_secs(passes, || {
            let t = Instant::now();
            for q in &workload {
                std::hint::black_box(fdb.query_traced(q).unwrap());
            }
            t.elapsed().as_secs_f64() / workload.len() as f64
        });
        // The analytics cost in isolation: feed a fresh table the same
        // observation stream the traced passes produced, far more times
        // than any pass would, and take ns per observe.
        let observations: Vec<WorkloadObs> = workload
            .iter()
            .map(|q| {
                let (_, tr) = fdb.query_traced(q).unwrap();
                WorkloadObs {
                    fingerprint: tr.fingerprint,
                    exemplar: tr.query.clone(),
                    nanos: tr.total_nanos,
                    bytes: tr.bytes_touched,
                    plan_cache_hits: tr.plan_cache_hits,
                    plan_cache_misses: tr.plan_cache_misses,
                    cache_hits: tr.cache_hits,
                    cache_misses: tr.cache_misses,
                    error: false,
                    est_ratio: 1.0,
                    trace_id: tr.id,
                }
            })
            .collect();
        let table = WorkloadTable::new();
        let rounds = scale.pick(20_000usize, 100_000);
        let t0 = Instant::now();
        for i in 0..rounds {
            table.observe(&observations[i % observations.len()]);
        }
        let observe_nanos = t0.elapsed().as_secs_f64() * 1e9 / rounds as f64;
        // One observe per traced query: the analytics share of the traced
        // path is observe time over whole-query time.
        let analytics_pct = observe_nanos / (t_traced * 1e9).max(f64::EPSILON) * 100.0;
        r.rec(format!("untraced_pass_secs_{n}"), t_plain, "s");
        r.rec(format!("traced_pass_secs_{n}"), t_traced, "s");
        r.rec(format!("workload_observe_nanos_{n}"), observe_nanos, "ns");
        r.rec(format!("analytics_overhead_pct_{n}"), analytics_pct, "%");
        println!(
            "{:>8} | {} {} | {:>9.0}ns {:>8.3}%",
            n,
            fmt_secs(t_plain),
            fmt_secs(t_traced),
            observe_nanos,
            analytics_pct,
        );
    }
    // Heavy-hitter accuracy under eviction pressure: a skewed stream of 4×
    // the table's capacity distinct fingerprints. The space-saving bound
    // guarantees every entry's true count lies in [hits − overcount, hits].
    let table = WorkloadTable::new();
    let capacity = table.capacity();
    let shapes = capacity * 4;
    let mut true_hot = 0u64;
    for round in 0..shapes {
        let fp = (round % shapes) as u64 + 1;
        // Fingerprint 1 is hot: it reappears every 4th observation.
        let repeats = if fp == 1 { 64 } else { 1 };
        for _ in 0..repeats {
            table.observe(&WorkloadObs {
                fingerprint: fp,
                exemplar: format!("shape {fp}"),
                nanos: 1_000,
                bytes: 10,
                plan_cache_hits: 1,
                plan_cache_misses: 0,
                cache_hits: 0,
                cache_misses: 0,
                error: false,
                est_ratio: 1.0,
                trace_id: fp,
            });
            if fp == 1 {
                true_hot += 1;
            }
        }
    }
    let snapshot = table.snapshot();
    let hot = snapshot.iter().find(|e| e.fingerprint == 1).expect("hot shape survives eviction");
    println!(
        "heavy hitters: {shapes} shapes through {capacity} slots — hot shape kept \
         (hits {} overcount {} true {true_hot})",
        hot.hits, hot.overcount
    );
    r.rec("workload_capacity", capacity as f64, "entries");
    r.rec("hot_shape_hits", hot.hits as f64, "count");
    r.rec("hot_shape_overcount", hot.overcount as f64, "count");
    let (_, tr) = bibtex_full(scale.pick(50, 200)).query_traced(CHANG_AUTHOR).unwrap();
    r.attach_trace(tr.to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_rejected() {
        assert!(run("e99", Scale::Small).is_none());
    }

    #[test]
    fn a3_reports_estimation_error_and_plan_cache_hit_rate() {
        let report = run("a3", Scale::Small).unwrap();
        let names: Vec<&str> = report.measurements.iter().map(|m| m.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("estimate_mean_rel_error_")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("plan_cache_hit_rate_")), "{names:?}");
        let hit_rate = report
            .measurements
            .iter()
            .find(|m| m.name.starts_with("plan_cache_hit_rate_"))
            .unwrap();
        assert!(hit_rate.value > 0.0, "warm passes must hit the plan cache");
        let sound = report
            .measurements
            .iter()
            .find(|m| m.name.starts_with("estimate_sound_rate_"))
            .unwrap();
        assert!((sound.value - 1.0).abs() < f64::EPSILON, "intervals must be sound");
        // The embedded trace is a v6 document with estimates.
        let trace = report.trace_json.as_deref().unwrap();
        assert!(trace.contains("\"schema_version\":6"), "{trace}");
        assert!(trace.contains("\"estimates\":["), "{trace}");
    }

    #[test]
    fn a4_reports_tracing_overhead_and_ring_footprint() {
        let report = run("a4", Scale::Small).unwrap();
        let get = |name: &str| {
            report
                .measurements
                .iter()
                .find(|m| m.name == name || m.name.starts_with(name))
                .unwrap_or_else(|| panic!("missing measurement {name}"))
                .value
        };
        assert!(get("untraced_pass_secs_") > 0.0);
        assert!(get("traced_pass_secs_") > 0.0);
        // A timing assertion loose enough for a loaded CI box: tracing must
        // not change the asymptotics of a query (it stamps spans, it does
        // not re-execute work).
        assert!(get("trace_overhead_x_") < 10.0, "tracing blew up query time");
        assert!(get("history_ring_capacity") >= 1.0);
        // The ring's worst case stays small enough to forget about.
        assert!(get("history_ring_max_bytes") < 1024.0 * 1024.0, "ring footprint must be bounded");
    }

    #[test]
    fn a5_reports_analytics_overhead_and_heavy_hitters() {
        let report = run("a5", Scale::Small).unwrap();
        let get = |name: &str| {
            report
                .measurements
                .iter()
                .find(|m| m.name == name || m.name.starts_with(name))
                .unwrap_or_else(|| panic!("missing measurement {name}"))
                .value
        };
        assert!(get("workload_observe_nanos_") > 0.0);
        // The acceptance bar: analytics must stay a rounding error on the
        // traced path (one table observe per multi-millisecond query).
        assert!(get("analytics_overhead_pct_") <= 5.0, "analytics overhead above 5%");
        // Space-saving accuracy: the hot shape survives a 4×-capacity
        // sweep and its count bound contains the true count.
        let (hits, over) = (get("hot_shape_hits"), get("hot_shape_overcount"));
        assert!(hits - over <= 4096.0 && hits >= 4096.0 / 64.0, "hot shape bound");
        // The embedded trace is a v6 document carrying the fingerprint.
        let trace = report.trace_json.as_deref().unwrap();
        assert!(trace.contains("\"schema_version\":6"), "{trace}");
        assert!(trace.contains("\"fingerprint\":\""), "{trace}");
        assert!(trace.contains("\"bytes_touched\":"), "{trace}");
    }

    #[test]
    fn e13_reopen_is_faster_equal_and_compact() {
        let report = run("e13", Scale::Small).unwrap();
        let get = |name: &str| {
            report
                .measurements
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing measurement {name}"))
                .value
        };
        assert!(get("cold_start_speedup") > 1.0, "reopen must beat rebuild");
        assert!(get("index_bytes_per_corpus_byte") < 1.0, "index must be compact");
        assert!(get("open_secs") > 0.0);
        assert!(get("file_bytes") > get("corpus_bytes"));
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let ids = all_ids();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
        assert!(ids.contains(&"e11"));
    }
}
