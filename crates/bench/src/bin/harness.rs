//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p qof-bench --release --bin harness          # all experiments
//! cargo run -p qof-bench --release --bin harness -- e2 e4 # a subset
//! ```
//!
//! Experiment ids: f2 f3 e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 a1 (see DESIGN.md §4;
//! a1 is the common-subexpression-sharing ablation of §5.2).

use std::time::Instant;

use qof_bench::*;
use qof_core::baseline::BaselineMode;
use qof_core::{advise, optimize, parse_query, Direction, InclusionExpr, Rig, SelectKind};
use qof_corpus::{bibtex, logs};
use qof_grammar::{render_tree, IndexSpec, Parser};
use qof_pat::{direct_including, direct_including_layered, Engine, RegionExpr};
use qof_text::{Corpus, Tokenizer, WordIndex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all =
        ["f2", "f3", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "a1"];
    let run: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in run {
        match id {
            "f2" => f2(),
            "f3" => f3(),
            "e1" => e1(),
            "e2" => e2(),
            "e3" => e3(),
            "e4" => e4(),
            "e5" => e5(),
            "e6" => e6(),
            "e7" => e7(),
            "e8" => e8(),
            "e9" => e9(),
            "e10" => e10(),
            "a1" => a1(),
            other => eprintln!("unknown experiment `{other}` (known: {})", all.join(" ")),
        }
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Figure 2: the parse tree under full indexing, plus the derived RIG.
fn f2() {
    banner("F2", "parse tree (full indexing) and derived RIG — Figure 2 / §3.2");
    let (text, _) = bibtex::generate(&bibtex::BibtexConfig::with_refs(1));
    let schema = bibtex::schema();
    let parser = Parser::new(&schema.grammar, &text);
    let tree = parser.parse_root(0..text.len() as u32).unwrap();
    println!(
        "{}",
        render_tree(&tree, &schema.grammar, &text, &["Reference", "Authors", "Name", "Last_Name"], 5)
    );
    println!("derived RIG (all non-terminals indexed):");
    print!("{}", Rig::from_grammar(&schema.grammar));
}

/// Figure 3: the partial-indexing view — Zp = {Reference, Key, Last_Name}.
fn f3() {
    banner("F3", "partial indexing Zp = {Reference, Key, Last_Name} — Figure 3 / §6.1");
    let (text, _) = bibtex::generate(&bibtex::BibtexConfig::with_refs(1));
    let schema = bibtex::schema();
    let full = Rig::from_grammar(&schema.grammar);
    let indexed = ["Reference", "Key", "Last_Name"].iter().map(|s| s.to_string()).collect();
    println!("partial RIG:");
    print!("{}", full.partial(&indexed));
    let parser = Parser::new(&schema.grammar, &text);
    let tree = parser.parse_root(0..text.len() as u32).unwrap();
    println!("parse tree with only the indexed names highlighted:");
    println!(
        "{}",
        render_tree(&tree, &schema.grammar, &text, &["Reference", "Key", "Last_Name"], 5)
    );
}

/// E1: optimized vs unoptimized inclusion expression (§3.2's e1 vs e2).
fn e1() {
    banner("E1", "optimized vs unoptimized inclusion expression (§3.2)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>9} {:>9} | {:>7}",
        "refs", "e1 (⊃d)", "e2 (opt)", "ops e1", "ops e2", "speedup"
    );
    for n in [200, 800, 3200] {
        let fdb = bibtex_full(n);
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            vec!["Reference".into(), "Authors".into(), "Name".into(), "Last_Name".into()],
            Some((SelectKind::Eq, "Chang".into())),
        );
        let e2 = optimize(&e1, fdb.full_rig()).expr;
        let (x1, x2) = (e1.to_region_expr(), e2.to_region_expr());
        let words = WordIndex::build(fdb.corpus(), &Tokenizer::new());
        let run = |x: &RegionExpr| {
            let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
            let t = Instant::now();
            let r = engine.eval(x).unwrap();
            (t.elapsed().as_secs_f64(), engine.stats(), r.len())
        };
        let t1 = median_secs(5, || run(&x1).0);
        let t2 = median_secs(5, || run(&x2).0);
        let (_, s1, r1) = run(&x1);
        let (_, s2, r2) = run(&x2);
        assert_eq!(r1, r2, "optimization must preserve the answer");
        println!(
            "{:>8} | {} {} | {:>9} {:>9} | {:>6.2}x",
            n,
            fmt_secs(t1),
            fmt_secs(t2),
            s1.regions_consumed,
            s2.regions_consumed,
            t1 / t2.max(1e-12)
        );
    }
    println!("(ops = regions consumed by operator applications; ⊃d consults the whole universe)");
}

/// E2: index evaluation vs the standard-database pipeline vs raw scan.
fn e2() {
    banner("E2", "index vs standard database vs grep-style scan (§1 headline)");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>12} {:>12}",
        "refs", "index", "db full", "db reduced", "grep", "idx bytes", "db bytes"
    );
    for n in [200, 800, 3200, 12800] {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let ti = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let tf = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).1
        });
        let tr = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::ReducedLoad).1
        });
        let tg = median_secs(3, || grep_scan(&corpus, "Chang").1);
        let (ri, _) = time_query(&fdb, CHANG_AUTHOR);
        let (rb, _) = time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad);
        assert_eq!(ri.values.len(), rb.values.len());
        println!(
            "{:>8} | {} {} {} {} | {:>12} {:>12}",
            n,
            fmt_secs(ti),
            fmt_secs(tf),
            fmt_secs(tr),
            fmt_secs(tg),
            ri.stats.bytes_touched(),
            rb.stats.parse.bytes_scanned,
        );
    }
    println!("(query work only; index construction is the text system's offline service)");
}

/// E3: the cost of ⊃d vs ⊃ as nesting deepens (§3.1's layered program).
fn e3() {
    banner("E3", "⊃ vs ⊃d (forest) vs ⊃d (paper's layered program) — §3.1");
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>12} | {:>8}",
        "depth", "regions", "⊃", "⊃d fast", "⊃d layered", "d/plain"
    );
    for depth in [2, 4, 6, 8] {
        let fdb = sgml_full(depth, 4);
        let sections = fdb.instance().get("Section").unwrap().clone();
        let heads = fdb.instance().get("Head").unwrap().clone();
        let universe = fdb.instance().universe();
        let forest = fdb.instance().build_forest();
        let t_plain = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(sections.including(&heads));
            t.elapsed().as_secs_f64()
        });
        let t_fast = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(direct_including(&sections, &heads, &forest));
            t.elapsed().as_secs_f64()
        });
        let t_layered = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(direct_including_layered(&sections, &heads, &universe));
            t.elapsed().as_secs_f64()
        });
        println!(
            "{:>6} {:>9} | {} {} {} | {:>7.1}x",
            depth,
            universe.len(),
            fmt_secs(t_plain),
            fmt_secs(t_fast),
            fmt_secs(t_layered),
            t_layered / t_plain.max(1e-12)
        );
    }
    println!("(the layered program is the paper's evidence that ⊃d is the expensive operator)");
}

/// E4: partial indexing — candidate superset factor and end-to-end cost.
fn e4() {
    banner("E4", "partial indexing: candidates, scan volume, time (§6)");
    let n = 3200;
    let specs: Vec<(&str, Vec<&str>)> = vec![
        ("full", vec![]),
        ("{Ref,Auth,Last}", vec!["Reference", "Authors", "Last_Name"]),
        ("{Ref,Last}", vec!["Reference", "Last_Name"]),
        ("{Ref}", vec!["Reference"]),
    ];
    println!(
        "{:>16} | {:>8} {:>6} | {:>9} {:>12} {:>12} | {:>10}",
        "index", "regions", "exact", "cands", "parsed B", "of corpus", "time"
    );
    for (label, names) in specs {
        let fdb = if names.is_empty() { bibtex_full(n) } else { bibtex_partial(n, &names) };
        let t = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let (r, _) = time_query(&fdb, CHANG_AUTHOR);
        println!(
            "{:>16} | {:>8} {:>6} | {:>9} {:>12} {:>11.2}% | {}",
            label,
            fdb.instance().region_count(),
            r.stats.exact_index,
            r.stats.candidates,
            r.stats.parse.bytes_scanned,
            100.0 * r.stats.parse.bytes_scanned as f64 / fdb.corpus().len() as f64,
            fmt_secs(t),
        );
    }
    println!("(answers are identical in every row; smaller indexes parse more candidates)");
}

/// E5: pushing the query into candidate parsing (§6.2).
fn e5() {
    banner("E5", "push-down parsing of candidates vs full object construction (§6.2)");
    use qof_grammar::{build_value, build_value_filtered, PathFilter};
    let n = 3200;
    let fdb = bibtex_partial(n, &["Reference", "Last_Name"]);
    let refs = fdb.instance().get("Reference").unwrap().clone();
    let schema = bibtex::schema();
    let sym = schema.grammar.symbol("Reference").unwrap();
    let filter = PathFilter::from_paths(&[vec!["Authors", "Name", "Last_Name"]]);
    let text = fdb.corpus().text();
    println!("{:>10} | {:>12} {:>12} | {:>12} {:>12}", "mode", "time", "nodes", "objects", "");
    for (label, filtered) in [("full", false), ("push-down", true)] {
        let t0 = Instant::now();
        let mut db = qof_db::Database::new();
        let parser = Parser::new(&schema.grammar, text);
        for region in refs.iter() {
            let tree = parser.parse_symbol(sym, region.span()).unwrap();
            if filtered {
                build_value_filtered(&tree, &schema.grammar, text, &mut db, &filter);
            } else {
                build_value(&tree, &schema.grammar, text, &mut db);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>10} | {} {:>12} | {:>12}",
            label,
            fmt_secs(secs),
            db.stats().value_nodes,
            db.stats().objects_created
        );
    }
    println!("(same candidates parsed; the filter skips fields the query never reads)");
}

/// E6: the select–project–join hybrid (§5.2).
fn e6() {
    banner("E6", "content joins: index-located regions + DB join vs pure DB (§5.2)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>9} | {:>12} {:>12}",
        "refs", "hybrid", "database", "answers", "hyb bytes", "db bytes"
    );
    for n in [200, 800, 3200] {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let th = median_secs(3, || time_query(&fdb, EDITOR_IS_AUTHOR).1);
        let tb = median_secs(3, || {
            time_baseline(&corpus, &schema, EDITOR_IS_AUTHOR, BaselineMode::FullLoad).1
        });
        let (rh, _) = time_query(&fdb, EDITOR_IS_AUTHOR);
        let (rb, _) = time_baseline(&corpus, &schema, EDITOR_IS_AUTHOR, BaselineMode::FullLoad);
        assert_eq!(rh.values.len(), rb.values.len());
        println!(
            "{:>8} | {} {} | {:>9} | {:>12} {:>12}",
            n,
            fmt_secs(th),
            fmt_secs(tb),
            rh.values.len(),
            rh.stats.bytes_touched(),
            rb.stats.parse.bytes_scanned
        );
    }
}

/// E7: path expressions with variables — cheap on text, expensive in the
/// OODB (§5.3's inversion claim).
fn e7() {
    banner("E7", "path variables *X: text index vs OODB traversal (§5.3)");
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>14}",
        "refs", "idx fixed", "idx *X", "db fixed", "db *X", "db *X nodes"
    );
    for n in [200, 800, 3200] {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        let t_if = median_secs(3, || time_query(&fdb, CHANG_AUTHOR).1);
        let t_is = median_secs(3, || time_query(&fdb, CHANG_STAR).1);
        let t_bf = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).1
        });
        let t_bs = median_secs(3, || {
            time_baseline(&corpus, &schema, CHANG_STAR, BaselineMode::FullLoad).1
        });
        let (rb, _) = time_baseline(&corpus, &schema, CHANG_STAR, BaselineMode::FullLoad);
        println!(
            "{:>8} | {} {} | {} {} | {:>14}",
            n,
            fmt_secs(t_if),
            fmt_secs(t_is),
            fmt_secs(t_bf),
            fmt_secs(t_bs),
            rb.stats.path.nodes_visited
        );
    }
    println!("(on text, *X is plain ⊃ — no more expensive than the fixed path)");
}

/// E8: the optimizer runs in time polynomial in expression length.
fn e8() {
    banner("E8", "optimizer scaling with expression length (Theorem 3.6)");
    println!("{:>8} | {:>12} | {:>14}", "length", "time", "µs per name");
    for n in [4usize, 8, 16, 32, 64, 128] {
        // A long chain RIG A0 → A1 → … with shortcut edges every 3 nodes,
        // so both rewrite kinds stay busy.
        let mut rig = Rig::new();
        let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        for w in names.windows(2) {
            rig.add_edge(&w[0], &w[1]);
        }
        for i in (0..n.saturating_sub(3)).step_by(3) {
            rig.add_edge(&names[i], &names[i + 3]);
        }
        let e = InclusionExpr::all_direct(Direction::Including, names.clone(), None);
        let t = median_secs(9, || {
            let t0 = Instant::now();
            std::hint::black_box(optimize(&e, &rig));
            t0.elapsed().as_secs_f64()
        });
        println!("{:>8} | {} | {:>13.2}", n, fmt_secs(t), t * 1e6 / n as f64);
    }
}

/// E9: index selection — size vs query-time tradeoff (§7).
fn e9() {
    banner("E9", "choosing what to index: size vs time (§7)");
    let n = 3200;
    let schema = bibtex::schema();
    let workload = [CHANG_AUTHOR, "SELECT r FROM References r WHERE r.Year = \"1982\""];
    let full = bibtex_full(n);
    let queries: Vec<_> = workload.iter().map(|q| parse_query(q).unwrap()).collect();
    let advice = advise(&schema, full.full_rig(), &queries);
    println!("advised set: {:?}", advice.index_set);
    let advised_names: Vec<&str> = advice.index_set.iter().map(String::as_str).collect();
    let scoped = IndexSpec::names(["Reference", "Year"])
        .with_scoped("Authors", "Last_Name");
    let corpus = bibtex_corpus(n);
    let scoped_db =
        qof_core::FileDatabase::build(corpus, schema.clone(), scoped).unwrap();
    let setups: Vec<(&str, &qof_core::FileDatabase)> = vec![("full", &full)];
    let advised_db = bibtex_partial(n, &advised_names);
    let tiny_db = bibtex_partial(n, &["Reference", "Last_Name", "Year"]);
    let mut rows: Vec<(&str, &qof_core::FileDatabase)> = setups;
    rows.push(("advised", &advised_db));
    rows.push(("scoped §7", &scoped_db));
    rows.push(("tiny", &tiny_db));
    println!(
        "{:>10} | {:>9} {:>12} | {:>10} {:>8} {:>12}",
        "index", "regions", "approx B", "avg time", "exact", "parsed B"
    );
    for (label, fdb) in rows {
        let mut total = 0.0;
        let mut exact = true;
        let mut parsed = 0u64;
        for q in workload {
            let t = median_secs(3, || time_query(fdb, q).1);
            let (r, _) = time_query(fdb, q);
            total += t;
            exact &= r.stats.exact_index;
            parsed += r.stats.parse.bytes_scanned;
        }
        println!(
            "{:>10} | {:>9} {:>12} | {} {:>8} {:>12}",
            label,
            fdb.instance().region_count(),
            fdb.instance().approx_bytes(),
            fmt_secs(total / workload.len() as f64),
            exact,
            parsed
        );
    }
}

/// A1 (ablation): common-subexpression sharing across OR branches (§5.2:
/// "the goal is to find common subexpressions … and evaluate them once").
fn a1() {
    banner("A1", "ablation: common-subexpression sharing in boolean queries (§5.2)");
    println!("{:>8} | {:>10} {:>10} | {:>8} {:>9} | {:>7}", "refs", "shared", "unshared", "σ∋ ops", "σ∋ ops u", "speedup");
    for n in [800usize, 3200] {
        let fdb = bibtex_full(n);
        let words = WordIndex::build(fdb.corpus(), &Tokenizer::new());
        // Both OR branches share an expensive subexpression: σ∋ over a
        // frequent abstract word (large posting list) on the Reference set.
        let shared = RegionExpr::name("Reference").select_contains("solving");
        let e = shared
            .clone()
            .intersect(RegionExpr::name("Reference").including(
                RegionExpr::name("Authors").including(RegionExpr::name("Last_Name").select_eq("Chang")),
            ))
            .union(shared.intersect(RegionExpr::name("Reference").including(
                RegionExpr::name("Editors").including(RegionExpr::name("Last_Name").select_eq("Corliss")),
            )));
        let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
        let t_shared = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(engine.eval(&e).unwrap());
            t.elapsed().as_secs_f64()
        });
        let t_unshared = median_secs(9, || {
            let t = Instant::now();
            std::hint::black_box(engine.eval_unshared(&e).unwrap());
            t.elapsed().as_secs_f64()
        });
        engine.reset_stats();
        engine.eval(&e).unwrap();
        let ops_s = engine.stats().ops("σ∋");
        engine.reset_stats();
        engine.eval_unshared(&e).unwrap();
        let ops_u = engine.stats().ops("σ∋");
        println!(
            "{:>8} | {} {} | {:>8} {:>9} | {:>6.2}x",
            n,
            fmt_secs(t_shared),
            fmt_secs(t_unshared),
            ops_s,
            ops_u,
            t_unshared / t_shared.max(1e-12)
        );
    }
}

/// E10: §6.3 — partial indexes that are provably exact skip parsing.
fn e10() {
    banner("E10", "exact answers with partial indexing (§6.3)");
    let cfg = logs::LogConfig { n_sessions: 4000, error_percent: 5, ..Default::default() };
    let (text, _) = logs::generate(&cfg);
    let corpus = Corpus::from_text(&text);
    let q = "SELECT s FROM Sessions s WHERE s.Requests.Request.Status = \"500\"";
    println!(
        "{:>22} | {:>8} {:>6} | {:>9} {:>12} | {:>10}",
        "index", "regions", "exact", "cands", "parsed B", "time"
    );
    for (label, names) in [
        ("full", vec![]),
        ("{Session,Status}", vec!["Session", "Status"]),
        ("{Session,Request}", vec!["Session", "Request"]),
    ] {
        let spec = if names.is_empty() {
            IndexSpec::full()
        } else {
            IndexSpec::names(names)
        };
        let fdb =
            qof_core::FileDatabase::build(corpus.clone(), logs::schema(), spec).unwrap();
        let t = median_secs(3, || time_query(&fdb, q).1);
        let (r, _) = time_query(&fdb, q);
        println!(
            "{:>22} | {:>8} {:>6} | {:>9} {:>12} | {}",
            label,
            fdb.instance().region_count(),
            r.stats.exact_index,
            r.stats.candidates,
            r.stats.parse.bytes_scanned,
            fmt_secs(t)
        );
    }
    println!("({{Session,Status}} is exact: the route runs through unindexed names only; \
              {{Session,Request}} cannot test the status and must parse)");
}
