//! The experiment harness: regenerates every table of EXPERIMENTS.md and
//! emits the machine-readable `BENCH_harness.json` report.
//!
//! ```sh
//! cargo run -p qof-bench --release --bin harness            # all experiments
//! cargo run -p qof-bench --release --bin harness -- e2 e4   # a subset
//! cargo run -p qof-bench --release --bin harness -- --small e1 e3   # CI smoke
//! cargo run -p qof-bench --release --bin harness -- --json out.json e11
//! ```
//!
//! Experiment ids: f2 f3 e1 … e12 a1 a2 (see DESIGN.md §4; e11 is the
//! shard-parallel + subexpression-cache experiment, a1 the §5.2 sharing
//! ablation, a2 the static-analyzer overhead on the check and query
//! paths). `--small` shrinks every corpus to CI scale; `--json PATH`
//! overrides the default report path of `BENCH_harness.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use qof_bench::experiments::{all_ids, run, Scale};
use qof_bench::report::write_json;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path = PathBuf::from("BENCH_harness.json");
    let mut ids: Vec<String> = Vec::new();
    while let Some(arg) = args.first().cloned() {
        match arg.as_str() {
            "--small" => {
                scale = Scale::Small;
                args.remove(0);
            }
            "--json" => {
                if args.len() < 2 {
                    eprintln!("--json needs a path");
                    return ExitCode::FAILURE;
                }
                json_path = PathBuf::from(args[1].clone());
                args.drain(..2);
            }
            _ => ids.push(args.remove(0)),
        }
    }
    let all = all_ids();
    let run_ids: Vec<&str> =
        if ids.is_empty() { all.clone() } else { ids.iter().map(String::as_str).collect() };

    let mut reports = Vec::new();
    let mut failed = false;
    for id in run_ids {
        match run(id, scale) {
            Some(report) => reports.push(report),
            None => {
                eprintln!("unknown experiment `{id}` (known: {})", all.join(" "));
                failed = true;
            }
        }
    }
    if let Err(e) = write_json(&json_path, scale.label(), &reports) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {} ({} experiments)", json_path.display(), reports.len());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
