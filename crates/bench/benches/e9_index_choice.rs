//! E9 — §7: index size vs query time across the full / advised / scoped /
//! minimal index configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_corpus, bibtex_full, bibtex_partial, CHANG_AUTHOR};
use qof_core::FileDatabase;
use qof_corpus::bibtex;
use qof_grammar::IndexSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_index_choice");
    group.sample_size(20);
    let n = 1600;
    let full = bibtex_full(n);
    let advised = bibtex_partial(n, &["Reference", "Authors", "Last_Name"]);
    let scoped = FileDatabase::build(
        bibtex_corpus(n),
        bibtex::schema(),
        IndexSpec::names(["Reference"]).with_scoped("Authors", "Last_Name"),
    )
    .unwrap();
    for (label, fdb) in [("full", &full), ("advised", &advised), ("scoped", &scoped)] {
        group.bench_function(BenchmarkId::new("query", label), |b| {
            b.iter(|| fdb.query(CHANG_AUTHOR).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
