//! E10 — §6.3: a partial index whose candidate set is provably exact skips
//! the parse phase; an equally sized but wrongly chosen one cannot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_core::FileDatabase;
use qof_corpus::logs;
use qof_grammar::IndexSpec;
use qof_text::Corpus;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_exact_partial");
    group.sample_size(20);
    let cfg = logs::LogConfig { n_sessions: 2000, error_percent: 5, ..Default::default() };
    let corpus = Corpus::from_text(&logs::generate(&cfg).0);
    let q = "SELECT s FROM Sessions s WHERE s.Requests.Request.Status = \"500\"";
    for (label, spec) in [
        ("full", IndexSpec::full()),
        ("session_status", IndexSpec::names(["Session", "Status"])),
        ("session_request", IndexSpec::names(["Session", "Request"])),
    ] {
        let fdb = FileDatabase::build(corpus.clone(), logs::schema(), spec).unwrap();
        group.bench_function(BenchmarkId::new("query", label), |b| {
            b.iter(|| fdb.query(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
