//! E7 — §5.3: path expressions with variables. On text, `*X` costs no more
//! than the fixed path; in the OODB it forces full traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_corpus, bibtex_full, CHANG_AUTHOR, CHANG_STAR};
use qof_core::baseline::{run_baseline, BaselineMode};
use qof_corpus::bibtex;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_path_variables");
    group.sample_size(20);
    let n = 1600;
    let corpus = bibtex_corpus(n);
    let schema = bibtex::schema();
    let fdb = bibtex_full(n);
    group.bench_function(BenchmarkId::new("index", "fixed_path"), |b| {
        b.iter(|| fdb.query(CHANG_AUTHOR).unwrap())
    });
    group.bench_function(BenchmarkId::new("index", "star_path"), |b| {
        b.iter(|| fdb.query(CHANG_STAR).unwrap())
    });
    group.bench_function(BenchmarkId::new("database", "fixed_path"), |b| {
        b.iter(|| run_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).unwrap())
    });
    group.bench_function(BenchmarkId::new("database", "star_path"), |b| {
        b.iter(|| run_baseline(&corpus, &schema, CHANG_STAR, BaselineMode::FullLoad).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
