//! E12 — the query server under closed-loop HTTP load
//!
//! Thin `cargo bench` wrapper over the shared experiment suite — the
//! `harness` binary runs the same code and adds JSON reporting.

fn main() {
    let report = qof_bench::experiments::run("e12", qof_bench::experiments::Scale::Full)
        .expect("known experiment id");
    eprintln!("[{}] finished in {:.3}s", report.id, report.wall_secs);
}
