//! E8 — Theorem 3.6: the optimization algorithm is polynomial in the
//! expression size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_core::{optimize, Direction, InclusionExpr, Rig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_optimizer_scaling");
    for n in [4usize, 8, 16, 32, 64] {
        let mut rig = Rig::new();
        let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        for w in names.windows(2) {
            rig.add_edge(&w[0], &w[1]);
        }
        for i in (0..n.saturating_sub(3)).step_by(3) {
            rig.add_edge(&names[i], &names[i + 3]);
        }
        let e = InclusionExpr::all_direct(Direction::Including, names, None);
        group.bench_with_input(BenchmarkId::new("optimize", n), &n, |b, _| {
            b.iter(|| optimize(&e, &rig))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
