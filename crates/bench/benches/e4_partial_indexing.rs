//! E4 — partial indexing (§6): end-to-end query cost under shrinking region
//! indexes; candidates grow, answers stay identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_full, bibtex_partial, CHANG_AUTHOR};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_partial_indexing");
    group.sample_size(20);
    let n = 3200;
    let full = bibtex_full(n);
    group.bench_function(BenchmarkId::new("index", "full"), |b| {
        b.iter(|| full.query(CHANG_AUTHOR).unwrap())
    });
    for (label, names) in [
        ("ref_auth_last", vec!["Reference", "Authors", "Last_Name"]),
        ("ref_last", vec!["Reference", "Last_Name"]),
        ("ref_only", vec!["Reference"]),
    ] {
        let fdb = bibtex_partial(n, &names);
        group.bench_function(BenchmarkId::new("index", label), |b| {
            b.iter(|| fdb.query(CHANG_AUTHOR).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
