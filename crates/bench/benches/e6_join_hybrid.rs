//! E6 — §5.2: attribute comparisons. The index locates the operand regions
//! and only their contents are joined; the baseline loads everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_corpus, bibtex_full, EDITOR_IS_AUTHOR};
use qof_core::baseline::{run_baseline, BaselineMode};
use qof_corpus::bibtex;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_join_hybrid");
    group.sample_size(20);
    for n in [200usize, 800, 3200] {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        group.bench_with_input(BenchmarkId::new("hybrid", n), &n, |b, _| {
            b.iter(|| fdb.query(EDITOR_IS_AUTHOR).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("database", n), &n, |b, _| {
            b.iter(|| {
                run_baseline(&corpus, &schema, EDITOR_IS_AUTHOR, BaselineMode::FullLoad).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
