//! E3 — the cost of direct inclusion: `⊃` vs the forest-based `⊃d` vs the
//! paper's layered while-program (§3.1), over increasingly nested documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::sgml_full;
use qof_pat::{direct_including, direct_including_layered};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_direct_inclusion");
    for depth in [2usize, 4, 6, 8] {
        let fdb = sgml_full(depth, 4);
        let sections = fdb.instance().get("Section").unwrap().clone();
        let heads = fdb.instance().get("Head").unwrap().clone();
        let universe = fdb.instance().universe();
        let forest = fdb.instance().build_forest();
        group.bench_with_input(BenchmarkId::new("plain_inclusion", depth), &depth, |b, _| {
            b.iter(|| sections.including(&heads))
        });
        group.bench_with_input(BenchmarkId::new("direct_forest", depth), &depth, |b, _| {
            b.iter(|| direct_including(&sections, &heads, &forest))
        });
        group.bench_with_input(BenchmarkId::new("direct_layered", depth), &depth, |b, _| {
            b.iter(|| direct_including_layered(&sections, &heads, &universe))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
