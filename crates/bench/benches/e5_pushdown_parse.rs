//! E5 — §6.2: pushing the query into the parsing of candidate regions vs
//! building full objects.

use criterion::{criterion_group, criterion_main, Criterion};
use qof_bench::bibtex_partial;
use qof_corpus::bibtex;
use qof_db::Database;
use qof_grammar::{build_value, build_value_filtered, Parser, PathFilter};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_pushdown_parse");
    group.sample_size(20);
    let fdb = bibtex_partial(1600, &["Reference", "Last_Name"]);
    let refs = fdb.instance().get("Reference").unwrap().clone();
    let schema = bibtex::schema();
    let sym = schema.grammar.symbol("Reference").unwrap();
    let filter = PathFilter::from_paths(&[vec![
        "Authors".to_string(),
        "Name".to_string(),
        "Last_Name".to_string(),
    ]]);
    let text = fdb.corpus().text().to_owned();
    group.bench_function("full_build", |b| {
        b.iter(|| {
            let mut db = Database::new();
            let parser = Parser::new(&schema.grammar, &text);
            for region in refs.iter() {
                let tree = parser.parse_symbol(sym, region.span()).unwrap();
                build_value(&tree, &schema.grammar, &text, &mut db);
            }
            db.stats().value_nodes
        })
    });
    group.bench_function("pushdown_build", |b| {
        b.iter(|| {
            let mut db = Database::new();
            let parser = Parser::new(&schema.grammar, &text);
            for region in refs.iter() {
                let tree = parser.parse_symbol(sym, region.span()).unwrap();
                build_value_filtered(&tree, &schema.grammar, &text, &mut db, &filter);
            }
            db.stats().value_nodes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
