//! E2 — index evaluation vs the standard-database pipeline (§1's headline
//! claim: "some queries can be evaluated significantly faster than in
//! standard database implementations").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_corpus, bibtex_full, CHANG_AUTHOR};
use qof_core::baseline::{run_baseline, BaselineMode};
use qof_corpus::bibtex;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_vs_database");
    group.sample_size(20);
    for n in [200usize, 800, 3200] {
        let corpus = bibtex_corpus(n);
        let schema = bibtex::schema();
        let fdb = bibtex_full(n);
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| fdb.query(CHANG_AUTHOR).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("db_full_load", n), &n, |b, _| {
            b.iter(|| run_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::FullLoad).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("db_reduced_load", n), &n, |b, _| {
            b.iter(|| {
                run_baseline(&corpus, &schema, CHANG_AUTHOR, BaselineMode::ReducedLoad).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
