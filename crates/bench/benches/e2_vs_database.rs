//! E2 — index evaluation vs the standard-database pipeline (§1's headline claim)
//!
//! Thin `cargo bench` wrapper over the shared experiment suite — the
//! `harness` binary runs the same code and adds JSON reporting.

fn main() {
    let report = qof_bench::experiments::run("e2", qof_bench::experiments::Scale::Full)
        .expect("known experiment id");
    eprintln!("[{}] finished in {:.3}s", report.id, report.wall_secs);
}
