//! E1 — optimized vs unoptimized inclusion expression (§3.2's e1 vs e2).
//! The paper's headline: the rewritten expression "can be evaluated more
//! efficiently" because it has fewer operations and replaces `⊃d` by `⊃`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qof_bench::{bibtex_full, core::optimize, core::Direction, core::InclusionExpr, core::SelectKind};
use qof_pat::Engine;
use qof_text::{Tokenizer, WordIndex};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_optimizer_effect");
    for n in [200usize, 800, 3200] {
        let fdb = bibtex_full(n);
        let words = WordIndex::build(fdb.corpus(), &Tokenizer::new());
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            vec!["Reference".into(), "Authors".into(), "Name".into(), "Last_Name".into()],
            Some((SelectKind::Eq, "Chang".into())),
        );
        let e2 = optimize(&e1, fdb.full_rig()).expr;
        let (x1, x2) = (e1.to_region_expr(), e2.to_region_expr());
        group.bench_with_input(BenchmarkId::new("e1_all_direct", n), &n, |b, _| {
            let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
            b.iter(|| engine.eval(&x1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("e2_optimized", n), &n, |b, _| {
            let engine = Engine::new(fdb.corpus(), &words, fdb.instance());
            b.iter(|| engine.eval(&x2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
