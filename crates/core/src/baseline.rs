//! The "standard database implementation" baseline the paper compares
//! against (§4.1): *"parse the file using the structuring schema, construct
//! the objects/tuples, and load them into the database, and then evaluate
//! the query on the database. This technique will obviously lead to scanning
//! and parsing the whole file."*
//!
//! Two variants are provided:
//!
//! * [`BaselineMode::FullLoad`] — the naive pipeline: build every object.
//! * [`BaselineMode::ReducedLoad`] — the [ACM93] optimization the paper
//!   cites: the query is pushed into loading so only objects on needed
//!   paths are constructed; the whole file is still scanned and parsed.

use qof_db::{Database, PathCost, Value};
use qof_grammar::{build_value_filtered, ParseStats, Parser, PathFilter, StructuringSchema};
use qof_text::Corpus;

use crate::plan::PlanError;
use crate::residual::{
    compile_cond, compile_steps, eval_pair, eval_single, path_values, CompiledCond, CompiledPath,
};
use crate::translate::{filter_paths, resolve_path};
use crate::{parse_query, Cond, Projection, Query, QueryError, RightHand};

/// Which baseline pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Parse the whole corpus and build every object.
    FullLoad,
    /// Parse the whole corpus but build only objects on query paths.
    ReducedLoad,
}

/// Cost summary of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Parsing work (always the whole corpus).
    pub parse: ParseStats,
    /// Objects and value nodes constructed.
    pub db: qof_db::DbStats,
    /// Path-traversal work during predicate evaluation.
    pub path: PathCost,
    /// Extent size scanned.
    pub scanned_objects: usize,
    /// Result count.
    pub results: usize,
}

/// The result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Result values (objects or projected atoms).
    pub values: Vec<Value>,
    /// The loaded database.
    pub db: Database,
    /// Cost counters.
    pub stats: BaselineStats,
}

/// Runs a query through the standard-database pipeline.
pub fn run_baseline(
    corpus: &Corpus,
    schema: &StructuringSchema,
    src: &str,
    mode: BaselineMode,
) -> Result<BaselineResult, QueryError> {
    let q = parse_query(src)?;
    run_baseline_ast(corpus, schema, &q, mode)
}

/// Runs an already-parsed query through the standard-database pipeline.
pub fn run_baseline_ast(
    corpus: &Corpus,
    schema: &StructuringSchema,
    q: &Query,
    mode: BaselineMode,
) -> Result<BaselineResult, QueryError> {
    if q.ranges.len() > 2 {
        return Err(QueryError::Plan("at most two range variables".into()));
    }
    // The push-down filter for ReducedLoad: every path the query mentions.
    let filter = match mode {
        BaselineMode::FullLoad => PathFilter::all(),
        BaselineMode::ReducedLoad => reduced_filter(schema, q)?,
    };

    // Load phase: parse every file, build the (possibly filtered) values of
    // the view symbol's occurrences.
    let mut db = Database::new();
    let parser = Parser::new(&schema.grammar, corpus.text());
    // All views in this query share one load when they coincide.
    let mut extents: Vec<(String, Vec<Value>)> = Vec::new();
    for (view, _) in &q.ranges {
        if extents.iter().any(|(v, _)| v == view) {
            continue;
        }
        extents.push((view.clone(), Vec::new()));
    }
    for file in corpus.files() {
        let tree = parser.parse_root(file.span.clone()).map_err(QueryError::CandidateParse)?;
        // Collect per-view occurrence nodes.
        for (view, values) in &mut extents {
            let sym = schema
                .view_symbol(view)
                .ok_or_else(|| QueryError::Plan(format!("unknown view `{view}`")))?;
            let mut nodes = Vec::new();
            tree.walk(&mut |n| {
                if n.symbol == sym {
                    nodes.push(n.clone());
                }
            });
            for node in nodes {
                values.push(build_value_filtered(
                    &node,
                    &schema.grammar,
                    corpus.text(),
                    &mut db,
                    &filter,
                ));
            }
        }
    }

    let mut stats = BaselineStats {
        parse: parser.stats(),
        scanned_objects: extents.iter().map(|(_, v)| v.len()).sum(),
        ..BaselineStats::default()
    };

    // Evaluate.
    let extent_of = |var: &str| -> Option<&[Value]> {
        let view = q.view_of(var)?;
        extents.iter().find(|(v, _)| v == view).map(|(_, vals)| vals.as_slice())
    };

    // Compile the condition and projection paths grammar-aware.
    let view_symbol_of = |var: &str| -> Option<String> {
        q.view_of(var).and_then(|view| schema.view_symbol_name(view)).map(str::to_owned)
    };
    let compiled_where: Option<CompiledCond> = match &q.where_ {
        None => None,
        Some(c) => Some(
            compile_cond(&schema.grammar, &view_symbol_of, c)
                .map_err(|e| QueryError::Plan(e.to_string()))?,
        ),
    };
    let proj_steps: Option<CompiledPath> = match &q.select {
        Projection::Var(_) => None,
        Projection::Path(p) => Some(
            compile_steps(
                &schema.grammar,
                &view_symbol_of(&p.var)
                    .ok_or_else(|| QueryError::Plan(format!("unknown variable `{}`", p.var)))?,
                &p.steps,
            )
            .map_err(|e| QueryError::Plan(e.to_string()))?,
        ),
    };

    let proj_var = q.projected_var();
    let mut values: Vec<Value> = Vec::new();
    let mut results = 0usize;
    match q.ranges.len() {
        1 => {
            let var = &q.ranges[0].1;
            let extent = extent_of(var).unwrap_or(&[]);
            for v in extent {
                let keep = match &compiled_where {
                    None => true,
                    Some(c) => eval_single(&db, var, v, c, &mut stats.path),
                };
                if keep {
                    results += 1;
                    project(&db, v, &q.select, &proj_steps, &mut values, &mut stats.path);
                }
            }
        }
        2 => {
            // Nested evaluation with the cross-var equality as the join.
            let (v1, v2) = (&q.ranges[0].1, &q.ranges[1].1);
            let e1: Vec<Value> = extent_of(v1).unwrap_or(&[]).to_vec();
            let e2: Vec<Value> = extent_of(v2).unwrap_or(&[]).to_vec();
            let Some(w) = &compiled_where else {
                return Err(QueryError::Plan(
                    "two range variables require a join condition".into(),
                ));
            };
            // Collect matching bindings first; SELECT returns a set, so the
            // projected variable's bindings are deduplicated (an object may
            // participate in several join pairs).
            let mut matched: Vec<&Value> = Vec::new();
            for a in &e1 {
                for b in &e2 {
                    if eval_pair(&db, v1, a, v2, b, w, &mut stats.path) {
                        results += 1;
                        matched.push(if proj_var == *v1 { a } else { b });
                    }
                }
            }
            matched.sort_unstable();
            matched.dedup_by(|x, y| x == y);
            for m in matched {
                project(&db, m, &q.select, &proj_steps, &mut values, &mut stats.path);
            }
        }
        _ => return Err(QueryError::Plan("empty FROM clause".into())),
    }
    if matches!(q.select, Projection::Path(_)) {
        values.sort();
        values.dedup();
    }

    stats.db = db.stats();
    stats.results = results;
    Ok(BaselineResult { values, db, stats })
}

fn project(
    db: &Database,
    v: &Value,
    select: &Projection,
    steps: &Option<CompiledPath>,
    out: &mut Vec<Value>,
    cost: &mut PathCost,
) {
    match select {
        Projection::Var(_) => match v {
            Value::Ref(oid) => out.push(db.deref(*oid).cloned().unwrap_or_else(|| v.clone())),
            other => out.push(other.clone()),
        },
        Projection::Path(_) => {
            if let Some(paths) = steps {
                for hit in path_values(db, v, paths, cost) {
                    out.push(hit.clone());
                }
            }
        }
    }
}

/// Builds the `ReducedLoad` filter from every path in the query.
fn reduced_filter(schema: &StructuringSchema, q: &Query) -> Result<PathFilter, PlanError> {
    let mut paths: Vec<Vec<String>> = Vec::new();
    let mut add_path = |var: &str, steps: &[crate::QStep]| -> Result<(), PlanError> {
        let view = q
            .view_of(var)
            .ok_or_else(|| PlanError::Unsupported(format!("unknown variable `{var}`")))?;
        let sym =
            schema.view_symbol_name(view).ok_or_else(|| PlanError::UnknownView(view.to_owned()))?;
        let spec = resolve_path(&schema.grammar, sym, steps)?;
        paths.extend(filter_paths(&spec));
        Ok(())
    };
    type AddPath<'a> = dyn FnMut(&str, &[crate::QStep]) -> Result<(), PlanError> + 'a;
    fn walk(c: &Cond, add: &mut AddPath<'_>) -> Result<(), PlanError> {
        match c {
            Cond::Eq(p, rhs) => {
                add(&p.var, &p.steps)?;
                if let RightHand::Path(qp) = rhs {
                    add(&qp.var, &qp.steps)?;
                }
                Ok(())
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk(a, add)?;
                walk(b, add)
            }
            Cond::Not(a) => walk(a, add),
        }
    }
    if let Some(w) = &q.where_ {
        walk(w, &mut add_path)?;
    }
    match &q.select {
        Projection::Var(_) => return Ok(PathFilter::all()),
        Projection::Path(p) => add_path(&p.var, &p.steps)?,
    }
    Ok(PathFilter::from_paths(&paths))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Baseline correctness is exercised end-to-end in the integration
    // tests, which compare it against the index executor and the corpus
    // ground truths. Here: the filter construction only.
    #[test]
    fn reduced_filter_keeps_query_paths() {
        let schema = test_schema();
        let q = parse_query("SELECT r.Key FROM Entries r WHERE r.Names.Name = \"chang\"").unwrap();
        let f = reduced_filter(&schema, &q).unwrap();
        assert!(f.keeps("Names"));
        assert!(f.keeps("Key"));
        assert!(!f.keeps("Other"));
    }

    #[test]
    fn select_star_keeps_everything() {
        let schema = test_schema();
        let q = parse_query("SELECT r FROM Entries r").unwrap();
        let f = reduced_filter(&schema, &q).unwrap();
        assert!(f.keeps("Anything"));
    }

    fn test_schema() -> StructuringSchema {
        use qof_grammar::{lit, nt, Grammar, TokenPattern, ValueBuilder};
        let g = Grammar::builder("S")
            .repeat("S", "Entry", None, ValueBuilder::Set)
            .seq(
                "Entry",
                [lit("["), nt("Key"), lit(":"), nt("Names"), lit("|"), nt("Other"), lit("]")],
                ValueBuilder::ObjectAuto("Entry".into()),
            )
            .token("Key", TokenPattern::Word, ValueBuilder::Atom)
            .repeat("Names", "Name", Some(","), ValueBuilder::Set)
            .token("Name", TokenPattern::Word, ValueBuilder::Atom)
            .token("Other", TokenPattern::Word, ValueBuilder::Atom)
            .build()
            .unwrap();
        StructuringSchema::new(g).with_view("Entries", "Entry")
    }
}
