//! The executor: builds a [`FileDatabase`] over a corpus (parse once,
//! extract the configured indices — the service the text system provides),
//! then runs planned queries: index phase → optional content join →
//! candidate parsing with push-down → residual filtering → projection.

use std::collections::HashMap;

use qof_db::{Database, DbStats, Value};
use qof_grammar::{
    build_value_filtered, extract_regions, IndexSpec, ParseError, ParseStats, Parser, PathFilter,
    StructuringSchema,
};
use qof_pat::{Engine, EvalError, EvalStats, Instance, Region, RegionSet};
use qof_text::{Corpus, SuffixArray, Tokenizer, WordIndex};

use qof_db::PathCost;

use crate::plan::{CondNode, Plan, PlanError, Planner, ProjPlan};
use crate::residual::{eval_single, path_values};
use crate::{parse_query, Query, QueryParseError, Rig};

/// Errors while building a [`FileDatabase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A file failed to parse under the structuring schema.
    Parse {
        /// Name of the offending file.
        file: String,
        /// The parser error.
        error: ParseError,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse { file, error } => write!(f, "cannot index `{file}`: {error}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors while answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text failed to parse.
    Syntax(QueryParseError),
    /// Planning failed.
    Plan(String),
    /// Region-expression evaluation failed.
    Eval(EvalError),
    /// A candidate region failed to parse (index/file out of sync).
    CandidateParse(ParseError),
    /// An internal invariant broke between planning and execution. Always
    /// a bug in the engine, never in the query — reported as an error
    /// instead of panicking so a bad query can never take the process down.
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Syntax(e) => write!(f, "{e}"),
            QueryError::Plan(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
            QueryError::CandidateParse(e) => write!(f, "candidate region: {e}"),
            QueryError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryParseError> for QueryError {
    fn from(e: QueryParseError) -> Self {
        QueryError::Syntax(e)
    }
}

impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::Plan(e.to_string())
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        QueryError::Eval(e)
    }
}

/// Cost summary of one query run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Region-algebra work.
    pub eval: EvalStats,
    /// Parsing work (candidates + result materialization).
    pub parse: ParseStats,
    /// Database construction work.
    pub db: DbStats,
    /// Text bytes read for content joins and index-side projections.
    pub content_bytes: u64,
    /// Candidate view regions considered.
    pub candidates: usize,
    /// Result count.
    pub results: usize,
    /// Whether the index phase alone computed the exact answer (§6.3).
    pub exact_index: bool,
}

impl RunStats {
    /// Total file bytes touched (parse + content reads).
    pub fn bytes_touched(&self) -> u64 {
        self.parse.bytes_scanned + self.content_bytes
    }
}

/// The result of a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched regions of the projected variable.
    pub regions: RegionSet,
    /// Materialized values (objects for `SELECT r`, atoms for `SELECT r.p`).
    pub values: Vec<Value>,
    /// The object database holding any materialized objects.
    pub db: Database,
    /// EXPLAIN text of the executed plan.
    pub explain: String,
    /// Cost counters.
    pub stats: RunStats,
}

/// A queryable view of a corpus: word index + region indices + schema.
pub struct FileDatabase {
    corpus: Corpus,
    tokenizer: Tokenizer,
    words: WordIndex,
    suffix: Option<SuffixArray>,
    schema: StructuringSchema,
    spec: IndexSpec,
    instance: Instance,
    full_rig: Rig,
    partial_rig: Rig,
}

impl FileDatabase {
    /// Parses every file of the corpus with the schema's grammar, extracts
    /// the regions requested by `spec`, and builds the word index.
    pub fn build(
        corpus: Corpus,
        schema: StructuringSchema,
        spec: IndexSpec,
    ) -> Result<Self, BuildError> {
        let tokenizer = Tokenizer::new();
        let mut instance = Instance::new();
        {
            let parser = Parser::new(&schema.grammar, corpus.text());
            for file in corpus.files() {
                let tree = parser
                    .parse_root(file.span.clone())
                    .map_err(|error| BuildError::Parse { file: file.name.clone(), error })?;
                let file_instance = extract_regions(&tree, &schema.grammar, &spec);
                for (name, set) in file_instance.iter() {
                    instance.merge(name, set.clone());
                }
            }
        }
        let words = match spec.word_scope() {
            None => WordIndex::build(&corpus, &tokenizer),
            Some(scope) => {
                // §7 selective word indexing: only occurrences inside the
                // scoped regions are indexed.
                let spans = instance
                    .get(scope)
                    .map(|set| set.iter().map(qof_pat::Region::span).collect())
                    .unwrap_or_default();
                qof_text::WordIndexBuilder::new(&tokenizer).scoped_to(spans).build(&corpus)
            }
        };
        let full_rig = Rig::from_grammar(&schema.grammar);
        let indexed: std::collections::BTreeSet<String> =
            instance.names().filter(|n| !n.contains('.')).map(str::to_owned).collect();
        let partial_rig = full_rig.partial(&indexed);
        Ok(Self {
            corpus,
            tokenizer,
            words,
            suffix: None,
            schema,
            spec,
            instance,
            full_rig,
            partial_rig,
        })
    }

    /// Like [`FileDatabase::build`], but parses the corpus's files on
    /// `threads` worker threads (region extraction dominates indexing time
    /// on multi-file corpora). Produces a database identical to the
    /// sequential build.
    pub fn build_parallel(
        corpus: Corpus,
        schema: StructuringSchema,
        spec: IndexSpec,
        threads: usize,
    ) -> Result<Self, BuildError> {
        let threads = threads.max(1);
        let spans: Vec<(String, qof_text::Span)> =
            corpus.files().iter().map(|f| (f.name.clone(), f.span.clone())).collect();
        // Chunk files round-robin; each worker parses its chunk and returns
        // a partial instance.
        let chunks: Vec<Vec<(String, qof_text::Span)>> = {
            let mut c: Vec<Vec<(String, qof_text::Span)>> = vec![Vec::new(); threads];
            for (i, fs) in spans.into_iter().enumerate() {
                c[i % threads].push(fs);
            }
            c
        };
        let partials: Vec<Result<Instance, BuildError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let schema = &schema;
                    let corpus = &corpus;
                    let spec = &spec;
                    scope.spawn(move || {
                        let parser = Parser::new(&schema.grammar, corpus.text());
                        let mut partial = Instance::new();
                        for (name, span) in chunk {
                            let tree = parser
                                .parse_root(span.clone())
                                .map_err(|error| BuildError::Parse { file: name.clone(), error })?;
                            let fi = extract_regions(&tree, &schema.grammar, spec);
                            for (rname, set) in fi.iter() {
                                partial.merge(rname, set.clone());
                            }
                        }
                        Ok(partial)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker does not panic")).collect()
        });
        let mut instance = Instance::new();
        for partial in partials {
            for (rname, set) in partial?.iter() {
                instance.merge(rname, set.clone());
            }
        }
        let tokenizer = Tokenizer::new();
        let words = WordIndex::build(&corpus, &tokenizer);
        let full_rig = Rig::from_grammar(&schema.grammar);
        let indexed: std::collections::BTreeSet<String> =
            instance.names().filter(|n| !n.contains('.')).map(str::to_owned).collect();
        let partial_rig = full_rig.partial(&indexed);
        Ok(Self {
            corpus,
            tokenizer,
            words,
            suffix: None,
            schema,
            spec,
            instance,
            full_rig,
            partial_rig,
        })
    }

    /// Adds a PAT suffix array (enables prefix search; optional because
    /// construction is the most expensive part of indexing).
    pub fn with_suffix_array(mut self) -> Self {
        self.suffix = Some(SuffixArray::build(&self.corpus, &Tokenizer::new()));
        self
    }

    /// Incrementally indexes another file: appends it to the corpus, parses
    /// it, merges its regions and extends the word index. Existing offsets
    /// stay valid (the new file's span lies past all previous text). The
    /// RIGs depend only on the grammar and are unchanged; a suffix array,
    /// if present, is rebuilt.
    pub fn add_file(&mut self, name: impl Into<String>, contents: &str) -> Result<(), BuildError> {
        let name = name.into();
        // Parse into a scratch copy first so a malformed file leaves the
        // database untouched.
        let mut probe = self.corpus.clone();
        let id = probe.push_file(name.clone(), contents);
        let span = probe.file(id).expect("just pushed").span.clone();
        let file_instance = {
            let parser = Parser::new(&self.schema.grammar, probe.text());
            let tree = parser
                .parse_root(span.clone())
                .map_err(|error| BuildError::Parse { file: name, error })?;
            extract_regions(&tree, &self.schema.grammar, &self.spec)
        };
        self.corpus = probe;
        for (rname, set) in file_instance.iter() {
            self.instance.merge(rname, set.clone());
        }
        self.words.append_span(&self.corpus, &self.tokenizer, span);
        if self.suffix.is_some() {
            self.suffix = Some(SuffixArray::build(&self.corpus, &Tokenizer::new()));
        }
        Ok(())
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The structuring schema.
    pub fn schema(&self) -> &StructuringSchema {
        &self.schema
    }

    /// The region-index instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The word index.
    pub fn word_index(&self) -> &WordIndex {
        &self.words
    }

    /// The index specification this database was built with.
    pub fn index_spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The RIG of the fully indexed grammar (§4.2).
    pub fn full_rig(&self) -> &Rig {
        &self.full_rig
    }

    /// The RIG of the indexed subset (§6.1).
    pub fn partial_rig(&self) -> &Rig {
        &self.partial_rig
    }

    fn planner(&self) -> Planner<'_> {
        Planner {
            schema: &self.schema,
            instance: &self.instance,
            full_rig: &self.full_rig,
            partial_rig: &self.partial_rig,
            full_indexing: self.spec.is_full(),
        }
    }

    /// Statically checks a query against this database's schema, RIG and
    /// index spec — **without executing anything**. Returns the structured
    /// diagnostics of the [`analyze`](crate::analyze) subsystem: syntax
    /// errors, unknown views/attributes with suggestions, type mismatches,
    /// Proposition 3.3 trivially-empty paths with the witnessing RIG
    /// evidence, §5.3 star-path suggestions, and §6.3 exactness losses of
    /// the partial index with the ambiguous edge named.
    pub fn check(&self, src: &str) -> Vec<crate::analyze::Diagnostic> {
        crate::analyze::check_query(&self.schema, &self.full_rig, Some(&self.planner()), src)
    }

    /// Plans a query without running it.
    pub fn plan(&self, src: &str) -> Result<Plan, QueryError> {
        let q = parse_query(src)?;
        Ok(self.planner().plan(&q)?)
    }

    /// EXPLAIN: the plan description.
    pub fn explain(&self, src: &str) -> Result<String, QueryError> {
        Ok(self.plan(src)?.describe())
    }

    /// Parses, plans and runs a query.
    pub fn query(&self, src: &str) -> Result<QueryResult, QueryError> {
        let q = parse_query(src)?;
        self.query_ast(&q)
    }

    /// Runs an already-parsed query.
    pub fn query_ast(&self, q: &Query) -> Result<QueryResult, QueryError> {
        let plan = self.planner().plan(q)?;
        self.execute(q, &plan)
    }

    /// Runs only the index phase of a query: the candidate regions of the
    /// projected variable and whether they are exact. No file text is
    /// parsed — this is the measure used by the index-vs-database
    /// experiments.
    pub fn query_regions(&self, src: &str) -> Result<(RegionSet, bool, RunStats), QueryError> {
        let q = parse_query(src)?;
        let plan = self.planner().plan(&q)?;
        let engine = self.engine();
        let mut states = Vec::new();
        for vp in &plan.vars {
            states.push(self.var_candidates(&engine, vp)?);
        }
        let idx = plan.vars.iter().position(|vp| vp.var == q.projected_var()).unwrap_or(0);
        let (regions, exact) = states.swap_remove(idx);
        let stats = RunStats {
            eval: engine.stats(),
            candidates: regions.len(),
            results: regions.len(),
            exact_index: exact,
            ..RunStats::default()
        };
        Ok((regions, exact, stats))
    }

    fn engine(&self) -> Engine<'_> {
        let e = Engine::new(&self.corpus, &self.words, &self.instance);
        match &self.suffix {
            Some(sa) => e.with_suffix_array(sa),
            None => e,
        }
    }

    fn view_regions(&self, symbol: &str) -> RegionSet {
        self.instance.get(symbol).cloned().unwrap_or_default()
    }

    /// Evaluates a planned condition to `(candidate view regions, exact)`.
    fn eval_cond(
        &self,
        engine: &Engine<'_>,
        node: &CondNode,
        view: &RegionSet,
        content_bytes: &mut u64,
    ) -> Result<(RegionSet, bool), QueryError> {
        match node {
            CondNode::IndexOnly { expr, exact, .. } => {
                Ok((engine.eval(expr)?.intersect(view), *exact))
            }
            CondNode::ContentCompare { left, right, exact, .. } => {
                let l = engine.eval(left)?;
                let r = engine.eval(right)?;
                if !exact {
                    // The located sets only approximate the attribute
                    // regions, so comparing their contents is not
                    // superset-safe. Candidates: views containing at least
                    // one located region from each side; the residual parse
                    // phase decides.
                    let both = view.including(&l).intersect(&view.including(&r));
                    return Ok((both, false));
                }
                let lg = group_by_container(view, &l);
                let rg = group_by_container(view, &r);
                let mut l_strings: HashMap<usize, Vec<&str>> = HashMap::new();
                for (ci, item) in lg {
                    *content_bytes += u64::from(item.len());
                    l_strings.entry(ci).or_default().push(self.corpus.slice(item.span()));
                }
                let mut hits: Vec<Region> = Vec::new();
                for (ci, item) in rg {
                    *content_bytes += u64::from(item.len());
                    let s = self.corpus.slice(item.span());
                    if l_strings.get(&ci).is_some_and(|ls| ls.contains(&s)) {
                        hits.push(view.as_slice()[ci]);
                    }
                }
                Ok((RegionSet::from_regions(hits), true))
            }
            CondNode::And(a, b) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                let (rb, xb) = self.eval_cond(engine, b, view, content_bytes)?;
                Ok((ra.intersect(&rb), xa && xb))
            }
            CondNode::Or(a, b) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                let (rb, xb) = self.eval_cond(engine, b, view, content_bytes)?;
                Ok((ra.union(&rb), xa && xb))
            }
            CondNode::Not(a) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                if xa {
                    Ok((view.difference(&ra), true))
                } else {
                    // The complement of a superset is not a superset:
                    // fall back to all view regions as candidates.
                    Ok((view.clone(), false))
                }
            }
        }
    }

    fn var_candidates(
        &self,
        engine: &Engine<'_>,
        vp: &crate::plan::VarPlan,
    ) -> Result<(RegionSet, bool), QueryError> {
        let view = self.view_regions(&vp.symbol);
        match &vp.cond {
            None => Ok((view, true)),
            Some(c) => {
                let mut content_bytes = 0;

                self.eval_cond(engine, c, &view, &mut content_bytes)
            }
        }
    }

    fn execute(&self, q: &Query, plan: &Plan) -> Result<QueryResult, QueryError> {
        let engine = self.engine();
        let mut stats = RunStats::default();

        // Phase 1: per-variable candidates through the index.
        struct VarState {
            regions: RegionSet,
            exact: bool,
        }
        let mut states: Vec<VarState> = Vec::new();
        for vp in &plan.vars {
            let view = self.view_regions(&vp.symbol);
            let (regions, exact) = match &vp.cond {
                None => (view, true),
                Some(c) => self.eval_cond(&engine, c, &view, &mut stats.content_bytes)?,
            };
            states.push(VarState { regions, exact });
        }

        // Phase 2: cross-variable content join.
        let mut join_pairs: Option<Vec<(Region, Region)>> = None;
        let mut join_exact = true;
        if let Some(j) = &plan.join {
            let li = join_var_index(plan, &j.left_var)?;
            let ri = join_var_index(plan, &j.right_var)?;
            let l_deep = engine.eval(&j.left)?;
            let r_deep = engine.eval(&j.right)?;
            let lg = group_by_container(&states[li].regions, &l_deep);
            let rg = group_by_container(&states[ri].regions, &r_deep);
            let mut table: HashMap<&str, Vec<usize>> = HashMap::new();
            for (ci, item) in &lg {
                stats.content_bytes += u64::from(item.len());
                table.entry(self.corpus.slice(item.span())).or_default().push(*ci);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (ci, item) in &rg {
                stats.content_bytes += u64::from(item.len());
                if let Some(ls) = table.get(self.corpus.slice(item.span())) {
                    for &l in ls {
                        pairs.push((l, *ci));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let lr = states[li].regions.clone();
            let rr = states[ri].regions.clone();
            let region_pairs: Vec<(Region, Region)> =
                pairs.iter().map(|&(a, b)| (lr.as_slice()[a], rr.as_slice()[b])).collect();
            states[li].regions =
                RegionSet::from_regions(region_pairs.iter().map(|p| p.0).collect());
            states[ri].regions =
                RegionSet::from_regions(region_pairs.iter().map(|p| p.1).collect());
            join_exact = j.exact;
            join_pairs = Some(region_pairs);
        }

        stats.candidates = states.iter().map(|s| s.regions.len()).sum();
        stats.exact_index = states.iter().all(|s| s.exact)
            && join_exact
            && plan.join.is_none() == join_pairs.is_none();

        // Phase 3: decide what must be parsed.
        let mut db = Database::new();
        let parser = Parser::new(&self.schema.grammar, self.corpus.text());
        // objects[var_index]: region -> built value
        let mut objects: Vec<HashMap<Region, Value>> = vec![HashMap::new(); plan.vars.len()];

        let proj_var = q.projected_var();
        let proj_idx = plan.vars.iter().position(|v| v.var == proj_var).unwrap_or(0);
        let index_only_projection =
            matches!(&plan.projection, ProjPlan::Values { chain: Some((_, _, true)), .. });

        for (i, vp) in plan.vars.iter().enumerate() {
            let must_filter = !states[i].exact;
            let join_residual = join_pairs.is_some() && !join_exact;
            let materialize = i == proj_idx && !index_only_projection;
            if !(must_filter || join_residual || materialize) {
                continue;
            }
            let sym = self.schema.grammar.symbol(&vp.symbol).ok_or_else(|| {
                QueryError::Internal(format!(
                    "view symbol `{}` vanished from the grammar",
                    vp.symbol
                ))
            })?;
            // When only materializing, parse with a full filter; when
            // filtering candidates, parse with the push-down filter first.
            let filter =
                if must_filter || join_residual { vp.filter.clone() } else { PathFilter::all() };
            let mut survivors: Vec<Region> = Vec::new();
            for region in &states[i].regions {
                let tree =
                    parser.parse_symbol(sym, region.span()).map_err(QueryError::CandidateParse)?;
                let value = build_value_filtered(
                    &tree,
                    &self.schema.grammar,
                    self.corpus.text(),
                    &mut db,
                    &filter,
                );
                let keep = match (&vp.residual, must_filter) {
                    (Some(cond), true) => {
                        let mut cost = PathCost::default();
                        eval_single(&db, &vp.var, &value, cond, &mut cost)
                    }
                    _ => true,
                };
                if keep {
                    survivors.push(*region);
                    objects[i].insert(*region, value);
                }
            }
            states[i].regions = RegionSet::from_regions(survivors);
            states[i].exact = true;
        }

        // Phase 3b: join residual on parsed pairs.
        if let (Some(pairs), false) = (&join_pairs, join_exact) {
            if let Some(j) = &plan.join {
                let li = join_var_index(plan, &j.left_var)?;
                let ri = join_var_index(plan, &j.right_var)?;
                let mut keep: Vec<(Region, Region)> = Vec::new();
                for (lr, rr) in pairs {
                    let (Some(lv), Some(rv)) = (objects[li].get(lr), objects[ri].get(rr)) else {
                        continue;
                    };
                    let mut cost = PathCost::default();
                    let ls: Vec<&Value> = path_values(&db, lv, &j.left_steps, &mut cost);
                    let rs: Vec<&Value> = path_values(&db, rv, &j.right_steps, &mut cost);
                    if ls.iter().any(|a| rs.iter().any(|b| a == b)) {
                        keep.push((*lr, *rr));
                    }
                }
                states[li].regions = RegionSet::from_regions(keep.iter().map(|p| p.0).collect());
                states[ri].regions = RegionSet::from_regions(keep.iter().map(|p| p.1).collect());
                join_pairs = Some(keep);
            }
        }
        let _ = &join_pairs;

        // Phase 4: projection.
        let result_regions = states[proj_idx].regions.clone();
        let mut values: Vec<Value> = Vec::new();
        match &plan.projection {
            ProjPlan::Objects { .. } => {
                for region in &result_regions {
                    if let Some(v) = objects[proj_idx].get(region) {
                        values.push(deref_top(&db, v));
                    }
                }
            }
            ProjPlan::Values { steps, chain, .. } => {
                if index_only_projection {
                    // Read the projected attribute regions directly.
                    let (expr, _, _) = chain.as_ref().ok_or_else(|| {
                        QueryError::Internal("index-only projection lost its chain".into())
                    })?;
                    let deep = engine.eval(expr)?;
                    for (_, item) in group_by_container(&result_regions, &deep) {
                        stats.content_bytes += u64::from(item.len());
                        values.push(Value::Str(self.corpus.slice(item.span()).to_owned()));
                    }
                    values.sort();
                    values.dedup();
                } else {
                    let mut cost = PathCost::default();
                    for region in &result_regions {
                        if let Some(v) = objects[proj_idx].get(region) {
                            for hit in path_values(&db, v, steps, &mut cost) {
                                values.push(hit.clone());
                            }
                        }
                    }
                    values.sort();
                    values.dedup();
                }
            }
        }

        stats.eval = engine.stats();
        stats.parse = parser.stats();
        stats.db = db.stats();
        stats.results = result_regions.len();
        Ok(QueryResult { regions: result_regions, values, db, explain: plan.describe(), stats })
    }
}

/// Position of a join variable among the plan's range variables.
fn join_var_index(plan: &Plan, var: &str) -> Result<usize, QueryError> {
    plan.vars
        .iter()
        .position(|v| v.var == var)
        .ok_or_else(|| QueryError::Internal(format!("join variable `{var}` missing from the plan")))
}

/// Dereferences a top-level object reference into its stored value.
fn deref_top(db: &Database, v: &Value) -> Value {
    match v {
        Value::Ref(oid) => db.deref(*oid).cloned().unwrap_or_else(|| v.clone()),
        other => other.clone(),
    }
}

/// Pairs `(container index, item)` for every item lying inside a container.
/// Containers may nest (self-nested views); an item maps to each container
/// that includes it.
fn group_by_container(containers: &RegionSet, items: &RegionSet) -> Vec<(usize, Region)> {
    let mut out = Vec::new();
    let cs = containers.as_slice();
    let mut stack: Vec<usize> = Vec::new();
    let mut ci = 0usize;
    for item in items {
        while ci < cs.len() && cs[ci] <= *item {
            while let Some(&top) = stack.last() {
                if cs[top].end <= cs[ci].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(ci);
            ci += 1;
        }
        while let Some(&top) = stack.last() {
            if cs[top].end <= item.start {
                stack.pop();
            } else {
                break;
            }
        }
        for &c in &stack {
            if cs[c].includes(item) {
                out.push((c, *item));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(pairs: &[(u32, u32)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn group_by_container_disjoint() {
        let containers = rs(&[(0, 10), (20, 30), (40, 50)]);
        let items = rs(&[(2, 4), (22, 24), (26, 28), (60, 62)]);
        let got = group_by_container(&containers, &items);
        assert_eq!(
            got,
            vec![(0, Region::new(2, 4)), (1, Region::new(22, 24)), (1, Region::new(26, 28))]
        );
    }

    #[test]
    fn group_by_container_nested_containers() {
        // Self-nested views: an item belongs to every enclosing container.
        let containers = rs(&[(0, 100), (10, 50)]);
        let items = rs(&[(20, 25), (60, 65)]);
        let got = group_by_container(&containers, &items);
        let outer = containers.as_slice().iter().position(|r| *r == Region::new(0, 100)).unwrap();
        let inner = containers.as_slice().iter().position(|r| *r == Region::new(10, 50)).unwrap();
        assert!(got.contains(&(outer, Region::new(20, 25))));
        assert!(got.contains(&(inner, Region::new(20, 25))));
        assert!(got.contains(&(outer, Region::new(60, 65))));
        assert!(!got.contains(&(inner, Region::new(60, 65))));
    }

    #[test]
    fn group_by_container_boundary() {
        let containers = rs(&[(0, 10)]);
        // Touching the end is included; crossing is not.
        let items = rs(&[(5, 10), (8, 12)]);
        let got = group_by_container(&containers, &items);
        assert_eq!(got, vec![(0, Region::new(5, 10))]);
    }

    #[test]
    fn deref_top_resolves_refs() {
        let mut db = Database::new();
        let oid = db.new_object("C", Value::str("payload"));
        assert_eq!(deref_top(&db, &Value::Ref(oid)).as_str(), Some("payload"));
        assert_eq!(deref_top(&db, &Value::str("plain")).as_str(), Some("plain"));
    }

    #[test]
    fn runstats_bytes_touched_sums() {
        let mut s = RunStats::default();
        s.parse.bytes_scanned = 10;
        s.content_bytes = 5;
        assert_eq!(s.bytes_touched(), 15);
    }
}
