//! The executor: builds a [`FileDatabase`] over a corpus (parse once,
//! extract the configured indices — the service the text system provides),
//! then runs planned queries: index phase → optional content join →
//! candidate parsing with push-down → residual filtering → projection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qof_db::{Database, DbStats, Value};
use qof_grammar::{
    build_value_filtered, extract_regions, IndexSpec, ParseError, ParseStats, Parser, PathFilter,
    StructuringSchema,
};
use qof_pat::{
    CacheStats, Engine, EvalError, EvalStats, Instance, MetricsRegistry, OpTrace, Region,
    RegionExpr, RegionSet, SubexprCache, TraceSink, WorkloadObs, WorkloadTable,
};
use qof_text::{CompressedWordIndex, Corpus, Span, SuffixArray, Tokenizer, WordIndex, WordLookup};

use qof_db::PathCost;

use crate::backend::IndexBackend;
use crate::cost::{PlanCache, PlanCacheStats, StatsStore};
use crate::plan::{CondNode, Plan, PlanError, Planner, ProjPlan};
use crate::qofx::{self, QofxError};
use crate::residual::{eval_single, path_values};
use crate::trace::{CardEstimate, ExecTrace, PhaseTrace, QueryTrace, ShardTrace};
use crate::{parse_query, Query, QueryParseError, Rig};

/// Errors while building a [`FileDatabase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A file failed to parse under the structuring schema.
    Parse {
        /// Name of the offending file.
        file: String,
        /// The parser error.
        error: ParseError,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse { file, error } => write!(f, "cannot index `{file}`: {error}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors while answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text failed to parse.
    Syntax(QueryParseError),
    /// Planning failed.
    Plan(String),
    /// Region-expression evaluation failed.
    Eval(EvalError),
    /// A candidate region failed to parse (index/file out of sync).
    CandidateParse(ParseError),
    /// An internal invariant broke between planning and execution. Always
    /// a bug in the engine, never in the query — reported as an error
    /// instead of panicking so a bad query can never take the process down.
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Syntax(e) => write!(f, "{e}"),
            QueryError::Plan(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
            QueryError::CandidateParse(e) => write!(f, "candidate region: {e}"),
            QueryError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryParseError> for QueryError {
    fn from(e: QueryParseError) -> Self {
        QueryError::Syntax(e)
    }
}

impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::Plan(e.to_string())
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        QueryError::Eval(e)
    }
}

/// Cost summary of one query run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Region-algebra work.
    pub eval: EvalStats,
    /// Parsing work (candidates + result materialization).
    pub parse: ParseStats,
    /// Database construction work.
    pub db: DbStats,
    /// Text bytes read for content joins and index-side projections.
    pub content_bytes: u64,
    /// Candidate view regions considered.
    pub candidates: usize,
    /// Result count.
    pub results: usize,
    /// Whether the index phase alone computed the exact answer (§6.3).
    pub exact_index: bool,
}

impl RunStats {
    /// Total file bytes touched (parse + content reads).
    pub fn bytes_touched(&self) -> u64 {
        self.parse.bytes_scanned + self.content_bytes
    }
}

/// Execution knobs for the query path: shard-parallel evaluation and
/// cross-query subexpression caching.
///
/// `threads > 1` evaluates the index phase shard-parallel (the corpus is
/// partitioned on file boundaries, and per-shard results concatenate back
/// losslessly); batched [`FileDatabase::query_many`] calls additionally
/// spread whole queries over the same budget. `cache` shares evaluated
/// subexpressions across queries, shards and batches (§5.2's sharing,
/// engine-wide) until the database is mutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread budget for parallel evaluation (1 = sequential).
    pub threads: usize,
    /// Cache normalized subexpression results across queries.
    pub cache: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self { threads: 1, cache: false }
    }
}

/// Per-variable candidate state after the index phase.
struct VarState {
    regions: RegionSet,
    exact: bool,
}

/// Whether a constant's occurrences stay within single files. Only a phrase
/// containing the `\n` file separator can match across a boundary; every
/// tokenized word is separator-free.
fn constant_shardable(w: &str) -> bool {
    !w.contains('\n')
}

/// Whether evaluating `e` per shard and concatenating reproduces the global
/// result. Holds for the whole algebra except `near` (whose byte gap can
/// bridge two files) and constants containing the file separator.
fn expr_shardable(e: &RegionExpr) -> bool {
    use RegionExpr::*;
    match e {
        Name(_) | Prefix(_) => true,
        Word(w) => constant_shardable(w),
        Union(a, b)
        | Intersect(a, b)
        | Difference(a, b)
        | Including(a, b)
        | IncludedIn(a, b)
        | DirectIncluding(a, b)
        | DirectIncludedIn(a, b) => expr_shardable(a) && expr_shardable(b),
        SelectEq(e, w) | SelectContains(e, w) | SelectCountAtLeast(e, w, _) => {
            expr_shardable(e) && constant_shardable(w)
        }
        Innermost(e) | Outermost(e) => expr_shardable(e),
        NestedExactly { outer, inner, .. } => expr_shardable(outer) && expr_shardable(inner),
        Near { .. } => false,
    }
}

/// Shardability of a planned condition. Content comparisons group located
/// regions by their containing view region, which never crosses a file, so
/// they decompose too.
fn cond_shardable(c: &CondNode) -> bool {
    match c {
        CondNode::IndexOnly { expr, .. } => expr_shardable(expr),
        CondNode::ContentCompare { left, right, .. } => {
            expr_shardable(left) && expr_shardable(right)
        }
        CondNode::And(a, b) | CondNode::Or(a, b) => cond_shardable(a) && cond_shardable(b),
        CondNode::Not(a) => cond_shardable(a),
    }
}

/// The result of a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched regions of the projected variable.
    pub regions: RegionSet,
    /// Materialized values (objects for `SELECT r`, atoms for `SELECT r.p`).
    pub values: Vec<Value>,
    /// The object database holding any materialized objects.
    pub db: Database,
    /// EXPLAIN text of the executed plan.
    pub explain: String,
    /// Cost counters.
    pub stats: RunStats,
}

/// A hook invoked with every completed [`QueryTrace`] — the query server's
/// flight recorder attaches here.
pub type TraceHook = Box<dyn Fn(&QueryTrace) + Send + Sync>;

/// A queryable view of a corpus: word index + region indices + schema.
pub struct FileDatabase {
    corpus: Corpus,
    tokenizer: Tokenizer,
    backend: IndexBackend,
    suffix: Option<SuffixArray>,
    schema: StructuringSchema,
    spec: IndexSpec,
    instance: Instance,
    full_rig: Rig,
    partial_rig: Rig,
    options: ExecOptions,
    cache: SubexprCache,
    stats: StatsStore,
    plan_cache: PlanCache,
    metrics: Arc<MetricsRegistry>,
    query_counter: AtomicU64,
    trace_hook: Option<TraceHook>,
    strict: bool,
    workload: WorkloadTable,
}

/// Builds the word index for `corpus`, honoring the spec's §7 selective
/// word-indexing scope (only occurrences inside the scoped regions are
/// indexed when a scope is set).
fn build_word_index(
    corpus: &Corpus,
    tokenizer: &Tokenizer,
    spec: &IndexSpec,
    instance: &Instance,
) -> WordIndex {
    match spec.word_scope() {
        None => WordIndex::build(corpus, tokenizer),
        Some(scope) => {
            let spans = instance
                .get(scope)
                .map(|set| set.iter().map(qof_pat::Region::span).collect())
                .unwrap_or_default();
            qof_text::WordIndexBuilder::new(tokenizer).scoped_to(spans).build(corpus)
        }
    }
}

impl FileDatabase {
    /// Parses every file of the corpus with the schema's grammar, extracts
    /// the regions requested by `spec`, and builds the word index.
    pub fn build(
        corpus: Corpus,
        schema: StructuringSchema,
        spec: IndexSpec,
    ) -> Result<Self, BuildError> {
        let tokenizer = Tokenizer::new();
        let mut instance = Instance::new();
        {
            let parser = Parser::new(&schema.grammar, corpus.text());
            for file in corpus.files() {
                let tree = parser
                    .parse_root(file.span.clone())
                    .map_err(|error| BuildError::Parse { file: file.name.clone(), error })?;
                let file_instance = extract_regions(&tree, &schema.grammar, &spec);
                for (name, set) in file_instance.iter() {
                    instance.merge(name, set.clone());
                }
            }
        }
        let words = build_word_index(&corpus, &tokenizer, &spec, &instance);
        let full_rig = Rig::from_grammar(&schema.grammar);
        let indexed: std::collections::BTreeSet<String> =
            instance.names().filter(|n| !n.contains('.')).map(str::to_owned).collect();
        let partial_rig = full_rig.partial(&indexed);
        let stats = StatsStore::from_index(&instance, &words, &partial_rig);
        let db = Self {
            corpus,
            tokenizer,
            backend: IndexBackend::Mem(words),
            suffix: None,
            schema,
            spec,
            instance,
            full_rig,
            partial_rig,
            options: ExecOptions::default(),
            cache: SubexprCache::new(),
            stats,
            plan_cache: PlanCache::new(),
            metrics: MetricsRegistry::global_arc(),
            query_counter: AtomicU64::new(0),
            trace_hook: None,
            strict: false,
            workload: WorkloadTable::new(),
        };
        db.publish_index_stats();
        Ok(db)
    }

    /// Like [`FileDatabase::build`], but parses the corpus's files on
    /// `threads` worker threads (region extraction dominates indexing time
    /// on multi-file corpora). Produces a database identical to the
    /// sequential build.
    pub fn build_parallel(
        corpus: Corpus,
        schema: StructuringSchema,
        spec: IndexSpec,
        threads: usize,
    ) -> Result<Self, BuildError> {
        let threads = threads.max(1);
        let spans: Vec<(String, qof_text::Span)> =
            corpus.files().iter().map(|f| (f.name.clone(), f.span.clone())).collect();
        // Chunk files round-robin; each worker parses its chunk and returns
        // a partial instance.
        let chunks: Vec<Vec<(String, qof_text::Span)>> = {
            let mut c: Vec<Vec<(String, qof_text::Span)>> = vec![Vec::new(); threads];
            for (i, fs) in spans.into_iter().enumerate() {
                c[i % threads].push(fs);
            }
            c
        };
        let partials: Vec<Result<Instance, BuildError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let schema = &schema;
                    let corpus = &corpus;
                    let spec = &spec;
                    scope.spawn(move || {
                        let parser = Parser::new(&schema.grammar, corpus.text());
                        let mut partial = Instance::new();
                        for (name, span) in chunk {
                            let tree = parser
                                .parse_root(span.clone())
                                .map_err(|error| BuildError::Parse { file: name.clone(), error })?;
                            let fi = extract_regions(&tree, &schema.grammar, spec);
                            for (rname, set) in fi.iter() {
                                partial.merge(rname, set.clone());
                            }
                        }
                        Ok(partial)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker does not panic")).collect()
        });
        let mut instance = Instance::new();
        for partial in partials {
            for (rname, set) in partial?.iter() {
                instance.merge(rname, set.clone());
            }
        }
        let tokenizer = Tokenizer::new();
        let words = build_word_index(&corpus, &tokenizer, &spec, &instance);
        let full_rig = Rig::from_grammar(&schema.grammar);
        let indexed: std::collections::BTreeSet<String> =
            instance.names().filter(|n| !n.contains('.')).map(str::to_owned).collect();
        let partial_rig = full_rig.partial(&indexed);
        let stats = StatsStore::from_index(&instance, &words, &partial_rig);
        let db = Self {
            corpus,
            tokenizer,
            backend: IndexBackend::Mem(words),
            suffix: None,
            schema,
            spec,
            instance,
            full_rig,
            partial_rig,
            options: ExecOptions::default(),
            cache: SubexprCache::new(),
            stats,
            plan_cache: PlanCache::new(),
            metrics: MetricsRegistry::global_arc(),
            query_counter: AtomicU64::new(0),
            trace_hook: None,
            strict: false,
            workload: WorkloadTable::new(),
        };
        db.publish_index_stats();
        Ok(db)
    }

    /// Writes the database to a `.qofx` index file: corpus, compressed
    /// word index, region indices and the index spec, checksummed (see
    /// [`crate::qofx`] for the layout). The structuring schema and any
    /// suffix array are *not* stored — [`FileDatabase::open`] takes the
    /// schema again and the suffix array is opt-in rebuild. Returns the
    /// file size in bytes.
    pub fn persist(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<u64> {
        let compressed_holder;
        let words: &CompressedWordIndex = match &self.backend {
            IndexBackend::Mem(w) => {
                compressed_holder = CompressedWordIndex::from_word_index(w);
                &compressed_holder
            }
            IndexBackend::Qofx(c) => c,
        };
        qofx::write_qofx(path.as_ref(), &self.corpus, words, &self.instance, &self.spec)
    }

    /// Reopens a persisted database from a `.qofx` file in O(1) work
    /// relative to corpus size: nothing is re-parsed or re-tokenized; the
    /// file is read once for checksum validation, and posting lists stay
    /// on disk, paged in lazily per word. `schema` must be the schema the
    /// database was built with (it is deliberately not persisted — it is
    /// named configuration, not derived data).
    pub fn open(
        path: impl AsRef<std::path::Path>,
        schema: StructuringSchema,
    ) -> Result<Self, QofxError> {
        let qofx::QofxContents { corpus, words, instance, spec } = qofx::read_qofx(path.as_ref())?;
        let full_rig = Rig::from_grammar(&schema.grammar);
        let indexed: std::collections::BTreeSet<String> =
            instance.names().filter(|n| !n.contains('.')).map(str::to_owned).collect();
        let partial_rig = full_rig.partial(&indexed);
        let stats = StatsStore::from_index(&instance, &words, &partial_rig);
        let db = Self {
            corpus,
            tokenizer: Tokenizer::new(),
            backend: IndexBackend::Qofx(words),
            suffix: None,
            schema,
            spec,
            instance,
            full_rig,
            partial_rig,
            options: ExecOptions::default(),
            cache: SubexprCache::new(),
            stats,
            plan_cache: PlanCache::new(),
            metrics: MetricsRegistry::global_arc(),
            query_counter: AtomicU64::new(0),
            trace_hook: None,
            strict: false,
            workload: WorkloadTable::new(),
        };
        db.publish_index_stats();
        Ok(db)
    }

    /// [`FileDatabase::open`], falling back to `rebuild` when the file is
    /// missing, unreadable or corrupt. Returns the database plus the open
    /// error that forced a rebuild (`None` when the file opened cleanly) —
    /// callers log it; a corrupt index is worth a warning, not a crash.
    pub fn open_or_rebuild<F>(
        path: impl AsRef<std::path::Path>,
        schema: StructuringSchema,
        rebuild: F,
    ) -> Result<(Self, Option<QofxError>), BuildError>
    where
        F: FnOnce(StructuringSchema) -> Result<Self, BuildError>,
    {
        match Self::open(path, schema.clone()) {
            Ok(db) => Ok((db, None)),
            Err(why) => Ok((rebuild(schema)?, Some(why))),
        }
    }

    /// Adds a PAT suffix array (enables prefix search; optional because
    /// construction is the most expensive part of indexing).
    pub fn with_suffix_array(mut self) -> Self {
        self.suffix = Some(SuffixArray::build(&self.corpus, &Tokenizer::new()));
        self.cache.clear();
        self
    }

    /// Sets the execution options (builder style).
    pub fn with_exec_options(mut self, options: ExecOptions) -> Self {
        self.set_exec_options(options);
        self
    }

    /// Sets the execution options in place. Disabling the cache drops any
    /// held entries.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        self.options = options;
        if !options.cache {
            self.cache.clear();
        }
    }

    /// The current execution options.
    pub fn exec_options(&self) -> ExecOptions {
        self.options
    }

    /// Enables strict planning (builder style): an optimizer rewrite the
    /// abstract-interpretation certifier cannot certify is suppressed
    /// instead of merely flagged in the trace.
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.set_strict(strict);
        self
    }

    /// Sets strict planning in place. Plans change shape, so any cached
    /// subexpression results and memoized lowerings are dropped.
    pub fn set_strict(&mut self, strict: bool) {
        if self.strict != strict {
            self.cache.clear();
            self.plan_cache.clear();
        }
        self.strict = strict;
    }

    /// Whether strict planning is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Injects the metrics registry traced queries record into (builder
    /// style). The default is [`MetricsRegistry::global_arc`]; servers and
    /// concurrent tests inject [`MetricsRegistry::shared`] instances so
    /// independent workloads never share mutable counters.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.set_metrics(metrics);
        self
    }

    /// Injects the metrics registry in place, republishing the index
    /// footprint gauges into it (gauges live in the registry, so a fresh
    /// registry would otherwise report no backend at all).
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = metrics;
        self.publish_index_stats();
    }

    /// The registry this database records traced-query metrics into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Installs a hook invoked with every completed [`QueryTrace`] (after
    /// metrics recording, before the trace is returned). The query server
    /// feeds its flight recorder through this.
    pub fn set_trace_hook(&mut self, hook: impl Fn(&QueryTrace) + Send + Sync + 'static) {
        self.trace_hook = Some(Box::new(hook));
    }

    /// Removes the trace hook.
    pub fn clear_trace_hook(&mut self) {
        self.trace_hook = None;
    }

    /// Draws the next query ID from this database's sequence (1, 2, …).
    /// [`FileDatabase::query_traced`] draws automatically; callers that
    /// must log failures under the same ID space (the query server) draw
    /// explicitly and pass the ID to [`FileDatabase::query_traced_with_id`].
    pub fn allocate_query_id(&self) -> u64 {
        self.query_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Hit/miss/size counters of the shared subexpression cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops all cached subexpression results (counters included).
    pub fn clear_subexpr_cache(&self) {
        self.cache.clear();
    }

    /// The index statistics store driving cost-ranked plan selection.
    pub fn stats_store(&self) -> &StatsStore {
        &self.stats
    }

    /// The workload-analytics table: per-fingerprint heavy hitters fed by
    /// every traced query (see [`qof_pat::WorkloadTable`]). Untraced
    /// queries do not report here — analytics ride the trace path so the
    /// hot path stays untouched.
    pub fn workload(&self) -> &WorkloadTable {
        &self.workload
    }

    /// Counters and gauges of the memoized plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Incrementally indexes another file: appends it to the corpus, parses
    /// it, merges its regions and extends the word index. Existing offsets
    /// stay valid (the new file's span lies past all previous text). The
    /// RIGs depend only on the grammar and are unchanged; a suffix array,
    /// if present, is rebuilt.
    pub fn add_file(&mut self, name: impl Into<String>, contents: &str) -> Result<(), BuildError> {
        let name = name.into();
        // Parse into a scratch copy first so a malformed file leaves the
        // database untouched.
        let mut probe = self.corpus.clone();
        let id = probe.push_file(name.clone(), contents);
        let span = probe.file(id).expect("just pushed").span.clone();
        let file_instance = {
            let parser = Parser::new(&self.schema.grammar, probe.text());
            let tree = parser
                .parse_root(span.clone())
                .map_err(|error| BuildError::Parse { file: name, error })?;
            extract_regions(&tree, &self.schema.grammar, &self.spec)
        };
        self.corpus = probe;
        for (rname, set) in file_instance.iter() {
            self.instance.merge(rname, set.clone());
        }
        // Incremental indexing mutates the in-memory index; a compressed
        // (`.qofx`-paged) backend materializes itself first and the
        // database runs in memory from here on.
        let words = self.backend.make_mem();
        // A selectively-built word index (§7) must learn the new file's
        // scoped regions before the append, or the scope filter would drop
        // every new occurrence.
        if let Some(scope_name) = self.spec.word_scope() {
            if let Some(set) = file_instance.get(scope_name) {
                words.extend_scope(set.iter().map(qof_pat::Region::span));
            }
        }
        words.append_span(&self.corpus, &self.tokenizer, span);
        if self.suffix.is_some() {
            self.suffix = Some(SuffixArray::build(&self.corpus, &Tokenizer::new()));
        }
        // Cached results were computed against the smaller corpus, and so
        // were the statistics every memoized plan was ranked against:
        // clear the subexpression cache, re-gather statistics (advancing
        // the epoch), and invalidate the plan cache with it.
        self.cache.clear();
        self.stats.refresh_from_index(&self.instance, self.backend.lookup(), &self.partial_rig);
        self.plan_cache.bump_epoch();
        self.publish_index_stats();
        Ok(())
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The structuring schema.
    pub fn schema(&self) -> &StructuringSchema {
        &self.schema
    }

    /// The region-index instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The word index, behind the backend-neutral lookup trait (the
    /// database may be running on the in-memory or the compressed
    /// backend; see [`FileDatabase::backend_label`]).
    pub fn word_index(&self) -> &dyn WordLookup {
        self.backend.lookup()
    }

    /// Which index backend answers word lookups: `"mem"` for the
    /// in-memory inverted index, `"qofx"` for the compressed
    /// file-paged index.
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// Resident bytes of the word-index backend (dictionary + whatever
    /// posting data is held in memory; for the compressed backend the
    /// paged blob is not counted).
    pub fn index_bytes(&self) -> u64 {
        self.backend.lookup().index_bytes() as u64
    }

    /// Publishes the index-footprint gauges (`qof_index_bytes{backend=…}`,
    /// `qof_corpus_bytes`) into this database's metrics registry.
    fn publish_index_stats(&self) {
        self.metrics.record_index_bytes(
            self.backend.label(),
            self.backend.lookup().index_bytes() as u64,
            u64::from(self.corpus.len()),
        );
    }

    /// The index specification this database was built with.
    pub fn index_spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The RIG of the fully indexed grammar (§4.2).
    pub fn full_rig(&self) -> &Rig {
        &self.full_rig
    }

    /// The RIG of the indexed subset (§6.1).
    pub fn partial_rig(&self) -> &Rig {
        &self.partial_rig
    }

    fn planner(&self) -> Planner<'_> {
        Planner {
            schema: &self.schema,
            instance: &self.instance,
            full_rig: &self.full_rig,
            partial_rig: &self.partial_rig,
            full_indexing: self.spec.is_full(),
            strict: self.strict,
            stats: Some(&self.stats),
            plan_cache: Some(&self.plan_cache),
        }
    }

    /// The abstract interpreter over this database's indexed RIG and
    /// statistics — the one `query_traced` uses for trace facts.
    pub fn abs_interp(&self) -> crate::analyze::absint::AbsInterp<'_> {
        crate::analyze::absint::AbsInterp::with_stats(
            &self.partial_rig,
            &self.instance,
            self.backend.lookup(),
        )
    }

    /// Statically checks a query against this database's schema, RIG and
    /// index spec — **without executing anything**. Returns the structured
    /// diagnostics of the [`analyze`](crate::analyze) subsystem: syntax
    /// errors, unknown views/attributes with suggestions, type mismatches,
    /// Proposition 3.3 trivially-empty paths with the witnessing RIG
    /// evidence, §5.3 star-path suggestions, and §6.3 exactness losses of
    /// the partial index with the ambiguous edge named.
    pub fn check(&self, src: &str) -> Vec<crate::analyze::Diagnostic> {
        crate::analyze::check_query(&self.schema, &self.full_rig, Some(&self.planner()), src)
    }

    /// Plans a query without running it.
    pub fn plan(&self, src: &str) -> Result<Plan, QueryError> {
        let q = parse_query(src)?;
        Ok(self.planner().plan(&q)?)
    }

    /// EXPLAIN: the plan description.
    pub fn explain(&self, src: &str) -> Result<String, QueryError> {
        Ok(self.plan(src)?.describe())
    }

    /// Parses, plans and runs a query.
    pub fn query(&self, src: &str) -> Result<QueryResult, QueryError> {
        self.query_with_threads(src, self.options.threads)
    }

    /// Like [`FileDatabase::query`], but records a full [`QueryTrace`]
    /// alongside the result: the optimizer rewrites that fired during
    /// planning, per-phase wall times, the engine's operator tree (with
    /// per-operator timings, cardinalities and cache outcomes), per-shard
    /// phase-1 work, and this run's shared-cache hit/miss delta. The run
    /// also feeds this database's [`MetricsRegistry`] (the process-wide
    /// one unless another was injected) and draws the trace's query ID
    /// from the database's sequence.
    ///
    /// Results are identical to the untraced path: the traced engine
    /// re-enters the same memoized evaluator, so caching behavior cannot
    /// drift.
    pub fn query_traced(&self, src: &str) -> Result<(QueryResult, QueryTrace), QueryError> {
        self.query_traced_with_id(src, self.allocate_query_id())
    }

    /// [`FileDatabase::query_traced`] with a caller-assigned query ID
    /// (drawn from [`FileDatabase::allocate_query_id`]), so a failing query
    /// can still be logged under the ID it consumed.
    pub fn query_traced_with_id(
        &self,
        src: &str,
        id: u64,
    ) -> Result<(QueryResult, QueryTrace), QueryError> {
        let started = Instant::now();
        let cache_before = self.cache.stats();
        let pc_before = self.plan_cache.stats();
        let metrics = &self.metrics;
        let q = match parse_query(src) {
            Ok(q) => q,
            Err(e) => {
                metrics.record_query(elapsed_nanos(started), false);
                return Err(e.into());
            }
        };
        let plan = match self.planner().plan(&q) {
            Ok(p) => p,
            Err(e) => {
                metrics.record_query(elapsed_nanos(started), false);
                return Err(e.into());
            }
        };
        let pc_after = self.plan_cache.stats();
        let mut tr = ExecTrace::default();
        let result = match self.execute_inner(&q, &plan, self.options.threads, Some(&mut tr)) {
            Ok(r) => r,
            Err(e) => {
                metrics.record_query(elapsed_nanos(started), false);
                return Err(e);
            }
        };
        let total_nanos = elapsed_nanos(started);
        // Each sink numbered its spans locally; renumber the whole query
        // pre-order (main ops, then shard ops) so span ids are unique and
        // stable within one trace.
        let mut next_span = 1u64;
        renumber_spans(&mut tr.ops, &mut next_span);
        for shard in &mut tr.shards {
            renumber_spans(&mut shard.ops, &mut next_span);
        }
        let cache_after = self.cache.stats();
        // Estimated-vs-actual cardinalities: the planner's per-variable
        // intervals, matched with the phase-1 candidate counts the engine
        // observed (captured before the join prunes the states).
        let estimates: Vec<CardEstimate> = plan
            .var_estimates(&self.abs_interp())
            .into_iter()
            .zip(tr.var_candidates.iter().copied())
            .map(|((var, card), observed)| CardEstimate {
                var,
                est_lo: card.lo,
                est_hi: card.hi,
                observed,
            })
            .collect();
        let trace = QueryTrace {
            id,
            fingerprint: plan.fingerprint,
            query: src.to_owned(),
            plan: result.explain.clone(),
            rewrites: plan.rewrites.clone(),
            facts: plan.facts(&self.abs_interp()),
            estimates,
            phases: tr.phases,
            shards: tr.shards,
            ops: tr.ops,
            cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
            cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
            plan_cache_hits: pc_after.hits.saturating_sub(pc_before.hits),
            plan_cache_misses: pc_after.misses.saturating_sub(pc_before.misses),
            total_nanos,
            bytes_touched: result.stats.bytes_touched(),
            candidates: result.stats.candidates,
            results: result.stats.results,
            exact_index: result.stats.exact_index,
        };
        metrics.record_query(total_nanos, true);
        metrics.record_cache(trace.cache_hits, trace.cache_misses);
        metrics
            .record_cache_evictions(cache_after.evictions.saturating_sub(cache_before.evictions));
        metrics.record_plan_cache_delta(trace.plan_cache_hits, trace.plan_cache_misses);
        metrics.record_op_trace(&trace.ops);
        for shard in &trace.shards {
            metrics.record_op_trace(&shard.ops);
        }
        // Feed the observed cardinalities back into the stats store so
        // later cost estimates calibrate against real executions.
        self.stats.observe_trace(&trace);
        self.workload.observe(&WorkloadObs {
            fingerprint: trace.fingerprint,
            exemplar: src.to_owned(),
            nanos: total_nanos,
            bytes: trace.bytes_touched,
            plan_cache_hits: trace.plan_cache_hits,
            plan_cache_misses: trace.plan_cache_misses,
            cache_hits: trace.cache_hits,
            cache_misses: trace.cache_misses,
            error: false,
            est_ratio: worst_estimate_ratio(&trace.estimates),
            trace_id: id,
        });
        if let Some(hook) = &self.trace_hook {
            hook(&trace);
        }
        Ok((result, trace))
    }

    /// Runs an already-parsed query.
    pub fn query_ast(&self, q: &Query) -> Result<QueryResult, QueryError> {
        let plan = self.planner().plan(q)?;
        self.execute(q, &plan, self.options.threads)
    }

    fn query_with_threads(&self, src: &str, threads: usize) -> Result<QueryResult, QueryError> {
        let q = parse_query(src)?;
        let plan = self.planner().plan(&q)?;
        self.execute(&q, &plan, threads)
    }

    /// Runs a batch of queries, spreading them over the configured thread
    /// budget (round-robin over up to `threads` workers; each worker
    /// evaluates its queries sequentially). Results come back in input
    /// order and are identical to running [`FileDatabase::query`] on each
    /// source in turn. With the subexpression cache enabled, common
    /// subexpressions are shared across the whole batch (§5.2).
    pub fn query_many(&self, queries: &[&str]) -> Vec<Result<QueryResult, QueryError>> {
        let threads = self.options.threads.max(1);
        let workers = threads.min(queries.len());
        if workers <= 1 {
            return queries.iter().map(|q| self.query_with_threads(q, threads)).collect();
        }
        let mut out: Vec<Option<Result<QueryResult, QueryError>>> =
            (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let chunk: Vec<(usize, &str)> = queries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(i, q)| (i, *q))
                    .collect();
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(i, q)| (i, self.query_with_threads(q, 1)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (i, r) in h.join().expect("query worker does not panic") {
                    out[i] = Some(r);
                }
            }
        });
        out.into_iter().map(|r| r.expect("every query ran")).collect()
    }

    /// Runs only the index phase of a query: the candidate regions of the
    /// projected variable and whether they are exact. No file text is
    /// parsed — this is the measure used by the index-vs-database
    /// experiments.
    pub fn query_regions(&self, src: &str) -> Result<(RegionSet, bool, RunStats), QueryError> {
        let q = parse_query(src)?;
        let plan = self.planner().plan(&q)?;
        let engine = self.engine();
        let mut stats = RunStats::default();
        let mut states = self.eval_phase1(
            &plan,
            &engine,
            self.options.threads,
            &mut stats,
            None,
            Instant::now(),
        )?;
        let idx = plan.vars.iter().position(|vp| vp.var == q.projected_var()).unwrap_or(0);
        let VarState { regions, exact } = states.swap_remove(idx);
        stats.eval.absorb(&engine.stats());
        stats.candidates = regions.len();
        stats.results = regions.len();
        stats.exact_index = exact;
        Ok((regions, exact, stats))
    }

    fn engine(&self) -> Engine<'_> {
        let e = Engine::new(&self.corpus, self.backend.lookup(), &self.instance);
        let e = match &self.suffix {
            Some(sa) => e.with_suffix_array(sa),
            None => e,
        };
        if self.options.cache {
            e.with_shared_cache(&self.cache)
        } else {
            e
        }
    }

    /// An engine scoped to one shard's span, sharing the global suffix
    /// array and (when enabled) the subexpression cache.
    fn shard_engine(&self, span: Span) -> Engine<'_> {
        let e = Engine::new_scoped(&self.corpus, self.backend.lookup(), &self.instance, span);
        let e = match &self.suffix {
            Some(sa) => e.with_suffix_array(sa),
            None => e,
        };
        if self.options.cache {
            e.with_shared_cache(&self.cache)
        } else {
            e
        }
    }

    fn view_regions(&self, symbol: &str) -> RegionSet {
        self.instance.get(symbol).cloned().unwrap_or_default()
    }

    /// Evaluates a planned condition to `(candidate view regions, exact)`.
    fn eval_cond(
        &self,
        engine: &Engine<'_>,
        node: &CondNode,
        view: &RegionSet,
        content_bytes: &mut u64,
    ) -> Result<(RegionSet, bool), QueryError> {
        match node {
            CondNode::IndexOnly { expr, exact, .. } => {
                Ok((engine.eval(expr)?.intersect(view), *exact))
            }
            CondNode::ContentCompare { left, right, exact, .. } => {
                let l = engine.eval(left)?;
                let r = engine.eval(right)?;
                if !exact {
                    // The located sets only approximate the attribute
                    // regions, so comparing their contents is not
                    // superset-safe. Candidates: views containing at least
                    // one located region from each side; the residual parse
                    // phase decides.
                    let both = view.including(&l).intersect(&view.including(&r));
                    return Ok((both, false));
                }
                let lg = group_by_container(view, &l);
                let rg = group_by_container(view, &r);
                let mut l_strings: HashMap<usize, Vec<&str>> = HashMap::new();
                for (ci, item) in lg {
                    *content_bytes += u64::from(item.len());
                    l_strings.entry(ci).or_default().push(self.corpus.slice(item.span()));
                }
                let mut hits: Vec<Region> = Vec::new();
                for (ci, item) in rg {
                    *content_bytes += u64::from(item.len());
                    let s = self.corpus.slice(item.span());
                    if l_strings.get(&ci).is_some_and(|ls| ls.contains(&s)) {
                        hits.push(view.as_slice()[ci]);
                    }
                }
                Ok((RegionSet::from_regions(hits), true))
            }
            CondNode::And(a, b) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                let (rb, xb) = self.eval_cond(engine, b, view, content_bytes)?;
                Ok((ra.intersect(&rb), xa && xb))
            }
            CondNode::Or(a, b) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                let (rb, xb) = self.eval_cond(engine, b, view, content_bytes)?;
                Ok((ra.union(&rb), xa && xb))
            }
            CondNode::Not(a) => {
                let (ra, xa) = self.eval_cond(engine, a, view, content_bytes)?;
                if xa {
                    Ok((view.difference(&ra), true))
                } else {
                    // The complement of a superset is not a superset:
                    // fall back to all view regions as candidates.
                    Ok((view.clone(), false))
                }
            }
        }
    }

    /// Phase 1 of execution: per-variable candidate regions through the
    /// index. Runs shard-parallel when the thread budget allows it and
    /// every condition is shardable; falls back to the sequential engine
    /// otherwise. Both paths produce identical states.
    fn eval_phase1(
        &self,
        plan: &Plan,
        engine: &Engine<'_>,
        threads: usize,
        stats: &mut RunStats,
        shard_tr: Option<&mut Vec<ShardTrace>>,
        origin: Instant,
    ) -> Result<Vec<VarState>, QueryError> {
        if threads > 1
            && self.corpus.files().len() > 1
            && plan.vars.iter().all(|vp| vp.cond.as_ref().is_none_or(cond_shardable))
        {
            let spans = self.corpus.shard_spans(threads);
            if spans.len() > 1 {
                return self.eval_phase1_sharded(plan, &spans, stats, shard_tr, origin);
            }
        }
        let mut states: Vec<VarState> = Vec::new();
        for vp in &plan.vars {
            let view = self.view_regions(&vp.symbol);
            let (regions, exact) = match &vp.cond {
                None => (view, true),
                Some(c) => self.eval_cond(engine, c, &view, &mut stats.content_bytes)?,
            };
            states.push(VarState { regions, exact });
        }
        Ok(states)
    }

    /// Shard-parallel phase 1: one scoped engine per shard span, evaluated
    /// on its own worker; per-shard candidate sets concatenate back in
    /// canonical order because shards follow file order and regions never
    /// cross file boundaries.
    fn eval_phase1_sharded(
        &self,
        plan: &Plan,
        spans: &[Span],
        stats: &mut RunStats,
        mut shard_tr: Option<&mut Vec<ShardTrace>>,
        origin: Instant,
    ) -> Result<Vec<VarState>, QueryError> {
        let traced = shard_tr.is_some();
        type ShardOut =
            Result<(Vec<(RegionSet, bool)>, EvalStats, u64, u64, u64, Vec<OpTrace>), QueryError>;
        let shard_results: Vec<ShardOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .map(|span| {
                    scope.spawn(move || -> ShardOut {
                        let shard_start = elapsed_nanos(origin);
                        // Each worker owns its sink (TraceSink is
                        // single-threaded by design) but all sinks share
                        // the executor's origin, so every span of the
                        // query — main and sharded — lands on one
                        // timeline; the traces merge in span order below.
                        let sink = TraceSink::with_origin(origin);
                        let eng = self.shard_engine(span.clone());
                        let eng = if traced { eng.with_trace(&sink) } else { eng };
                        let mut content_bytes = 0u64;
                        let mut per_var = Vec::with_capacity(plan.vars.len());
                        for vp in &plan.vars {
                            let view = self.view_regions(&vp.symbol).within_span(span);
                            let state = match &vp.cond {
                                None => (view, true),
                                Some(c) => self.eval_cond(&eng, c, &view, &mut content_bytes)?,
                            };
                            per_var.push(state);
                        }
                        let eval = eng.stats();
                        Ok((
                            per_var,
                            eval,
                            content_bytes,
                            shard_start,
                            elapsed_nanos(origin).saturating_sub(shard_start),
                            sink.take(),
                        ))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker does not panic")).collect()
        });
        let mut parts: Vec<Vec<RegionSet>> = vec![Vec::new(); plan.vars.len()];
        let mut exact = vec![true; plan.vars.len()];
        for (span, shard) in spans.iter().zip(shard_results) {
            let (per_var, eval, content, start_nanos, nanos, ops) = shard?;
            stats.eval.absorb(&eval);
            stats.content_bytes += content;
            if let Some(tr) = shard_tr.as_deref_mut() {
                tr.push(ShardTrace { start: span.start, end: span.end, start_nanos, nanos, ops });
            }
            for (i, (regions, x)) in per_var.into_iter().enumerate() {
                parts[i].push(regions);
                exact[i] &= x;
            }
        }
        Ok(parts
            .into_iter()
            .zip(exact)
            .map(|(p, exact)| VarState { regions: RegionSet::concat(p), exact })
            .collect())
    }

    fn execute(&self, q: &Query, plan: &Plan, threads: usize) -> Result<QueryResult, QueryError> {
        self.execute_inner(q, plan, threads, None)
    }

    /// The executor proper. With `tr` set, every phase is timed, the main
    /// engine (and each shard engine) evaluates with a trace sink attached,
    /// and `tr` receives the phase, shard and operator traces of the run.
    /// The untraced path pays a handful of `Instant` reads and nothing else.
    fn execute_inner(
        &self,
        q: &Query,
        plan: &Plan,
        threads: usize,
        tr: Option<&mut ExecTrace>,
    ) -> Result<QueryResult, QueryError> {
        let tracing = tr.is_some();
        // One monotonic origin for the whole execution: the main sink,
        // every shard sink and every phase stamp offsets from it, so all
        // spans of a query share a single timeline (what the Perfetto
        // export relies on).
        let exec_started = Instant::now();
        let sink = TraceSink::with_origin(exec_started);
        let engine = self.engine();
        let engine = if tracing { engine.with_trace(&sink) } else { engine };
        let mut stats = RunStats::default();
        let mut phases: Vec<PhaseTrace> = Vec::new();
        let mut shard_traces: Vec<ShardTrace> = Vec::new();

        // Phase 1: per-variable candidates through the index.
        let phase_started = elapsed_nanos(exec_started);
        let mut states = self.eval_phase1(
            plan,
            &engine,
            threads,
            &mut stats,
            if tracing { Some(&mut shard_traces) } else { None },
            exec_started,
        )?;
        if tracing {
            phases.push(PhaseTrace {
                name: "index-candidates".into(),
                start_nanos: phase_started,
                nanos: elapsed_nanos(exec_started).saturating_sub(phase_started),
            });
        }
        // Phase-1 cardinalities, captured before the join prunes the
        // states: these are what the planner's intervals estimate.
        let var_candidates: Vec<u64> = states.iter().map(|s| s.regions.len() as u64).collect();

        // Phase 2: cross-variable content join.
        let phase_started = elapsed_nanos(exec_started);
        let mut join_pairs: Option<Vec<(Region, Region)>> = None;
        let mut join_exact = true;
        if let Some(j) = &plan.join {
            let li = join_var_index(plan, &j.left_var)?;
            let ri = join_var_index(plan, &j.right_var)?;
            let l_deep = engine.eval(&j.left)?;
            let r_deep = engine.eval(&j.right)?;
            let lg = group_by_container(&states[li].regions, &l_deep);
            let rg = group_by_container(&states[ri].regions, &r_deep);
            let mut table: HashMap<&str, Vec<usize>> = HashMap::new();
            for (ci, item) in &lg {
                stats.content_bytes += u64::from(item.len());
                table.entry(self.corpus.slice(item.span())).or_default().push(*ci);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (ci, item) in &rg {
                stats.content_bytes += u64::from(item.len());
                if let Some(ls) = table.get(self.corpus.slice(item.span())) {
                    for &l in ls {
                        pairs.push((l, *ci));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let lr = states[li].regions.clone();
            let rr = states[ri].regions.clone();
            let region_pairs: Vec<(Region, Region)> =
                pairs.iter().map(|&(a, b)| (lr.as_slice()[a], rr.as_slice()[b])).collect();
            states[li].regions =
                RegionSet::from_regions(region_pairs.iter().map(|p| p.0).collect());
            states[ri].regions =
                RegionSet::from_regions(region_pairs.iter().map(|p| p.1).collect());
            join_exact = j.exact;
            join_pairs = Some(region_pairs);
        }
        if tracing {
            phases.push(PhaseTrace {
                name: "content-join".into(),
                start_nanos: phase_started,
                nanos: elapsed_nanos(exec_started).saturating_sub(phase_started),
            });
        }

        stats.candidates = states.iter().map(|s| s.regions.len()).sum();
        stats.exact_index = states.iter().all(|s| s.exact)
            && join_exact
            && plan.join.is_none() == join_pairs.is_none();

        // Phase 3: decide what must be parsed.
        let phase_started = elapsed_nanos(exec_started);
        let mut db = Database::new();
        let parser = Parser::new(&self.schema.grammar, self.corpus.text());
        // objects[var_index]: region -> built value
        let mut objects: Vec<HashMap<Region, Value>> = vec![HashMap::new(); plan.vars.len()];

        let proj_var = q.projected_var();
        let proj_idx = plan.vars.iter().position(|v| v.var == proj_var).unwrap_or(0);
        let index_only_projection =
            matches!(&plan.projection, ProjPlan::Values { chain: Some((_, _, true)), .. });

        for (i, vp) in plan.vars.iter().enumerate() {
            let must_filter = !states[i].exact;
            let join_residual = join_pairs.is_some() && !join_exact;
            let materialize = i == proj_idx && !index_only_projection;
            if !(must_filter || join_residual || materialize) {
                continue;
            }
            let sym = self.schema.grammar.symbol(&vp.symbol).ok_or_else(|| {
                QueryError::Internal(format!(
                    "view symbol `{}` vanished from the grammar",
                    vp.symbol
                ))
            })?;
            // When only materializing, parse with a full filter; when
            // filtering candidates, parse with the push-down filter first.
            let filter =
                if must_filter || join_residual { vp.filter.clone() } else { PathFilter::all() };
            let mut survivors: Vec<Region> = Vec::new();
            for region in &states[i].regions {
                let tree =
                    parser.parse_symbol(sym, region.span()).map_err(QueryError::CandidateParse)?;
                let value = build_value_filtered(
                    &tree,
                    &self.schema.grammar,
                    self.corpus.text(),
                    &mut db,
                    &filter,
                );
                let keep = match (&vp.residual, must_filter) {
                    (Some(cond), true) => {
                        let mut cost = PathCost::default();
                        eval_single(&db, &vp.var, &value, cond, &mut cost)
                    }
                    _ => true,
                };
                if keep {
                    survivors.push(*region);
                    objects[i].insert(*region, value);
                }
            }
            states[i].regions = RegionSet::from_regions(survivors);
            states[i].exact = true;
        }

        // Phase 3b: join residual on parsed pairs.
        if let (Some(pairs), false) = (&join_pairs, join_exact) {
            if let Some(j) = &plan.join {
                let li = join_var_index(plan, &j.left_var)?;
                let ri = join_var_index(plan, &j.right_var)?;
                let mut keep: Vec<(Region, Region)> = Vec::new();
                for (lr, rr) in pairs {
                    let (Some(lv), Some(rv)) = (objects[li].get(lr), objects[ri].get(rr)) else {
                        continue;
                    };
                    let mut cost = PathCost::default();
                    let ls: Vec<&Value> = path_values(&db, lv, &j.left_steps, &mut cost);
                    let rs: Vec<&Value> = path_values(&db, rv, &j.right_steps, &mut cost);
                    if ls.iter().any(|a| rs.iter().any(|b| a == b)) {
                        keep.push((*lr, *rr));
                    }
                }
                states[li].regions = RegionSet::from_regions(keep.iter().map(|p| p.0).collect());
                states[ri].regions = RegionSet::from_regions(keep.iter().map(|p| p.1).collect());
                join_pairs = Some(keep);
            }
        }
        let _ = &join_pairs;
        if tracing {
            phases.push(PhaseTrace {
                name: "parse-filter".into(),
                start_nanos: phase_started,
                nanos: elapsed_nanos(exec_started).saturating_sub(phase_started),
            });
        }

        // Phase 4: projection.
        let phase_started = elapsed_nanos(exec_started);
        let result_regions = states[proj_idx].regions.clone();
        let mut values: Vec<Value> = Vec::new();
        match &plan.projection {
            ProjPlan::Objects { .. } => {
                for region in &result_regions {
                    if let Some(v) = objects[proj_idx].get(region) {
                        values.push(deref_top(&db, v));
                    }
                }
            }
            ProjPlan::Values { steps, chain, .. } => {
                if index_only_projection {
                    // Read the projected attribute regions directly.
                    let (expr, _, _) = chain.as_ref().ok_or_else(|| {
                        QueryError::Internal("index-only projection lost its chain".into())
                    })?;
                    let deep = engine.eval(expr)?;
                    for (_, item) in group_by_container(&result_regions, &deep) {
                        stats.content_bytes += u64::from(item.len());
                        values.push(Value::Str(self.corpus.slice(item.span()).to_owned()));
                    }
                    values.sort();
                    values.dedup();
                } else {
                    let mut cost = PathCost::default();
                    for region in &result_regions {
                        if let Some(v) = objects[proj_idx].get(region) {
                            for hit in path_values(&db, v, steps, &mut cost) {
                                values.push(hit.clone());
                            }
                        }
                    }
                    values.sort();
                    values.dedup();
                }
            }
        }

        if tracing {
            phases.push(PhaseTrace {
                name: "projection".into(),
                start_nanos: phase_started,
                nanos: elapsed_nanos(exec_started).saturating_sub(phase_started),
            });
        }

        stats.eval.absorb(&engine.stats());
        stats.parse = parser.stats();
        stats.db = db.stats();
        stats.results = result_regions.len();
        if let Some(tr) = tr {
            tr.phases = phases;
            tr.shards = shard_traces;
            tr.ops = sink.take();
            tr.var_candidates = var_candidates;
        }
        Ok(QueryResult { regions: result_regions, values, db, explain: plan.describe(), stats })
    }
}

/// Monotonic elapsed time in nanoseconds, saturating at `u64::MAX`.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Worst estimated-vs-actual cardinality ratio across a trace's per-variable
/// estimates, for the workload table's mis-estimation exemplar. The estimate
/// interval collapses to its midpoint (unbounded highs fall back to the low
/// bound) and both sides get +1 smoothing so empty results don't divide by
/// zero; ratios below 1 are inverted so under- and over-estimates rank alike.
fn worst_estimate_ratio(estimates: &[CardEstimate]) -> f64 {
    estimates
        .iter()
        .map(|e| {
            let hi = e.est_hi.unwrap_or(e.est_lo);
            let mid = (e.est_lo as f64 + hi as f64) / 2.0;
            let ratio = (mid + 1.0) / (e.observed as f64 + 1.0);
            if ratio < 1.0 {
                1.0 / ratio
            } else {
                ratio
            }
        })
        .fold(1.0_f64, f64::max)
}

/// Renumbers a span forest pre-order, continuing from `next` — used to
/// replace the per-sink span ids with ids unique across a whole query.
fn renumber_spans(ops: &mut [OpTrace], next: &mut u64) {
    for op in ops {
        op.span_id = *next;
        *next += 1;
        renumber_spans(&mut op.children, next);
    }
}

/// Position of a join variable among the plan's range variables.
fn join_var_index(plan: &Plan, var: &str) -> Result<usize, QueryError> {
    plan.vars
        .iter()
        .position(|v| v.var == var)
        .ok_or_else(|| QueryError::Internal(format!("join variable `{var}` missing from the plan")))
}

/// Dereferences a top-level object reference into its stored value.
fn deref_top(db: &Database, v: &Value) -> Value {
    match v {
        Value::Ref(oid) => db.deref(*oid).cloned().unwrap_or_else(|| v.clone()),
        other => other.clone(),
    }
}

/// Pairs `(container index, item)` for every item lying inside a container.
/// Containers may nest (self-nested views); an item maps to each container
/// that includes it.
fn group_by_container(containers: &RegionSet, items: &RegionSet) -> Vec<(usize, Region)> {
    let mut out = Vec::new();
    let cs = containers.as_slice();
    let mut stack: Vec<usize> = Vec::new();
    let mut ci = 0usize;
    for item in items {
        while ci < cs.len() && cs[ci] <= *item {
            while let Some(&top) = stack.last() {
                if cs[top].end <= cs[ci].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(ci);
            ci += 1;
        }
        while let Some(&top) = stack.last() {
            if cs[top].end <= item.start {
                stack.pop();
            } else {
                break;
            }
        }
        for &c in &stack {
            if cs[c].includes(item) {
                out.push((c, *item));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(pairs: &[(u32, u32)]) -> RegionSet {
        RegionSet::from_regions(pairs.iter().map(|&(a, b)| Region::new(a, b)).collect())
    }

    #[test]
    fn group_by_container_disjoint() {
        let containers = rs(&[(0, 10), (20, 30), (40, 50)]);
        let items = rs(&[(2, 4), (22, 24), (26, 28), (60, 62)]);
        let got = group_by_container(&containers, &items);
        assert_eq!(
            got,
            vec![(0, Region::new(2, 4)), (1, Region::new(22, 24)), (1, Region::new(26, 28))]
        );
    }

    #[test]
    fn group_by_container_nested_containers() {
        // Self-nested views: an item belongs to every enclosing container.
        let containers = rs(&[(0, 100), (10, 50)]);
        let items = rs(&[(20, 25), (60, 65)]);
        let got = group_by_container(&containers, &items);
        let outer = containers.as_slice().iter().position(|r| *r == Region::new(0, 100)).unwrap();
        let inner = containers.as_slice().iter().position(|r| *r == Region::new(10, 50)).unwrap();
        assert!(got.contains(&(outer, Region::new(20, 25))));
        assert!(got.contains(&(inner, Region::new(20, 25))));
        assert!(got.contains(&(outer, Region::new(60, 65))));
        assert!(!got.contains(&(inner, Region::new(60, 65))));
    }

    #[test]
    fn group_by_container_boundary() {
        let containers = rs(&[(0, 10)]);
        // Touching the end is included; crossing is not.
        let items = rs(&[(5, 10), (8, 12)]);
        let got = group_by_container(&containers, &items);
        assert_eq!(got, vec![(0, Region::new(5, 10))]);
    }

    #[test]
    fn deref_top_resolves_refs() {
        let mut db = Database::new();
        let oid = db.new_object("C", Value::str("payload"));
        assert_eq!(deref_top(&db, &Value::Ref(oid)).as_str(), Some("payload"));
        assert_eq!(deref_top(&db, &Value::str("plain")).as_str(), Some("plain"));
    }

    #[test]
    fn runstats_bytes_touched_sums() {
        let mut s = RunStats::default();
        s.parse.bytes_scanned = 10;
        s.content_bytes = 5;
        assert_eq!(s.bytes_touched(), 15);
    }

    #[test]
    fn shardability_analysis() {
        use RegionExpr::*;
        let word = |w: &str| Box::new(Word(w.into()));
        let name = |n: &str| Box::new(Name(n.into()));
        assert!(expr_shardable(&Including(name("A"), word("chang"))));
        assert!(expr_shardable(&SelectEq(name("Year"), "1982".into())));
        // A phrase containing the file separator can match across files.
        assert!(!expr_shardable(&SelectContains(name("A"), "a\nb".into())));
        // `near` reaches across file boundaries by construction.
        assert!(!expr_shardable(&Near { left: name("A"), right: name("B"), gap: 5 }));
        assert!(!expr_shardable(&Union(
            name("A"),
            Box::new(Near { left: name("B"), right: name("C"), gap: 1 }),
        )));
    }

    // -- integration tests over generated multi-file corpora ---------------

    use qof_corpus::bibtex::{self, BibtexConfig};
    use qof_grammar::IndexSpec;

    /// A corpus of `files` bibtex files with distinct seeds.
    fn multi_file_corpus(files: usize, refs_per_file: usize) -> Corpus {
        let mut b = qof_text::CorpusBuilder::new();
        for i in 0..files {
            let cfg = BibtexConfig {
                n_refs: refs_per_file,
                seed: 1000 + i as u64,
                name_pool: 8,
                ..Default::default()
            };
            let (text, _) = bibtex::generate(&cfg);
            b.add_file(format!("f{i}.bib"), &text);
        }
        b.build()
    }

    const QUERIES: &[&str] = &[
        "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"",
        "SELECT r FROM References r WHERE r.Year = \"1982\"",
        "SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\" \
         AND r.Year = \"1982\"",
        "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = \"Chang\" \
         OR r.Authors.Name.Last_Name = \"Tompa\"",
    ];

    fn assert_same_results(a: &QueryResult, b: &QueryResult, q: &str) {
        assert_eq!(a.regions, b.regions, "regions differ for {q}");
        assert_eq!(a.values, b.values, "values differ for {q}");
        assert_eq!(a.stats.exact_index, b.stats.exact_index, "exactness differs for {q}");
    }

    #[test]
    fn sharded_execution_matches_sequential() {
        let corpus = multi_file_corpus(6, 30);
        let seq = FileDatabase::build(corpus.clone(), bibtex::schema(), IndexSpec::full()).unwrap();
        let par = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 4, cache: false });
        for q in QUERIES {
            let a = seq.query(q).unwrap();
            let b = par.query(q).unwrap();
            assert_same_results(&a, &b, q);
            assert!(!a.regions.is_empty() || !a.values.is_empty(), "degenerate workload: {q}");
        }
        // The index-only path shards too.
        let (ra, xa, _) = seq.query_regions(QUERIES[0]).unwrap();
        let (rb, xb, _) = par.query_regions(QUERIES[0]).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(xa, xb);
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let corpus = multi_file_corpus(4, 20);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 4, cache: true });
        let batch = db.query_many(QUERIES);
        assert_eq!(batch.len(), QUERIES.len());
        for (q, got) in QUERIES.iter().zip(&batch) {
            let want = db.query(q).unwrap();
            assert_same_results(got.as_ref().unwrap(), &want, q);
        }
        // Errors come back in position, not as a panic.
        let mixed = db.query_many(&["SELEC nope", QUERIES[0]]);
        assert!(matches!(mixed[0], Err(QueryError::Syntax(_))));
        assert!(mixed[1].is_ok());
    }

    #[test]
    fn subexpr_cache_serves_repeat_queries() {
        let corpus = multi_file_corpus(3, 20);
        let uncached =
            FileDatabase::build(corpus.clone(), bibtex::schema(), IndexSpec::full()).unwrap();
        let cached = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 1, cache: true });
        let q = QUERIES[0];
        let first = cached.query(q).unwrap();
        let misses_after_first = cached.cache_stats().misses;
        assert!(misses_after_first > 0, "first run must populate the cache");
        let second = cached.query(q).unwrap();
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "second run must hit the cache: {stats:?}");
        assert_eq!(stats.misses, misses_after_first, "second run must add no misses");
        assert_same_results(&first, &second, q);
        assert_same_results(&uncached.query(q).unwrap(), &second, q);
        // Mutating the database invalidates the cache.
        cached.clear_subexpr_cache();
        assert_eq!(cached.cache_stats().entries, 0);
    }

    #[test]
    fn traced_query_matches_untraced_and_fills_the_trace() {
        let corpus = multi_file_corpus(3, 20);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let q = QUERIES[0];
        let plain = db.query(q).unwrap();
        let (traced, trace) = db.query_traced(q).unwrap();
        assert_same_results(&plain, &traced, q);
        assert_eq!(trace.query, q);
        assert_eq!(trace.plan, plain.explain);
        assert_eq!(trace.results, plain.regions.len());
        assert_eq!(trace.candidates, plain.stats.candidates);
        let names: Vec<&str> = trace.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["index-candidates", "content-join", "parse-filter", "projection"]);
        assert!(trace.op_node_count() > 0, "the engine must record operator nodes");
        assert!(
            trace.rewrites.iter().any(|r| r.proposition == "3.5(b)"),
            "chain shortening must be recorded for {q}: {:?}",
            trace.rewrites
        );
        assert!(trace.shards.is_empty(), "sequential run must not fabricate shards");
        assert!(trace.total_nanos > 0);
        // The JSON surface round-trips the real thing, not just fixtures.
        let back = crate::QueryTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn traced_sharded_query_records_per_shard_work() {
        let corpus = multi_file_corpus(4, 15);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 4, cache: false });
        let plain = db.query(QUERIES[0]).unwrap();
        let (traced, trace) = db.query_traced(QUERIES[0]).unwrap();
        assert_same_results(&plain, &traced, QUERIES[0]);
        assert!(trace.shards.len() > 1, "a 4-file corpus on 4 threads must shard");
        for shard in &trace.shards {
            assert!(shard.start < shard.end);
            assert!(!shard.ops.is_empty(), "each shard engine must trace its operators");
        }
        // Shards come back in span order and never overlap.
        for w in trace.shards.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn traced_query_feeds_injected_metrics() {
        let corpus = multi_file_corpus(2, 10);
        let metrics = MetricsRegistry::shared();
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 1, cache: true })
            .with_metrics(std::sync::Arc::clone(&metrics));
        let (_, trace) = db.query_traced(QUERIES[1]).unwrap();
        let (_, trace2) = db.query_traced(QUERIES[1]).unwrap();
        // A private registry sees exactly this database's work.
        let after = metrics.snapshot();
        assert_eq!(after.queries, 2);
        assert_eq!(after.query_errors, 0);
        assert_eq!(after.cache_misses, trace.cache_misses + trace2.cache_misses);
        assert_eq!(after.cache_hits, trace.cache_hits + trace2.cache_hits);
        assert_eq!(after.query_latency.count(), 2);
        assert!(!after.op_latency.is_empty());
        // Query IDs come from the database's own sequence.
        assert_eq!(trace.id, 1);
        assert_eq!(trace2.id, 2);
        // A failing query still counts, as an error.
        assert!(db.query_traced("SELEC nope").is_err());
        let errs = metrics.snapshot();
        assert_eq!(errs.queries, 3);
        assert_eq!(errs.query_errors, 1);
    }

    #[test]
    fn assembled_traces_satisfy_span_invariants() {
        // Deterministic mirror of crates/proptests/tests/property_spans.rs
        // (the property suite needs network to build): children nest in
        // parents, siblings are sequential, span ids are a pre-order
        // renumbering, phases tile the window, spans fit in total_nanos.
        fn check_nesting(ops: &[OpTrace]) {
            for op in ops {
                let end = op.start_nanos + op.nanos;
                for child in &op.children {
                    assert!(child.start_nanos >= op.start_nanos, "child precedes parent");
                    assert!(child.start_nanos + child.nanos <= end, "child escapes parent");
                }
                for pair in op.children.windows(2) {
                    assert!(
                        pair[0].start_nanos + pair[0].nanos <= pair[1].start_nanos,
                        "sibling spans overlap"
                    );
                }
                check_nesting(&op.children);
            }
        }
        fn collect_ids(ops: &[OpTrace], out: &mut Vec<u64>) {
            for op in ops {
                out.push(op.span_id);
                collect_ids(&op.children, out);
            }
        }
        fn check(trace: &QueryTrace) {
            check_nesting(&trace.ops);
            for shard in &trace.shards {
                check_nesting(&shard.ops);
                let end = shard.start_nanos + shard.nanos;
                for op in &shard.ops {
                    assert!(op.start_nanos >= shard.start_nanos, "shard op precedes shard");
                    assert!(op.start_nanos + op.nanos <= end, "shard op escapes shard");
                }
            }
            let mut ids = Vec::new();
            collect_ids(&trace.ops, &mut ids);
            for shard in &trace.shards {
                collect_ids(&shard.ops, &mut ids);
            }
            let expect: Vec<u64> = (1..=ids.len() as u64).collect();
            assert_eq!(ids, expect, "span ids are a pre-order renumbering");
            for pair in trace.phases.windows(2) {
                assert!(pair[0].start_nanos + pair[0].nanos <= pair[1].start_nanos);
            }
            let phase_sum: u64 = trace.phases.iter().map(|p| p.nanos).sum();
            assert!(phase_sum <= trace.total_nanos, "phase sum exceeds total");
            fn max_end(ops: &[OpTrace]) -> u64 {
                ops.iter()
                    .map(|op| (op.start_nanos + op.nanos).max(max_end(&op.children)))
                    .max()
                    .unwrap_or(0)
            }
            let spans_end = max_end(&trace.ops)
                .max(trace.shards.iter().map(|s| s.start_nanos + s.nanos).max().unwrap_or(0));
            assert!(spans_end <= trace.total_nanos, "span end exceeds total");
        }
        for threads in [1usize, 4] {
            let corpus = multi_file_corpus(4, 10);
            let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
                .unwrap()
                .with_exec_options(ExecOptions { threads, cache: threads == 1 });
            for q in QUERIES {
                let (_, trace) = db.query_traced(q).unwrap();
                check(&trace);
                if threads > 1 && !trace.shards.is_empty() {
                    assert!(!trace.shards[0].ops.is_empty(), "shards trace their operators");
                }
            }
        }
    }

    #[test]
    fn plan_cache_hit_records_each_counter_exactly_once() {
        // Audit pin: the plan-cache-hit path shares most of the miss path's
        // bookkeeping, so any counter recorded on both branches would show
        // up here as a doubled value.
        fn computed_ops(ops: &[OpTrace], n: &mut u64) {
            for op in ops {
                if op.source == qof_pat::CacheSource::Computed {
                    *n += 1;
                }
                computed_ops(&op.children, n);
            }
        }
        let corpus = multi_file_corpus(2, 10);
        let metrics = MetricsRegistry::shared();
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 1, cache: true })
            .with_metrics(std::sync::Arc::clone(&metrics));
        let (_, miss) = db.query_traced(QUERIES[0]).unwrap();
        let (_, hit) = db.query_traced(QUERIES[0]).unwrap();
        assert_eq!((miss.plan_cache_misses, miss.plan_cache_hits), (1, 0));
        assert_eq!((hit.plan_cache_misses, hit.plan_cache_hits), (0, 1));
        let snap = metrics.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.query_errors, 0);
        assert_eq!(snap.query_latency.count(), 2);
        assert_eq!(snap.plan_cache_misses, 1, "exactly one miss recorded");
        assert_eq!(snap.plan_cache_hits, 1, "exactly one hit recorded");
        assert_eq!(snap.cache_hits, miss.cache_hits + hit.cache_hits);
        assert_eq!(snap.cache_misses, miss.cache_misses + hit.cache_misses);
        let mut expect = 0;
        for t in [&miss, &hit] {
            computed_ops(&t.ops, &mut expect);
            for shard in &t.shards {
                computed_ops(&shard.ops, &mut expect);
            }
        }
        let recorded: u64 = snap.op_latency.values().map(qof_pat::Histogram::count).sum();
        assert_eq!(recorded, expect, "one op_latency sample per computed operator");
    }

    #[test]
    fn trace_hook_sees_every_successful_trace() {
        let corpus = multi_file_corpus(2, 10);
        let mut db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_exec_options(ExecOptions { threads: 1, cache: false });
        let seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>> =
            std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        db.set_trace_hook(move |t: &crate::QueryTrace| sink.lock().unwrap().push(t.id));
        db.query_traced(QUERIES[0]).unwrap();
        let id = db.allocate_query_id();
        db.query_traced_with_id(QUERIES[1], id).unwrap();
        assert!(db.query_traced("SELEC nope").is_err(), "errors produce no trace");
        assert_eq!(*seen.lock().unwrap(), vec![1, id]);
        db.clear_trace_hook();
        db.query_traced(QUERIES[0]).unwrap();
        assert_eq!(seen.lock().unwrap().len(), 2, "cleared hook no longer fires");
    }

    // -- cost model, estimates and plan cache -------------------------------

    /// A planner over `db`'s indexes with the cost model switched on or
    /// off and no plan cache — the two plan-selection policies side by
    /// side over identical inputs.
    fn raw_planner<'a>(db: &'a FileDatabase, stats: Option<&'a StatsStore>) -> Planner<'a> {
        Planner {
            schema: &db.schema,
            instance: &db.instance,
            full_rig: &db.full_rig,
            partial_rig: &db.partial_rig,
            full_indexing: db.spec.is_full(),
            strict: db.strict,
            stats,
            plan_cache: None,
        }
    }

    #[test]
    fn cost_ranked_plans_are_result_identical_to_leftmost_first() {
        // Cost ranking only ever picks among certified-equivalent normal
        // forms, so whatever the statistics say, results cannot move.
        let corpus = multi_file_corpus(4, 20);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        for q in QUERIES {
            let parsed = parse_query(q).unwrap();
            let costed = raw_planner(&db, Some(&db.stats)).plan(&parsed).unwrap();
            let leftmost = raw_planner(&db, None).plan(&parsed).unwrap();
            let a = db.execute(&parsed, &costed, 1).unwrap();
            let b = db.execute(&parsed, &leftmost, 1).unwrap();
            assert_same_results(&a, &b, q);
        }
    }

    #[test]
    fn plan_cache_hit_is_byte_identical_to_a_fresh_optimize() {
        let corpus = multi_file_corpus(3, 20);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let q = QUERIES[1];
        let (r1, t1) = db.query_traced(q).unwrap();
        assert!(t1.plan_cache_misses > 0, "first run must miss the plan cache");
        assert_eq!(t1.plan_cache_hits, 0);
        let (r2, t2) = db.query_traced(q).unwrap();
        assert!(t2.plan_cache_hits > 0, "second run must hit the plan cache");
        assert_eq!(t2.plan_cache_misses, 0);
        // The cached lowering reproduces the fresh one byte for byte:
        // same plan text, same recorded rewrites, same results.
        assert_eq!(t1.plan, t2.plan);
        assert_eq!(t1.rewrites, t2.rewrites);
        assert_same_results(&r1, &r2, q);
        let pc = db.plan_cache_stats();
        assert_eq!(pc.hits, t2.plan_cache_hits);
        assert_eq!(pc.misses, t1.plan_cache_misses);
        assert!(pc.entries > 0);
    }

    #[test]
    fn estimated_intervals_bound_observed_candidates() {
        // Every estimate the planner publishes is a sound interval: the
        // phase-1 candidate count the engine then observes falls inside.
        let corpus = multi_file_corpus(4, 20);
        let db = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        for q in QUERIES {
            let (_, trace) = db.query_traced(q).unwrap();
            assert!(!trace.estimates.is_empty(), "no estimates for {q}");
            for e in &trace.estimates {
                assert!(
                    e.est_lo <= e.observed,
                    "{q}: var {} observed {} below lo {}",
                    e.var,
                    e.observed,
                    e.est_lo
                );
                if let Some(hi) = e.est_hi {
                    assert!(
                        e.observed <= hi,
                        "{q}: var {} observed {} above hi {}",
                        e.var,
                        e.observed,
                        hi
                    );
                }
            }
        }
    }

    #[test]
    fn add_file_bumps_the_stats_epoch_and_clears_the_plan_cache() {
        let cfg = BibtexConfig { n_refs: 20, name_pool: 8, ..Default::default() };
        let (text, _) = bibtex::generate(&cfg);
        let mut db =
            FileDatabase::build(Corpus::from_text(&text), bibtex::schema(), IndexSpec::full())
                .unwrap();
        db.query(QUERIES[1]).unwrap();
        let before = db.plan_cache_stats();
        assert!(before.entries > 0, "untraced queries also populate the plan cache");
        let epoch_before = db.stats_store().epoch();

        let (text2, _) = bibtex::generate(&BibtexConfig { n_refs: 10, seed: 9, ..cfg });
        db.add_file("extra.bib", &text2).unwrap();
        let after = db.plan_cache_stats();
        assert_eq!(after.entries, 0, "stale lowerings must not survive an index change");
        assert_eq!(db.stats_store().epoch(), epoch_before + 1);
        // Re-planning repopulates against the new statistics.
        db.query(QUERIES[1]).unwrap();
        assert!(db.plan_cache_stats().entries > 0);
    }

    #[test]
    fn add_file_extends_scoped_word_index() {
        // Regression: `append_span` used to index every token of an
        // appended file even when the word index was built with a §7
        // scope, silently bloating the index past its contract.
        let cfg = BibtexConfig { n_refs: 40, name_pool: 8, ..Default::default() };
        let (text, _) = bibtex::generate(&cfg);
        let spec = IndexSpec::full().with_word_scope("Last_Name");
        let mut db =
            FileDatabase::build(Corpus::from_text(&text), bibtex::schema(), spec.clone()).unwrap();
        let before = db.word_index().postings();

        let cfg2 = BibtexConfig { n_refs: 40, seed: 77, name_pool: 8, ..Default::default() };
        let (text2, truth2) = bibtex::generate(&cfg2);
        db.add_file("extra.bib", &text2).unwrap();

        // Names from the new file are findable…
        let some_last = &truth2.refs[0].authors[0].1;
        let q =
            format!("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"{some_last}\"");
        assert!(!db.query(&q).unwrap().regions.is_empty());

        // …but the index only grew by scoped occurrences: rebuild from
        // scratch and compare sizes.
        let mut both = qof_text::CorpusBuilder::new();
        both.add_file("base.bib", &text);
        both.add_file("extra.bib", &text2);
        let rebuilt = FileDatabase::build(both.build(), bibtex::schema(), spec).unwrap();
        let after = db.word_index().postings();
        assert_eq!(after, rebuilt.word_index().postings());
        assert!(after > before, "the scoped index must still grow");
    }

    #[test]
    fn build_parallel_honors_word_scope() {
        // Regression: the parallel build path ignored the spec's word
        // scope and always built a full word index.
        let corpus = multi_file_corpus(4, 15);
        let spec = IndexSpec::full().with_word_scope("Last_Name");
        let seq = FileDatabase::build(corpus.clone(), bibtex::schema(), spec.clone()).unwrap();
        let par = FileDatabase::build_parallel(corpus, bibtex::schema(), spec, 4).unwrap();
        assert_eq!(
            par.word_index().postings(),
            seq.word_index().postings(),
            "parallel build must produce the same scoped word index"
        );
        assert!(par.word_index().is_scoped());
    }

    // -- .qofx persistence --------------------------------------------------

    /// A unique temp path per test (process id + name keeps parallel test
    /// binaries from colliding).
    fn temp_qofx(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qof-test-{}-{name}.qofx", std::process::id()));
        p
    }

    #[test]
    fn persist_and_open_round_trips_every_query() {
        let corpus = multi_file_corpus(4, 25);
        let built = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let path = temp_qofx("roundtrip");
        let bytes = built.persist(&path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        // The container embeds the corpus text (that is what makes reopen
        // O(1)); the *index* part — everything beyond the text — should
        // not outweigh what it indexes.
        let overhead = bytes - u64::from(built.corpus().len());
        assert!(
            overhead < u64::from(built.corpus().len()),
            "index overhead ({overhead} B) larger than corpus ({} B)",
            built.corpus().len()
        );
        let opened = FileDatabase::open(&path, bibtex::schema()).unwrap();
        assert_eq!(opened.backend_label(), "qofx");
        assert_eq!(built.backend_label(), "mem");
        assert_eq!(opened.corpus().text(), built.corpus().text());
        assert_eq!(opened.instance(), built.instance());
        assert_eq!(opened.index_spec(), built.index_spec());
        assert_eq!(opened.word_index().postings(), built.word_index().postings());
        for q in QUERIES {
            let a = built.query(q).unwrap();
            let b = opened.query(q).unwrap();
            assert_same_results(&a, &b, q);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_and_open_preserves_scoped_word_index() {
        let corpus = multi_file_corpus(2, 12);
        let spec = IndexSpec::full().with_word_scope("Author");
        let built = FileDatabase::build(corpus, bibtex::schema(), spec).unwrap();
        assert!(built.word_index().is_scoped());
        let path = temp_qofx("scoped");
        built.persist(&path).unwrap();
        let opened = FileDatabase::open(&path, bibtex::schema()).unwrap();
        assert!(opened.word_index().is_scoped());
        assert_eq!(opened.index_spec().word_scope(), Some("Author"));
        assert_eq!(opened.word_index().postings(), built.word_index().postings());
        for q in QUERIES {
            let a = built.query(q);
            let b = opened.query(q);
            match (a, b) {
                (Ok(a), Ok(b)) => assert_same_results(&a, &b, q),
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "error parity for {q}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flips_anywhere_are_rejected_by_the_checksum() {
        let corpus = multi_file_corpus(1, 8);
        let built = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let path = temp_qofx("bitflip");
        built.persist(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of offsets covering header, corpus,
        // word, region and spec sections.
        for i in 0..16 {
            let pos = i * clean.len() / 16;
            let mut bad = clean.clone();
            bad[pos] ^= 1 << (i % 8);
            if bad == clean {
                continue;
            }
            std::fs::write(&path, &bad).unwrap();
            let err = FileDatabase::open(&path, bibtex::schema())
                .err()
                .unwrap_or_else(|| panic!("bit flip at {pos} must not open cleanly"));
            // Magic/version corruption reports as such; anything else must
            // be the checksum (the first validation to see the body).
            match err {
                QofxError::BadMagic | QofxError::UnsupportedVersion(_) => assert!(pos < 8),
                QofxError::ChecksumMismatch { .. } => {}
                other => panic!("bit flip at {pos}: unexpected error {other}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_files_are_rejected_cleanly() {
        let corpus = multi_file_corpus(1, 8);
        let built = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let path = temp_qofx("truncate");
        built.persist(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for keep in [0, 3, 4, 24, 87, 88, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                FileDatabase::open(&path, bibtex::schema()).is_err(),
                "truncation to {keep} bytes must not open"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_or_rebuild_falls_back_on_corruption() {
        let corpus = multi_file_corpus(1, 8);
        let built =
            FileDatabase::build(corpus.clone(), bibtex::schema(), IndexSpec::full()).unwrap();
        let path = temp_qofx("fallback");
        built.persist(&path).unwrap();
        // Clean file: opens, no error reported.
        let (db, why) = FileDatabase::open_or_rebuild(&path, bibtex::schema(), |_| {
            panic!("must not rebuild when the file is clean")
        })
        .unwrap();
        assert!(why.is_none());
        assert_eq!(db.backend_label(), "qofx");
        // Corrupt file: rebuilds, reports why.
        let mut bad = std::fs::read(&path).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let (db, why) = FileDatabase::open_or_rebuild(&path, bibtex::schema(), |schema| {
            FileDatabase::build(corpus.clone(), schema, IndexSpec::full())
        })
        .unwrap();
        assert!(matches!(why, Some(QofxError::ChecksumMismatch { .. })), "got {why:?}");
        assert_eq!(db.backend_label(), "mem");
        for q in QUERIES {
            let a = built.query(q).unwrap();
            let b = db.query(q).unwrap();
            assert_same_results(&a, &b, q);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn add_file_materializes_a_compressed_backend() {
        let corpus = multi_file_corpus(2, 10);
        let built = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full()).unwrap();
        let path = temp_qofx("materialize");
        built.persist(&path).unwrap();
        let mut opened = FileDatabase::open(&path, bibtex::schema()).unwrap();
        assert_eq!(opened.backend_label(), "qofx");
        let (text, _) = bibtex::generate(&BibtexConfig {
            n_refs: 5,
            seed: 77,
            name_pool: 8,
            ..Default::default()
        });
        opened.add_file("late.bib", &text).unwrap();
        assert_eq!(opened.backend_label(), "mem", "writes run on the in-memory index");
        // The grown database answers like a from-scratch build over the
        // same files.
        let rebuilt =
            FileDatabase::build(opened.corpus().clone(), bibtex::schema(), IndexSpec::full())
                .unwrap();
        assert_eq!(opened.word_index().postings(), rebuilt.word_index().postings());
        for q in QUERIES {
            let a = opened.query(q).unwrap();
            let b = rebuilt.query(q).unwrap();
            assert_same_results(&a, &b, q);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_bytes_gauge_tracks_the_backend() {
        // Large enough that posting storage, not per-entry dictionary
        // headers, dominates the in-memory footprint.
        let corpus = multi_file_corpus(4, 40);
        let metrics = std::sync::Arc::new(MetricsRegistry::default());
        let built = FileDatabase::build(corpus, bibtex::schema(), IndexSpec::full())
            .unwrap()
            .with_metrics(std::sync::Arc::clone(&metrics));
        let snap = metrics.snapshot();
        assert_eq!(snap.index_bytes.len(), 1);
        assert_eq!(snap.index_bytes.get("mem").copied(), Some(built.index_bytes()));
        assert_eq!(snap.corpus_bytes, u64::from(built.corpus().len()));
        let path = temp_qofx("gauge");
        built.persist(&path).unwrap();
        let opened = FileDatabase::open(&path, bibtex::schema())
            .unwrap()
            .with_metrics(std::sync::Arc::clone(&metrics));
        let snap = metrics.snapshot();
        assert_eq!(snap.index_bytes.get("qofx").copied(), Some(opened.index_bytes()));
        assert!(
            opened.index_bytes() < built.index_bytes(),
            "paged backend must be lighter than the in-memory one ({} vs {})",
            opened.index_bytes(),
            built.index_bytes()
        );
        std::fs::remove_file(&path).ok();
    }
}
