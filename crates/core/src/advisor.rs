//! Index selection (§7): *"to fully compute Q, it is sufficient to (i)
//! index the nonterminals mentioned in e, and (ii) for every subexpression
//! Ai ⊃d Ai+1 in e, index one non-terminal (other than Ai, Ai+1) on each
//! path from Ai to Ai+1 in the RIG of the grammar G."*
//!
//! Given a workload of queries, [`advise`] computes such a sufficient index
//! set from the expressions optimized against the *full* RIG, choosing
//! separator non-terminals greedily (most-shared first).

use std::collections::{BTreeMap, BTreeSet};

use qof_grammar::StructuringSchema;

use crate::cost::StatsStore;
use crate::optimizer::{optimize, optimize_costed};
use crate::translate::{resolve_path, SkOp};
use crate::{ChainOp, Cond, InclusionExpr, Projection, Query, Rig, RightHand};

/// The advisor's output.
#[derive(Debug, Clone, Default)]
pub struct Advice {
    /// Names mentioned by the optimized expressions (always required).
    pub mentioned: BTreeSet<String>,
    /// For each surviving `Ai ⊃d Aj`, the separator names chosen to guard
    /// direct inclusion, keyed by `(Ai, Aj)`.
    pub separators: BTreeMap<(String, String), BTreeSet<String>>,
    /// The recommended index set: mentioned ∪ separators ∪ view symbols.
    pub index_set: BTreeSet<String>,
    /// Human-readable notes on the decisions.
    pub notes: Vec<String>,
}

/// Computes a sufficient index set for the workload. Queries that fail to
/// translate are skipped with a note.
pub fn advise(schema: &StructuringSchema, full_rig: &Rig, queries: &[Query]) -> Advice {
    advise_impl(schema, full_rig, queries, None)
}

/// [`advise`] with a cost model: where the optimizer's reduction is
/// non-confluent, the certified-equivalent normal form the statistics rank
/// cheapest drives the index set (so the advice indexes the names the
/// engine would actually touch), and each recommendation is annotated with
/// its estimated cost. With no usable statistics the advice degrades to
/// exactly [`advise`]'s.
pub fn advise_costed(
    schema: &StructuringSchema,
    full_rig: &Rig,
    queries: &[Query],
    stats: &StatsStore,
) -> Advice {
    advise_impl(schema, full_rig, queries, Some(stats))
}

fn advise_impl(
    schema: &StructuringSchema,
    full_rig: &Rig,
    queries: &[Query],
    stats: Option<&StatsStore>,
) -> Advice {
    let mut advice = Advice::default();
    for q in queries {
        for (view, _) in &q.ranges {
            if let Some(sym) = schema.view_symbol_name(view) {
                advice.mentioned.insert(sym.to_owned());
            }
        }
        let mut paths: Vec<(String, Vec<crate::QStep>)> = Vec::new();
        collect_paths(q, &mut paths);
        for (var, steps) in paths {
            let Some(view) = q.view_of(&var) else { continue };
            let Some(sym) = schema.view_symbol_name(view) else { continue };
            let spec = match resolve_path(&schema.grammar, sym, &steps) {
                Ok(s) => s,
                Err(e) => {
                    advice.notes.push(format!("skipped path {var}.…: {e}"));
                    continue;
                }
            };
            for alt in &spec.alternatives {
                // The §5 expression under full indexing: ⊃d for adjacent
                // hops, ⊃ across variables; then optimized on the full RIG.
                let ops: Vec<ChainOp> = alt
                    .ops
                    .iter()
                    .map(|o| match o {
                        SkOp::Adjacent => ChainOp::Direct,
                        SkOp::Star | SkOp::Closure | SkOp::Exact(_) => ChainOp::Incl,
                    })
                    .collect();
                let e = InclusionExpr::including(alt.names.clone(), ops, None);
                let opt = match stats {
                    Some(st) => {
                        let opt = optimize_costed(&e, full_rig, &|c| st.estimate_cost(c));
                        if !opt.trivially_empty {
                            advice.notes.push(format!(
                                "estimated cost of {}: {:.1}",
                                opt.expr,
                                st.estimate_cost(&opt.expr)
                            ));
                        }
                        opt
                    }
                    None => optimize(&e, full_rig),
                };
                if opt.trivially_empty {
                    advice.notes.push(format!("expression {e} is trivially empty"));
                    continue;
                }
                let names = opt.expr.names().to_vec();
                for n in &names {
                    advice.mentioned.insert(n.clone());
                }
                // Surviving ⊃d hops need separators on every RIG route.
                for (i, op) in opt.expr.ops().iter().enumerate() {
                    if *op != ChainOp::Direct {
                        continue;
                    }
                    let (a, b) = (names[i].clone(), names[i + 1].clone());
                    let seps = separators_for(full_rig, &a, &b);
                    advice
                        .separators
                        .entry((a.clone(), b.clone()))
                        .or_default()
                        .extend(seps.iter().cloned());
                    if !seps.is_empty() {
                        advice.notes.push(format!(
                            "direct inclusion {a} ⊃d {b} needs separators: {}",
                            seps.iter().cloned().collect::<Vec<_>>().join(", ")
                        ));
                    }
                }
            }
        }
    }
    advice.index_set = advice.mentioned.clone();
    for seps in advice.separators.values() {
        advice.index_set.extend(seps.iter().cloned());
    }
    advice
}

/// Chooses one non-terminal per full-RIG route `a → … → b` (beyond the bare
/// edge), greedily preferring names shared by many routes. Only nodes on
/// longer routes need indexing — the direct edge itself needs none.
fn separators_for(rig: &Rig, a: &str, b: &str) -> BTreeSet<String> {
    // Enumerate the simple routes a → b (the grammar-derived RIGs here are
    // small; routes are bounded by the node count).
    let mut routes: Vec<Vec<String>> = Vec::new();
    let mut path: Vec<String> = Vec::new();
    fn dfs(rig: &Rig, cur: &str, b: &str, path: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
        if out.len() >= 64 {
            return; // enough routes to choose separators from
        }
        for next in rig.successors(cur) {
            if next == b {
                out.push(path.clone());
            } else if !path.iter().any(|p| p == next) && next != b {
                path.push(next.to_owned());
                dfs(rig, next, b, path, out);
                path.pop();
            }
        }
    }
    dfs(rig, a, b, &mut path, &mut routes);
    // Routes with intermediates need a separator each; pick greedily by
    // coverage.
    let mut uncovered: Vec<&Vec<String>> = routes.iter().filter(|r| !r.is_empty()).collect();
    let mut chosen = BTreeSet::new();
    while !uncovered.is_empty() {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &uncovered {
            for n in *r {
                *counts.entry(n.as_str()).or_insert(0) += 1;
            }
        }
        let best = counts
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(n, _)| n.to_owned())
            .expect("uncovered routes have intermediates");
        uncovered.retain(|r| !r.contains(&best));
        chosen.insert(best);
    }
    chosen
}

fn collect_paths(q: &Query, out: &mut Vec<(String, Vec<crate::QStep>)>) {
    fn walk(c: &Cond, out: &mut Vec<(String, Vec<crate::QStep>)>) {
        match c {
            Cond::Eq(p, rhs) => {
                out.push((p.var.clone(), p.steps.clone()));
                if let RightHand::Path(qp) = rhs {
                    out.push((qp.var.clone(), qp.steps.clone()));
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Cond::Not(a) => walk(a, out),
        }
    }
    if let Some(w) = &q.where_ {
        walk(w, out);
    }
    if let Projection::Path(p) = &q.select {
        out.push((p.var.clone(), p.steps.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use qof_grammar::{lit, nt, Grammar, StructuringSchema, TokenPattern, ValueBuilder};

    fn bib_schema() -> (StructuringSchema, Rig) {
        let g = Grammar::builder("Ref_Set")
            .repeat("Ref_Set", "Reference", None, ValueBuilder::Set)
            .seq(
                "Reference",
                [lit("{"), nt("Key"), nt("Authors"), nt("Editors"), lit("}")],
                ValueBuilder::ObjectAuto("Reference".into()),
            )
            .token("Key", TokenPattern::Word, ValueBuilder::Atom)
            .repeat("Authors", "Name", Some(","), ValueBuilder::Set)
            .repeat("Editors", "Name", Some(","), ValueBuilder::Set)
            .seq("Name", [nt("First_Name"), nt("Last_Name")], ValueBuilder::TupleAuto)
            .token("First_Name", TokenPattern::Initials, ValueBuilder::Atom)
            .token("Last_Name", TokenPattern::Word, ValueBuilder::Atom)
            .build()
            .unwrap();
        let rig = Rig::from_grammar(&g);
        (StructuringSchema::new(g).with_view("References", "Reference"), rig)
    }

    #[test]
    fn author_query_needs_authors_and_no_separator() {
        let (schema, rig) = bib_schema();
        let q =
            parse_query("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"")
                .unwrap();
        let advice = advise(&schema, &rig, &[q]);
        // Optimized expression: Reference ⊃ Authors ⊃ σ(Last_Name) — all
        // hops weakened to ⊃, so no separators are required.
        assert!(advice.separators.values().all(BTreeSet::is_empty));
        assert!(advice.index_set.contains("Reference"));
        assert!(advice.index_set.contains("Authors"));
        assert!(advice.index_set.contains("Last_Name"));
        // Name and Editors are NOT needed.
        assert!(!advice.index_set.contains("Name"));
        assert!(!advice.index_set.contains("Editors"));
    }

    #[test]
    fn star_query_needs_even_less() {
        let (schema, rig) = bib_schema();
        let q = parse_query("SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"").unwrap();
        let advice = advise(&schema, &rig, &[q]);
        assert_eq!(
            advice.index_set,
            ["Reference", "Last_Name"].iter().map(ToString::to_string).collect()
        );
    }

    #[test]
    fn surviving_direct_hop_gets_separators() {
        // A grammar where A ⊃d B survives: two routes A→B (direct edge and
        // A→C→B) and B not rightmost.
        let mut rig = Rig::new();
        rig.add_edge("A", "B");
        rig.add_edge("A", "C");
        rig.add_edge("C", "B");
        rig.add_edge("B", "D");
        let seps = separators_for(&rig, "A", "B");
        assert_eq!(seps, ["C"].iter().map(ToString::to_string).collect());
    }

    #[test]
    fn costed_advice_matches_uncosted_on_empty_stats_and_annotates_costs() {
        let (schema, rig) = bib_schema();
        let q =
            parse_query("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"")
                .unwrap();
        let stats = StatsStore::new();
        let plain = advise(&schema, &rig, std::slice::from_ref(&q));
        let costed = advise_costed(&schema, &rig, &[q], &stats);
        // Ties keep the canonical form, so the recommended set is identical…
        assert_eq!(costed.index_set, plain.index_set);
        assert_eq!(costed.separators, plain.separators);
        // …but every surviving expression carries its estimate.
        assert!(
            costed.notes.iter().any(|n| n.starts_with("estimated cost of ")),
            "{:?}",
            costed.notes
        );
        assert!(!plain.notes.iter().any(|n| n.starts_with("estimated cost of ")));
    }

    #[test]
    fn workload_unions_requirements() {
        let (schema, rig) = bib_schema();
        let q1 =
            parse_query("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"")
                .unwrap();
        let q2 = parse_query("SELECT r FROM References r WHERE r.Key = \"Key1\"").unwrap();
        let advice = advise(&schema, &rig, &[q1, q2]);
        assert!(advice.index_set.contains("Key"));
        assert!(advice.index_set.contains("Authors"));
    }
}
