//! The region inclusion graph (RIG, §3): nodes are region names; an edge
//! `(Ri, Rj)` states that an `Ri` region *can directly include* an `Rj`
//! region. A RIG plays the role of a schema for region instances
//! (Definition 3.1), and the optimizer's rewrites are justified by
//! reachability properties of this graph (Proposition 3.5).

use qof_grammar::Grammar;
use qof_pat::Instance;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// A region inclusion graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rig {
    nodes: Vec<String>,
    by_name: HashMap<String, u32>,
    out: Vec<BTreeSet<u32>>,
}

/// A violation of Definition 3.1: an instance region pair in direct
/// inclusion whose names have no RIG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RigViolation {
    /// Name of the including region.
    pub outer: String,
    /// Name of the directly included region.
    pub inner: String,
}

impl fmt::Display for RigViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance violates RIG: {} directly includes {} but the edge is absent",
            self.outer, self.inner
        )
    }
}

impl Rig {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node if absent, returning its id.
    pub fn add_node(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.out.push(BTreeSet::new());
        id
    }

    /// Adds an edge (creating nodes as needed).
    pub fn add_edge(&mut self, from: &str, to: &str) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        self.out[f as usize].insert(t);
    }

    /// Derives the RIG of a *fully indexed* natural structuring schema
    /// (§4.2): nodes are all non-terminals except the root; there is an
    /// edge `(Ai, Aj)` iff `Aj` appears on the right-hand side of a rule
    /// for `Ai`.
    pub fn from_grammar(grammar: &Grammar) -> Rig {
        let mut rig = Rig::new();
        for (id, name) in grammar.symbols() {
            if id == grammar.root() {
                continue;
            }
            rig.add_node(name);
            for child in grammar.children_of(id) {
                if child != grammar.root() {
                    rig.add_edge(name, grammar.name(child));
                }
            }
        }
        rig
    }

    /// Derives the partial RIG for an indexed subset (§6.1): nodes are the
    /// indexed names; edge `(Ai, Aj)` iff the full RIG has a path from `Ai`
    /// to `Aj` where all intermediate nodes are *not* indexed.
    pub fn partial(&self, indexed: &BTreeSet<String>) -> Rig {
        let mut rig = Rig::new();
        for name in indexed {
            if self.by_name.contains_key(name) {
                rig.add_node(name);
            }
        }
        for name in indexed {
            let Some(&start) = self.by_name.get(name) else { continue };
            // BFS through non-indexed intermediates.
            let mut seen = vec![false; self.nodes.len()];
            let mut queue: VecDeque<u32> = self.out[start as usize].iter().copied().collect();
            while let Some(n) = queue.pop_front() {
                if seen[n as usize] {
                    continue;
                }
                seen[n as usize] = true;
                if indexed.contains(&self.nodes[n as usize]) {
                    rig.add_edge(name, &self.nodes[n as usize]);
                    continue; // do not traverse through indexed nodes
                }
                for &m in &self.out[n as usize] {
                    queue.push_back(m);
                }
            }
        }
        rig
    }

    /// The node names.
    pub fn node_names(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(BTreeSet::len).sum()
    }

    /// The node names, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// Whether `name` is a node.
    pub fn has_node(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Whether the edge `(from, to)` exists.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        match (self.by_name.get(from), self.by_name.get(to)) {
            (Some(&f), Some(&t)) => self.out[f as usize].contains(&t),
            _ => false,
        }
    }

    /// Direct successors of a node.
    pub fn successors(&self, name: &str) -> Vec<&str> {
        match self.by_name.get(name) {
            Some(&id) => {
                self.out[id as usize].iter().map(|&t| self.nodes[t as usize].as_str()).collect()
            }
            None => Vec::new(),
        }
    }

    /// Reachability `from → to` by a walk of length ≥ 1, optionally avoiding
    /// a node entirely.
    fn reach(&self, from: u32, to: u32, avoid_node: Option<u32>) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &n in &self.out[from as usize] {
            if Some(n) == avoid_node {
                continue;
            }
            queue.push_back(n);
        }
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if seen[n as usize] {
                continue;
            }
            seen[n as usize] = true;
            for &m in &self.out[n as usize] {
                if Some(m) != avoid_node {
                    queue.push_back(m);
                }
            }
        }
        false
    }

    /// Whether a path of length ≥ 1 exists from `from` to `to`.
    pub fn has_path(&self, from: &str, to: &str) -> bool {
        match (self.by_name.get(from), self.by_name.get(to)) {
            (Some(&f), Some(&t)) => self.reach(f, t, None),
            _ => false,
        }
    }

    /// Whether `name` sits on a RIG cycle — i.e. regions of this type can
    /// nest inside regions of the same type. Closure (`+`) over a name off
    /// every cycle can never reach a second nesting level.
    pub fn on_cycle(&self, name: &str) -> bool {
        self.has_path(name, name)
    }

    /// Proposition 3.5(a), first disjunct: the edge `(from, to)` exists and
    /// is the **only** path from `from` to `to`.
    ///
    /// "Paths" are walks: region names may repeat along an actual nesting
    /// chain (self-nested regions), so a route through a cycle counts as a
    /// second path.
    pub fn only_path_edge(&self, from: &str, to: &str) -> bool {
        let (Some(&f), Some(&t)) = (self.by_name.get(from), self.by_name.get(to)) else {
            return false;
        };
        if !self.out[f as usize].contains(&t) {
            return false;
        }
        // Another walk exists iff some other successor of `from` reaches
        // `to`, or `to` lies on a cycle (the walk re-enters `to`).
        let other = self.out[f as usize].iter().any(|&c| c != t && self.reach(c, t, None))
            || self.reach(t, t, None);
        !other
    }

    /// Proposition 3.5(a), second disjunct: the edge exists and **every**
    /// path (walk) from `from` to `to` starts with it — no other successor
    /// of `from` reaches `to` at all.
    pub fn all_paths_start_with_edge(&self, from: &str, to: &str) -> bool {
        let (Some(&f), Some(&t)) = (self.by_name.get(from), self.by_name.get(to)) else {
            return false;
        };
        if !self.out[f as usize].contains(&t) {
            return false;
        }
        self.out[f as usize].iter().filter(|&&c| c != t).all(|&c| !self.reach(c, t, None))
    }

    /// The dual of [`Rig::all_paths_start_with_edge`] for projection
    /// chains: the edge exists and **every** path (walk) from `from` to
    /// `to` ends with it — no other predecessor of `to` is reachable from
    /// `from`. (Weakening `⊂d` at the outermost end of a projection chain
    /// requires the *last* step to be the edge, since the deepest regions —
    /// not the containers — are the result.)
    pub fn all_paths_end_with_edge(&self, from: &str, to: &str) -> bool {
        let (Some(&f), Some(&t)) = (self.by_name.get(from), self.by_name.get(to)) else {
            return false;
        };
        if !self.out[f as usize].contains(&t) {
            return false;
        }
        // Predecessors of `to` other than `from` must be unreachable from
        // `from` (reachable one would yield a walk ending with a different
        // edge into `to`).
        (0..self.nodes.len() as u32)
            .all(|c| c == f || !self.out[c as usize].contains(&t) || !self.reach(f, c, None))
    }

    /// Proposition 3.5(b): every path from `from` to `to` passes through
    /// `via` (equivalently: `to` is unreachable once `via` is removed).
    /// Requires at least one path to exist (non-trivial expressions).
    pub fn all_paths_pass_through(&self, from: &str, to: &str, via: &str) -> bool {
        let (Some(&f), Some(&t), Some(&v)) =
            (self.by_name.get(from), self.by_name.get(to), self.by_name.get(via))
        else {
            return false;
        };
        if v == f || v == t {
            return false;
        }
        self.reach(f, t, None) && !self.reach(f, t, Some(v))
    }

    /// Checks Definition 3.1 against an instance, modulo *extent collapse*:
    /// a one-element repetition has the same extents as its child (e.g. a
    /// single-author `Authors` region equals its `Name` region), making the
    /// child *formally* directly included in the grandparent. Such a pair is
    /// licensed when some name sharing the inner region's extents has the
    /// edge instead. Returns the first unlicensed strict direct inclusion.
    pub fn check_instance(&self, instance: &Instance) -> Result<(), RigViolation> {
        // Map extents -> names carrying them.
        let mut names_of: BTreeMap<qof_pat::Region, Vec<&str>> = BTreeMap::new();
        for (name, set) in instance.iter() {
            for r in set {
                names_of.entry(*r).or_default().push(name);
            }
        }
        let forest = instance.build_forest();
        for (i, r) in forest.regions().iter().enumerate() {
            let Some(p) = forest.parent_of(i) else { continue };
            let parent = forest.regions()[p];
            let outers = &names_of[&parent];
            let inners = &names_of[r];
            for inner in inners {
                let licensed = outers.iter().any(|o| self.has_edge(o, inner))
                    || inners.iter().any(|m| m != inner && self.has_edge(m, inner));
                if !licensed {
                    return Err(RigViolation {
                        outer: outers.first().copied().unwrap_or("?").to_owned(),
                        inner: (*inner).to_owned(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Rig {
    /// Graphviz rendering of the graph — the paper's RIG diagrams (§3.2,
    /// §5.1, §6.1) as `dot` input, with an optional set of highlighted
    /// (e.g. query-path) nodes.
    pub fn to_dot(&self, highlight: &[&str]) -> String {
        let mut out = String::from("digraph RIG {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, name) in self.nodes.iter().enumerate() {
            if highlight.contains(&name.as_str()) {
                out.push_str(&format!("  \"{name}\" [style=filled, fillcolor=lightgrey];\n"));
            }
            for &t in &self.out[i] {
                out.push_str(&format!("  \"{name}\" -> \"{}\";\n", self.nodes[t as usize]));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Rig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, name) in self.nodes.iter().enumerate() {
            let succs: Vec<&str> =
                self.out[i].iter().map(|&t| self.nodes[t as usize].as_str()).collect();
            writeln!(f, "{name} -> {{{}}}", succs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qof_pat::{Region, RegionSet};

    /// The paper's §3.2 BibTeX RIG fragment:
    /// Reference → {Key, Authors, Title, Editors};
    /// Authors → Name; Editors → Name; Name → {`First_Name`, `Last_Name`}.
    fn bib_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("Reference", "Key");
        g.add_edge("Reference", "Authors");
        g.add_edge("Reference", "Title");
        g.add_edge("Reference", "Editors");
        g.add_edge("Authors", "Name");
        g.add_edge("Editors", "Name");
        g.add_edge("Name", "First_Name");
        g.add_edge("Name", "Last_Name");
        g
    }

    #[test]
    fn paths_and_edges() {
        let g = bib_rig();
        assert!(g.has_edge("Authors", "Name"));
        assert!(!g.has_edge("Reference", "Name"));
        assert!(g.has_path("Reference", "Last_Name"));
        assert!(!g.has_path("Last_Name", "Reference"));
        assert!(!g.has_path("Title", "Name"));
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn only_path_edge_tests() {
        let g = bib_rig();
        // Authors → Name is the only path from Authors to Name.
        assert!(g.only_path_edge("Authors", "Name"));
        // Name → Last_Name likewise.
        assert!(g.only_path_edge("Name", "Last_Name"));
        // No edge Reference → Name at all.
        assert!(!g.only_path_edge("Reference", "Name"));
        // Add a second route Authors → Alias → Name: no longer the only path.
        let mut g2 = bib_rig();
        g2.add_edge("Authors", "Alias");
        g2.add_edge("Alias", "Name");
        assert!(!g2.only_path_edge("Authors", "Name"));
    }

    #[test]
    fn all_paths_pass_through_tests() {
        let g = bib_rig();
        // Every path Reference → Last_Name passes through Name...
        assert!(g.all_paths_pass_through("Reference", "Last_Name", "Name"));
        // ...but not through Authors (Editors route exists).
        assert!(!g.all_paths_pass_through("Reference", "Last_Name", "Authors"));
        // Authors → Last_Name passes through Name.
        assert!(g.all_paths_pass_through("Authors", "Last_Name", "Name"));
        // Endpoints don't count as "via".
        assert!(!g.all_paths_pass_through("Authors", "Name", "Authors"));
    }

    #[test]
    fn all_paths_start_with_edge_tests() {
        let g = bib_rig();
        assert!(g.all_paths_start_with_edge("Authors", "Name"));
        assert!(g.all_paths_start_with_edge("Name", "Last_Name"));
        // Reference → Authors: holds (the only way into Authors).
        assert!(g.all_paths_start_with_edge("Reference", "Authors"));
        // Reference has no edge to Last_Name.
        assert!(!g.all_paths_start_with_edge("Reference", "Last_Name"));
        // Add edge Reference → Name: now Reference → Name holds only if no
        // other successor reaches Name — Authors and Editors do.
        let mut g2 = bib_rig();
        g2.add_edge("Reference", "Name");
        assert!(!g2.all_paths_start_with_edge("Reference", "Name"));
    }

    #[test]
    fn all_paths_end_with_edge_tests() {
        let g = bib_rig();
        // Authors → Name ends every walk into Name? Editors → Name also
        // exists, but Editors is not reachable from Authors — so from
        // Authors, yes.
        assert!(g.all_paths_end_with_edge("Authors", "Name"));
        // Self-nested regions: E inside E. A → E with E → D → E: a walk
        // A → E → D → E ends with (D, E), not (A, E).
        let mut c = Rig::new();
        c.add_edge("A", "E");
        c.add_edge("E", "D");
        c.add_edge("D", "E");
        assert!(!c.all_paths_end_with_edge("A", "E"));
    }

    #[test]
    fn cycles_are_supported() {
        // Section → Subsections → Section (self-nesting, §3).
        let mut g = Rig::new();
        g.add_edge("Section", "Subsections");
        g.add_edge("Subsections", "Section");
        g.add_edge("Section", "Head");
        assert!(g.has_path("Section", "Section"));
        assert!(g.has_path("Subsections", "Head"));
        // Section → Head is an edge, but a longer route exists through the
        // cycle: Section → Subsections → Section → Head.
        assert!(!g.only_path_edge("Section", "Head"));
        assert!(g.all_paths_pass_through("Subsections", "Head", "Section"));
    }

    #[test]
    fn partial_rig_derivation() {
        let g = bib_rig();
        // Zp = {Reference, Key, Last_Name} — §6.1's example.
        let indexed: BTreeSet<String> =
            ["Reference", "Key", "Last_Name"].iter().map(ToString::to_string).collect();
        let p = g.partial(&indexed);
        assert_eq!(p.node_count(), 3);
        assert!(p.has_edge("Reference", "Key"));
        assert!(p.has_edge("Reference", "Last_Name"));
        assert!(!p.has_edge("Key", "Last_Name"));
    }

    #[test]
    fn partial_rig_stops_at_indexed_nodes() {
        let g = bib_rig();
        let indexed: BTreeSet<String> =
            ["Reference", "Authors", "Last_Name"].iter().map(ToString::to_string).collect();
        let p = g.partial(&indexed);
        // Reference reaches Last_Name through Editors (not indexed) without
        // passing an indexed node, so the edge exists...
        assert!(p.has_edge("Reference", "Last_Name"));
        // ...and also through Authors, but that route is cut at Authors.
        assert!(p.has_edge("Reference", "Authors"));
        assert!(p.has_edge("Authors", "Last_Name"));
    }

    #[test]
    fn instance_satisfaction() {
        let g = bib_rig();
        let mut inst = Instance::new();
        inst.insert("Reference", RegionSet::from_regions(vec![Region::new(0, 100)]));
        inst.insert("Authors", RegionSet::from_regions(vec![Region::new(10, 40)]));
        inst.insert("Name", RegionSet::from_regions(vec![Region::new(12, 30)]));
        assert!(g.check_instance(&inst).is_ok());
        // A Name directly inside a Reference violates the BibTeX RIG.
        let mut bad = Instance::new();
        bad.insert("Reference", RegionSet::from_regions(vec![Region::new(0, 100)]));
        bad.insert("Name", RegionSet::from_regions(vec![Region::new(12, 30)]));
        let v = g.check_instance(&bad).unwrap_err();
        assert_eq!(v.outer, "Reference");
        assert_eq!(v.inner, "Name");
    }

    #[test]
    fn display_lists_adjacency() {
        let g = bib_rig();
        let s = g.to_string();
        assert!(s.contains("Authors -> {Name}"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let g = bib_rig();
        let dot = g.to_dot(&["Authors"]);
        assert!(dot.starts_with("digraph RIG {"));
        assert!(dot.contains("\"Authors\" -> \"Name\";"));
        assert!(dot.contains("fillcolor=lightgrey"));
        assert!(dot.ends_with("}\n"));
    }
}
