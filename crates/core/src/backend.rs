//! The word-index backend behind a [`FileDatabase`](crate::FileDatabase).
//!
//! Queries see only the [`WordLookup`] trait; this enum picks what answers
//! it: the classic in-memory [`WordIndex`] (what `build` produces) or a
//! [`CompressedWordIndex`] paging delta-coded posting blocks out of a
//! `.qofx` file (what `open` produces). Mutation — `add_file` — always
//! happens on the in-memory form, so a compressed backend materializes
//! itself on first write and stays in memory from then on.

use qof_text::{CompressedWordIndex, WordIndex, WordLookup};

/// Which concrete index implementation a database is running on.
pub(crate) enum IndexBackend {
    /// Uncompressed in-memory inverted index (the build path).
    Mem(WordIndex),
    /// Compressed index paged from a `.qofx` file (the open path).
    Qofx(CompressedWordIndex),
}

impl IndexBackend {
    /// The backend as the query-side trait object.
    pub fn lookup(&self) -> &dyn WordLookup {
        match self {
            IndexBackend::Mem(w) => w,
            IndexBackend::Qofx(c) => c,
        }
    }

    /// Stable label for metrics and `qof stats` (`mem` / `qofx`).
    pub fn label(&self) -> &'static str {
        match self {
            IndexBackend::Mem(_) => "mem",
            IndexBackend::Qofx(_) => "qofx",
        }
    }

    /// The mutable in-memory index, materializing a compressed backend
    /// first (decodes every posting list once; incremental indexing then
    /// proceeds exactly as on a built database).
    pub fn make_mem(&mut self) -> &mut WordIndex {
        if let IndexBackend::Qofx(c) = self {
            *self = IndexBackend::Mem(c.to_word_index());
        }
        match self {
            IndexBackend::Mem(w) => w,
            IndexBackend::Qofx(_) => unreachable!("materialized above"),
        }
    }
}
