//! The query planner: translates a parsed query into optimized region
//! expressions over the *indexed* names (§5.1/§6.1), decides whether the
//! index computes each part exactly or as a candidate superset (§6.3), and
//! prepares the residual parse-and-filter work (§6.2).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use qof_grammar::{PathFilter, StructuringSchema};
use qof_pat::{fnv1a64, Instance, RegionExpr};

use crate::analyze::absint::{certify, AbsInterp, CardInterval};
use crate::cost::{CachedChain, PlanCache, StatsStore};
use crate::optimizer::{optimize, optimize_costed, RewriteKind};
use crate::residual::{compile_cond, compile_steps, CompiledCond, CompiledPath};
use crate::trace::NodeFact;
use crate::translate::{filter_paths, resolve_path, PathSpec, SkOp, TranslateError};
use crate::{ChainOp, Cond, Direction, InclusionExpr, Projection, QPath, Query, Rig, SelectKind};

/// Whether a candidate set is provably the exact answer (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// Candidates coincide with the answer; no parsing needed to filter.
    Exact,
    /// Candidates are a superset; they must be parsed and filtered.
    Candidates,
}

/// A planned condition sub-tree, interpreted by the executor.
#[derive(Debug, Clone)]
pub enum CondNode {
    /// Fully index-computable leaf: evaluates to view-region candidates.
    IndexOnly {
        /// The region expression producing view-region candidates.
        expr: RegionExpr,
        /// Pretty form of the (optimized) inclusion expressions.
        display: String,
        /// Whether the candidates are exact.
        exact: bool,
    },
    /// Same-variable attribute comparison (§5.2): locate both attribute
    /// region sets through the index, then join their contents.
    ContentCompare {
        /// Deep regions of the left path.
        left: RegionExpr,
        /// Deep regions of the right path.
        right: RegionExpr,
        /// Pretty form.
        display: String,
        /// Whether the located attribute sets are exact.
        exact: bool,
    },
    /// Conjunction (intersection of candidates).
    And(Box<CondNode>, Box<CondNode>),
    /// Disjunction (union of candidates).
    Or(Box<CondNode>, Box<CondNode>),
    /// Negation (complement w.r.t. the view extent; only exact when the
    /// child is exact — otherwise the executor falls back to all views).
    Not(Box<CondNode>),
}

/// Plan for one range variable.
#[derive(Debug, Clone)]
pub struct VarPlan {
    /// The variable.
    pub var: String,
    /// The view name.
    pub view: String,
    /// The non-terminal the view ranges over.
    pub symbol: String,
    /// The planned local condition, if any.
    pub cond: Option<CondNode>,
    /// The compiled local condition, for residual filtering after parsing.
    pub residual: Option<CompiledCond>,
    /// Push-down filter covering every path the query touches on this var.
    pub filter: PathFilter,
}

/// Plan for the (single) cross-variable join.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Left variable.
    pub left_var: String,
    /// Deep regions of the left path.
    pub left: RegionExpr,
    /// Compiled left path (for residual re-checking).
    pub left_steps: CompiledPath,
    /// Right variable.
    pub right_var: String,
    /// Deep regions of the right path.
    pub right: RegionExpr,
    /// Compiled right path.
    pub right_steps: CompiledPath,
    /// Whether both located sets are exact.
    pub exact: bool,
    /// Pretty form.
    pub display: String,
}

/// Plan for the projection.
#[derive(Debug, Clone)]
pub enum ProjPlan {
    /// `SELECT r`: materialize whole objects.
    Objects {
        /// The projected variable.
        var: String,
    },
    /// `SELECT r.p`: attribute values.
    Values {
        /// The projected variable.
        var: String,
        /// Compiled path to evaluate on materialized objects.
        steps: CompiledPath,
        /// Index-side projection chain (deep regions), when available:
        /// `(expression, display, exact)`.
        chain: Option<(RegionExpr, String, bool)>,
    },
}

/// One optimizer rewrite applied while planning, tagged with the paper
/// proposition that licensed it — the raw material of `--explain-analyze`'s
/// "optimizer rewrites" section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRewrite {
    /// The licensing proposition: `"3.3"` (trivial emptiness), `"3.5(a)"`
    /// (⊃d weakening) or `"3.5(b)"` (chain shortening).
    pub proposition: String,
    /// Human-readable description of the rewrite and its justification.
    pub description: String,
    /// The inclusion expression after this rewrite (`∅` for 3.3).
    pub result: String,
    /// Whether the abstract-interpretation certifier signed the step off
    /// (structural replay + Proposition 3.5 side condition + compatible
    /// pre/post abstract states).
    pub certified: bool,
}

/// A complete query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-variable plans, in FROM order.
    pub vars: Vec<VarPlan>,
    /// The cross-variable join, if any.
    pub join: Option<JoinPlan>,
    /// The projection.
    pub projection: ProjPlan,
    /// Every optimizer rewrite applied while lowering the query's chains,
    /// in application order.
    pub rewrites: Vec<PlanRewrite>,
    /// The plan's deterministic workload fingerprint: FNV-1a over the
    /// view symbols and every *pre-optimization* chain key the lowering
    /// consulted (the plan cache's own keys), so one fingerprint ⇔ one
    /// optimize-and-certify outcome, stable across processes. Trace
    /// schema v6 stamps it; `GET /workload` and `qof qlog analyze`
    /// aggregate under it.
    pub fingerprint: u64,
}

/// Planning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Path translation failed.
    Translate(TranslateError),
    /// The FROM clause references an unknown view.
    UnknownView(String),
    /// The view's non-terminal is not indexed, so candidates cannot be
    /// located (§6 requires at least the view regions).
    ViewNotIndexed(String),
    /// A query shape outside the supported fragment.
    Unsupported(String),
    /// An internal invariant broke during planning. Always a bug in the
    /// engine, never in the query.
    Internal(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Translate(e) => write!(f, "{e}"),
            PlanError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            PlanError::ViewNotIndexed(s) => {
                write!(f, "view symbol `{s}` is not indexed; no candidate regions can be located")
            }
            PlanError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            PlanError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<TranslateError> for PlanError {
    fn from(e: TranslateError) -> Self {
        PlanError::Translate(e)
    }
}

/// The planner: borrows the schema, the instance (for the indexed names)
/// and both RIGs.
pub struct Planner<'a> {
    /// The structuring schema.
    pub schema: &'a StructuringSchema,
    /// The region-index instance (its names define the partial index).
    pub instance: &'a Instance,
    /// RIG of the fully indexed grammar.
    pub full_rig: &'a Rig,
    /// RIG of the indexed subset.
    pub partial_rig: &'a Rig,
    /// Whether the index spec covers every non-terminal (full indexing).
    pub full_indexing: bool,
    /// Strict mode: a rewrite the certifier cannot certify is *suppressed*
    /// (the run stays unoptimized) instead of merely flagged.
    pub strict: bool,
    /// Index statistics for cost-ranked normal-form selection; `None`
    /// falls back to the purely syntactic leftmost-first optimizer.
    pub stats: Option<&'a StatsStore>,
    /// Memoized per-chain lowering results; `None` plans from scratch.
    pub plan_cache: Option<&'a PlanCache>,
}

/// Why a projected hop lost §6.3 exactness (surfaced by `qof check` as
/// diagnostic `QOF011`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InexactReason {
    /// More than one viable walk realizes the `⊃d` hop in the partial
    /// universe (§6.3's uniqueness condition fails).
    AmbiguousRoute,
    /// A `⊃^n` nesting count crosses a collapsible link, so forest levels
    /// do not correspond to grammar hops.
    CollapsibleDepth,
    /// A `⊃^n` hop with non-indexed intermediates: the nesting count
    /// cannot be taken on the partial forest.
    PartialIndexGap,
    /// The target attribute itself is not indexed; the deepest indexed
    /// name only approximates it.
    TargetNotIndexed,
}

/// One hop of a query path that the index cannot answer exactly, with the
/// ambiguous edge named (§6.3's "decide exactness from the RIG alone").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InexactHop {
    /// The containing end of the hop.
    pub from: String,
    /// The contained end of the hop.
    pub to: String,
    /// Why exactness is lost.
    pub reason: InexactReason,
}

/// One projected chain: names/ops over indexed names only.
#[derive(Debug, Clone)]
struct ProjectedChain {
    names: Vec<String>,
    ops: Vec<EOp>,
    exact: bool,
    /// The hops that cost exactness, for diagnostics.
    hops: Vec<InexactHop>,
    /// Selector on the deepest element.
    selector: Option<(SelectKind, String)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EOp {
    Direct,
    Incl,
    Exact(u32),
}

impl<'a> Planner<'a> {
    /// Plans a query.
    pub fn plan(&self, q: &Query) -> Result<Plan, PlanError> {
        if q.ranges.is_empty() {
            return Err(PlanError::Unsupported("empty FROM clause".into()));
        }
        let mut vars: Vec<VarPlan> = Vec::new();
        for (view, var) in &q.ranges {
            let symbol = self
                .schema
                .view_symbol_name(view)
                .ok_or_else(|| PlanError::UnknownView(view.clone()))?
                .to_owned();
            if !self.instance.has(&symbol) {
                return Err(PlanError::ViewNotIndexed(symbol));
            }
            vars.push(VarPlan {
                var: var.clone(),
                view: view.clone(),
                symbol,
                cond: None,
                residual: None,
                filter: PathFilter::none(),
            });
        }

        // Split the WHERE into per-var conjuncts and cross-var joins.
        let mut local: Vec<(String, Vec<Cond>)> =
            vars.iter().map(|v| (v.var.clone(), Vec::new())).collect();
        let mut joins: Vec<(QPath, QPath)> = Vec::new();
        if let Some(w) = &q.where_ {
            for conjunct in flatten_and(w) {
                let used = vars_of(&conjunct);
                match used.len() {
                    1 => {
                        let v = used.into_iter().next().expect("one var");
                        let slot =
                            local.iter_mut().find(|(name, _)| *name == v).ok_or_else(|| {
                                PlanError::Unsupported(format!("unknown variable `{v}`"))
                            })?;
                        slot.1.push(conjunct);
                    }
                    2 => match conjunct {
                        Cond::Eq(p, crate::RightHand::Path(qp)) => joins.push((p, qp)),
                        other => {
                            return Err(PlanError::Unsupported(format!(
                                "cross-variable condition `{other}` must be a top-level equality"
                            )))
                        }
                    },
                    n => {
                        return Err(PlanError::Unsupported(format!("condition uses {n} variables")))
                    }
                }
            }
        }
        if joins.len() > 1 {
            return Err(PlanError::Unsupported(
                "at most one cross-variable join is supported".into(),
            ));
        }
        if vars.len() > 2 {
            return Err(PlanError::Unsupported("at most two range variables".into()));
        }
        if vars.len() == 2 && joins.is_empty() {
            return Err(PlanError::Unsupported(
                "two range variables require a join condition".into(),
            ));
        }

        // Plan per-var conditions, collecting push-down filter paths and
        // the optimizer rewrites fired along the way. Every chain key the
        // lowering consults is also collected: the plan's workload
        // fingerprint hashes them in planning order.
        let mut rewrites: Vec<PlanRewrite> = Vec::new();
        let mut fp_keys: Vec<String> = Vec::new();
        for vp in &mut vars {
            let conds = &local
                .iter()
                .find(|(n, _)| *n == vp.var)
                .ok_or_else(|| {
                    PlanError::Internal(format!("no condition slot for variable `{}`", vp.var))
                })?
                .1;
            let mut filter_specs: Vec<Vec<String>> = Vec::new();
            let planned = conds
                .iter()
                .map(|c| {
                    self.plan_cond(c, &vp.symbol, &mut filter_specs, &mut rewrites, &mut fp_keys)
                })
                .collect::<Result<Vec<_>, _>>()?;
            vp.cond = planned.into_iter().reduce(|a, b| CondNode::And(Box::new(a), Box::new(b)));
            let folded = conds.iter().cloned().reduce(|a, b| Cond::And(Box::new(a), Box::new(b)));
            vp.residual = match folded {
                None => None,
                Some(c) => {
                    let symbol = vp.symbol.clone();
                    Some(
                        compile_cond(&self.schema.grammar, &move |_| Some(symbol.clone()), &c)
                            .map_err(PlanError::Translate)?,
                    )
                }
            };
            vp.filter = PathFilter::from_paths(&filter_specs);
        }

        // Plan the join.
        let join = match joins.into_iter().next() {
            None => None,
            Some((p, qp)) => {
                let (lv, rv) = (p.var.clone(), qp.var.clone());
                let lsym = vars
                    .iter()
                    .find(|v| v.var == lv)
                    .ok_or_else(|| PlanError::Unsupported(format!("unknown variable `{lv}`")))?
                    .symbol
                    .clone();
                let rsym = vars
                    .iter()
                    .find(|v| v.var == rv)
                    .ok_or_else(|| PlanError::Unsupported(format!("unknown variable `{rv}`")))?
                    .symbol
                    .clone();
                let lspec = resolve_path(&self.schema.grammar, &lsym, &p.steps)?;
                let rspec = resolve_path(&self.schema.grammar, &rsym, &qp.steps)?;
                let (le, ld, lex) = self.deep_expr(&lspec, &mut rewrites, &mut fp_keys)?;
                let (re, rd, rex) = self.deep_expr(&rspec, &mut rewrites, &mut fp_keys)?;
                // Extend the push-down filters with the join paths.
                for vp in &mut vars {
                    let spec = if vp.var == lv {
                        &lspec
                    } else if vp.var == rv {
                        &rspec
                    } else {
                        continue;
                    };
                    let mut f = PathFilter::from_paths(&filter_paths(spec));
                    f.merge(&vp.filter);
                    vp.filter = f;
                }
                Some(JoinPlan {
                    left_var: lv,
                    left: le,
                    left_steps: compile_steps(&self.schema.grammar, &lsym, &p.steps)?,
                    right_var: rv,
                    right: re,
                    right_steps: compile_steps(&self.schema.grammar, &rsym, &qp.steps)?,
                    exact: lex && rex,
                    display: format!("join on content: [{ld}] = [{rd}]"),
                })
            }
        };

        // Plan the projection.
        let projection = match &q.select {
            Projection::Var(v) => {
                // SELECT r materializes whole objects: keep everything.
                if let Some(vp) = vars.iter_mut().find(|vp| vp.var == *v) {
                    vp.filter = PathFilter::all();
                }
                ProjPlan::Objects { var: v.clone() }
            }
            Projection::Path(p) => {
                let vp = vars.iter_mut().find(|vp| vp.var == p.var).ok_or_else(|| {
                    PlanError::Unsupported(format!("unknown variable `{}`", p.var))
                })?;
                let spec = resolve_path(&self.schema.grammar, &vp.symbol, &p.steps)?;
                let mut f = PathFilter::from_paths(&filter_paths(&spec));
                f.merge(&vp.filter);
                vp.filter = f;
                let chain = self.deep_expr(&spec, &mut rewrites, &mut fp_keys).ok();
                let steps = compile_steps(&self.schema.grammar, &vp.symbol, &p.steps)?;
                ProjPlan::Values { var: p.var.clone(), steps, chain }
            }
        };

        // The workload fingerprint. A single-chain plan (the common
        // shape) hashes exactly its chain key — the same key the plan
        // cache memoizes under and per-fingerprint calibration reads, so
        // the feedback loop closes on the identical value. Multi-chain
        // plans hash all keys in planning order; a bare scan hashes the
        // strict flag and view symbols (so scans of different views
        // differ). All material is deterministic spelling — the hash is
        // identical across processes for the same query shape.
        let fingerprint = match fp_keys.as_slice() {
            [single] => fnv1a64(single.as_bytes()),
            keys => {
                let mut material = format!("plan|strict={}", self.strict);
                for vp in &vars {
                    let _ = write!(material, "|var:{}", vp.symbol);
                }
                for key in keys {
                    let _ = write!(material, "|chain:{key}");
                }
                fnv1a64(material.as_bytes())
            }
        };
        Ok(Plan { vars, join, projection, rewrites, fingerprint })
    }

    /// Plans a single-variable condition.
    fn plan_cond(
        &self,
        cond: &Cond,
        view_symbol: &str,
        filters: &mut Vec<Vec<String>>,
        rewrites: &mut Vec<PlanRewrite>,
        fp_keys: &mut Vec<String>,
    ) -> Result<CondNode, PlanError> {
        match cond {
            Cond::Eq(p, crate::RightHand::Const(w)) => {
                let spec = resolve_path(&self.schema.grammar, view_symbol, &p.steps)?;
                filters.extend(filter_paths(&spec));
                let (expr, display, exact) = self.container_expr(&spec, w, rewrites, fp_keys)?;
                Ok(CondNode::IndexOnly { expr, display, exact })
            }
            Cond::Eq(p, crate::RightHand::Path(qp)) => {
                let lspec = resolve_path(&self.schema.grammar, view_symbol, &p.steps)?;
                let rspec = resolve_path(&self.schema.grammar, view_symbol, &qp.steps)?;
                filters.extend(filter_paths(&lspec));
                filters.extend(filter_paths(&rspec));
                let (le, ld, lex) = self.deep_expr(&lspec, rewrites, fp_keys)?;
                let (re, rd, rex) = self.deep_expr(&rspec, rewrites, fp_keys)?;
                Ok(CondNode::ContentCompare {
                    left: le,
                    right: re,
                    display: format!("content([{ld}]) = content([{rd}])"),
                    exact: lex && rex,
                })
            }
            Cond::And(a, b) => Ok(CondNode::And(
                Box::new(self.plan_cond(a, view_symbol, filters, rewrites, fp_keys)?),
                Box::new(self.plan_cond(b, view_symbol, filters, rewrites, fp_keys)?),
            )),
            Cond::Or(a, b) => Ok(CondNode::Or(
                Box::new(self.plan_cond(a, view_symbol, filters, rewrites, fp_keys)?),
                Box::new(self.plan_cond(b, view_symbol, filters, rewrites, fp_keys)?),
            )),
            Cond::Not(a) => Ok(CondNode::Not(Box::new(self.plan_cond(
                a,
                view_symbol,
                filters,
                rewrites,
                fp_keys,
            )?))),
        }
    }

    /// Builds the candidate expression producing **view regions** for a
    /// constant selection on a path, union over alternatives.
    fn container_expr(
        &self,
        spec: &PathSpec,
        word: &str,
        rewrites: &mut Vec<PlanRewrite>,
        fp_keys: &mut Vec<String>,
    ) -> Result<(RegionExpr, String, bool), PlanError> {
        // A trailing `*` in the constant selects by word prefix — PAT's
        // lexical search (`r.Last_Name = "Ch*"`).
        let selector = match word.strip_suffix('*') {
            Some(prefix) if !prefix.is_empty() => (SelectKind::Prefix, prefix.to_owned()),
            _ => (SelectKind::Eq, word.to_owned()),
        };
        let mut exprs: Vec<(RegionExpr, String, bool)> = Vec::new();
        for alt in &spec.alternatives {
            let chain = self.project_chain(alt, Some(selector.clone()));
            let (expr, display, exact) =
                self.lower_chain(&chain, Direction::Including, rewrites, fp_keys);
            exprs.push((expr, display, exact));
        }
        combine_union(exprs)
    }

    /// Builds the expression producing the **deep attribute regions** of a
    /// path (for projections and content joins), union over alternatives.
    fn deep_expr(
        &self,
        spec: &PathSpec,
        rewrites: &mut Vec<PlanRewrite>,
        fp_keys: &mut Vec<String>,
    ) -> Result<(RegionExpr, String, bool), PlanError> {
        let mut exprs: Vec<(RegionExpr, String, bool)> = Vec::new();
        for alt in &spec.alternatives {
            let chain = self.project_chain(alt, None);
            let (expr, display, exact) =
                self.lower_chain(&chain, Direction::IncludedIn, rewrites, fp_keys);
            exprs.push((expr, display, exact));
        }
        combine_union(exprs)
    }

    /// §6.1: projects a skeleton onto the indexed names, computing the
    /// connecting operators and the §6.3 exactness.
    fn project_chain(
        &self,
        alt: &crate::translate::Skeleton,
        selector: Option<(SelectKind, String)>,
    ) -> ProjectedChain {
        let indexed: BTreeSet<&str> = self.instance.names().collect();
        let mut names: Vec<String> = vec![alt.names[0].clone()];
        let mut ops: Vec<EOp> = Vec::new();
        let mut exact = true;
        let mut hops: Vec<InexactHop> = Vec::new();

        // Pending relation accumulated while dropping non-indexed names.
        let mut pending: Option<EOp> = None;
        let mut dropped_since_last = false;
        for (i, op) in alt.ops.iter().enumerate() {
            let next_name = &alt.names[i + 1];
            let step = match op {
                SkOp::Adjacent => EOp::Direct,
                SkOp::Star | SkOp::Closure => EOp::Incl,
                SkOp::Exact(n) => EOp::Exact(*n),
            };
            pending = Some(merge_eop(pending, step));
            // Scoped-index substitution (§7): an unindexed name may still be
            // indexed under an ancestor scope appearing earlier on the path.
            let scoped = alt.names[..=i]
                .iter()
                .rev()
                .map(|anc| qof_grammar::IndexSpec::scoped_key(anc, next_name))
                .find(|key| self.instance.has(key));
            let plain = indexed.contains(next_name.as_str());
            if plain || scoped.is_some() {
                let kept = if plain { next_name.clone() } else { scoped.expect("checked") };
                let op = pending.take().expect("an op precedes every kept name");
                // Exactness: a Direct hop must match a unique route through
                // the non-indexed names (§6.3); a degraded Exact is a
                // superset; Star is exact by its own semantics.
                match op {
                    EOp::Direct => {
                        // §6.3's uniqueness test runs even under full
                        // indexing: extent collapse can make an indexed
                        // intermediate transparent, so a second viable
                        // route (e.g. through a statement cycle) breaks
                        // exactness regardless of what is indexed.
                        let prev = names.last().expect("chain starts with the view symbol");
                        let route_from = strip_scope(prev);
                        if !self.unique_route(route_from, next_name, &indexed) {
                            exact = false;
                            hops.push(InexactHop {
                                from: route_from.to_owned(),
                                to: next_name.clone(),
                                reason: InexactReason::AmbiguousRoute,
                            });
                        }
                        ops.push(EOp::Direct);
                    }
                    EOp::Incl => ops.push(EOp::Incl),
                    EOp::Exact(n) => {
                        // The region forest counts *extents*, so a
                        // collapsible link anywhere on a viable walk can
                        // erase a level and skew the `⊃^n` count even under
                        // full indexing.
                        let prev = names.last().expect("chain starts with the view symbol");
                        let route_from = strip_scope(prev).to_owned();
                        if self.full_indexing
                            && !dropped_since_last
                            && self.exact_depth_reliable(&route_from, next_name, n)
                        {
                            ops.push(EOp::Exact(n));
                        } else {
                            // Degraded: the nesting count would be off.
                            ops.push(EOp::Incl);
                            exact = false;
                            let reason = if self.full_indexing && !dropped_since_last {
                                InexactReason::CollapsibleDepth
                            } else {
                                InexactReason::PartialIndexGap
                            };
                            hops.push(InexactHop {
                                from: route_from,
                                to: next_name.clone(),
                                reason,
                            });
                        }
                    }
                }
                names.push(kept);
                dropped_since_last = false;
            } else {
                dropped_since_last = true;
            }
        }
        if pending.is_some() {
            // The target attribute itself is not indexed: the deepest kept
            // name approximates it; a word selector weakens to "contains".
            exact = false;
            hops.push(InexactHop {
                from: strip_scope(names.last().expect("chain is non-empty")).to_owned(),
                to: alt.names.last().expect("chain is non-empty").clone(),
                reason: InexactReason::TargetNotIndexed,
            });
            let selector = selector.map(|(_, w)| (SelectKind::Contains, w));
            return ProjectedChain { names, ops, exact, hops, selector };
        }
        ProjectedChain { names, ops, exact, hops, selector }
    }

    /// Inexactness analysis of one query path, for `qof check` (QOF011):
    /// the hops that cost §6.3 exactness, across all derivation
    /// alternatives, with the ambiguous edge named.
    pub(crate) fn path_inexact_hops(
        &self,
        view_symbol: &str,
        steps: &[crate::QStep],
    ) -> Result<Vec<InexactHop>, TranslateError> {
        let spec = resolve_path(&self.schema.grammar, view_symbol, steps)?;
        let mut hops: Vec<InexactHop> = Vec::new();
        for alt in &spec.alternatives {
            for hop in self.project_chain(alt, None).hops {
                if !hops.contains(&hop) {
                    hops.push(hop);
                }
            }
        }
        Ok(hops)
    }

    /// Optimizes the Direct/Incl runs of a projected chain against the
    /// partial RIG and lowers it to a region expression, recording every
    /// rewrite the optimizer fired.
    fn lower_chain(
        &self,
        chain: &ProjectedChain,
        dir: Direction,
        rewrites: &mut Vec<PlanRewrite>,
        fp_keys: &mut Vec<String>,
    ) -> (RegionExpr, String, bool) {
        // Split at Exact ops; optimize each run as an InclusionExpr.
        let mut runs: Vec<(Vec<String>, Vec<ChainOp>)> = Vec::new();
        let mut links: Vec<u32> = Vec::new();
        let mut cur_names = vec![chain.names[0].clone()];
        let mut cur_ops: Vec<ChainOp> = Vec::new();
        for (i, op) in chain.ops.iter().enumerate() {
            match op {
                EOp::Direct => {
                    cur_ops.push(ChainOp::Direct);
                    cur_names.push(chain.names[i + 1].clone());
                }
                EOp::Incl => {
                    cur_ops.push(ChainOp::Incl);
                    cur_names.push(chain.names[i + 1].clone());
                }
                EOp::Exact(n) => {
                    runs.push((std::mem::take(&mut cur_names), std::mem::take(&mut cur_ops)));
                    links.push(*n);
                    cur_names = vec![chain.names[i + 1].clone()];
                }
            }
        }
        runs.push((cur_names, cur_ops));

        let mut optimized_runs: Vec<InclusionExpr> = Vec::new();
        let mut empty = false;
        for (k, (names, ops)) in runs.into_iter().enumerate() {
            let selector = if k == links.len() { chain.selector.clone() } else { None };
            let ie = match dir {
                Direction::Including => InclusionExpr::including(names, ops, selector),
                Direction::IncludedIn => InclusionExpr::included_in(names, ops, selector),
            };
            // The chain key (the plan cache's own key) doubles as the
            // workload-fingerprint material and the per-fingerprint
            // calibration key — one spelling, three consumers.
            let key = PlanCache::chain_key(&ie, self.strict);
            fp_keys.push(key.clone());
            // Scoped keys are not RIG nodes; skip optimization for runs
            // containing them (they are already short).
            let has_scoped = ie.names().iter().any(|n| n.contains('.'));
            if has_scoped {
                optimized_runs.push(ie);
                continue;
            }
            // The plan cache memoizes the whole optimize-and-certify
            // outcome per chain shape; entries only live within one
            // statistics epoch, so a hit is always byte-identical to what
            // a fresh lowering would produce.
            let cache_key = self.plan_cache.map(|_| key.clone());
            if let (Some(pc), Some(key)) = (self.plan_cache, cache_key.as_deref()) {
                if let Some(cached) = pc.get(key) {
                    rewrites.extend(cached.rewrites);
                    empty |= cached.empty;
                    optimized_runs.push(cached.expr);
                    continue;
                }
            }
            // With statistics, rank the certified-equivalent normal forms
            // by estimated cost; without, keep the syntactic
            // leftmost-first canonical form. Hot shapes rank with their
            // own calibration (keyed on the chain fingerprint) instead of
            // the global per-operator blend.
            let chain_fp = fnv1a64(key.as_bytes());
            let opt = match self.stats {
                Some(st) => {
                    optimize_costed(&ie, self.partial_rig, &|e| st.estimate_cost_fp(e, chain_fp))
                }
                None => optimize(&ie, self.partial_rig),
            };
            // Every recorded step goes through the abstract-interpretation
            // certifier; a verdict the certifier rejects is flagged in the
            // trace and — under strict mode — suppressed entirely.
            let interp = AbsInterp::new(self.partial_rig);
            let cert = certify(&ie, self.partial_rig, &opt, &interp);
            let accepted = !self.strict || cert.all_certified();
            let mut run_rewrites: Vec<PlanRewrite> = Vec::new();
            for (rw, step) in opt.trace.iter().zip(&cert.steps) {
                let proposition = match &rw.kind {
                    RewriteKind::Weaken { .. } => "3.5(a)",
                    RewriteKind::Shorten { .. } => "3.5(b)",
                };
                run_rewrites.push(PlanRewrite {
                    proposition: proposition.to_owned(),
                    description: rw.description.clone(),
                    result: rw.result.clone(),
                    certified: step.certified,
                });
            }
            let mut run_empty = false;
            if opt.trivially_empty {
                let step_ok = cert.empty_step.as_ref().is_some_and(|s| s.certified);
                run_rewrites.push(PlanRewrite {
                    proposition: "3.3".to_owned(),
                    description: format!("`{ie}` is provably empty: a hop has no RIG edge or path"),
                    result: "∅".to_owned(),
                    certified: step_ok,
                });
                run_empty = accepted;
            }
            let chosen = if accepted { opt.expr } else { ie };
            if let (Some(pc), Some(key)) = (self.plan_cache, cache_key) {
                pc.insert(
                    key,
                    CachedChain {
                        expr: chosen.clone(),
                        rewrites: run_rewrites.clone(),
                        empty: run_empty,
                    },
                );
            }
            rewrites.extend(run_rewrites);
            empty |= run_empty;
            optimized_runs.push(chosen);
        }

        // Reassemble: fold runs right-to-left with NestedExactly links.
        let mut display = String::new();
        for (k, run) in optimized_runs.iter().enumerate() {
            if k > 0 {
                let _ = write!(display, " ⊃^{} ", links[k - 1]);
            }
            let _ = write!(display, "{run}");
        }
        if empty {
            display.push_str("  [provably empty]");
        }
        let mut iter = optimized_runs.into_iter().rev();
        let expr = match iter.next() {
            Some(first) if !empty => {
                let mut expr = first.to_region_expr();
                for run in iter {
                    // run ⊃^n expr: nest under the run's deepest name.
                    let n = links.pop().unwrap_or(0);
                    let run_expr = run.to_region_expr();
                    expr = graft_nested(run_expr, expr, n);
                }
                expr
            }
            // Provably empty (or a degenerate run-less chain):
            // ∅ as name − name on the head (always empty, cheap).
            _ => {
                let head = RegionExpr::name(&chain.names[0]);
                head.clone().difference(head)
            }
        };
        (expr, display, chain.exact)
    }

    /// §6.3's uniqueness condition, extended for *extent collapse*.
    ///
    /// The partial-universe `⊃d` hop from `a` to `b` is exact iff exactly
    /// one walk `a → … → b` in the full RIG is **viable**, where a walk is
    /// viable iff every *indexed* intermediate `w` on it fails to block the
    /// direct-inclusion test — which happens exactly when all links from
    /// `a` up to `w` are collapsible (`w`'s region can share extents with
    /// `a`'s) or all links from `w` down to `b` are collapsible
    /// ([`Grammar::can_collapse`](qof_grammar::Grammar::can_collapse)).
    ///
    /// Viability is recognized by a deterministic three-phase automaton
    /// over the walk's nodes — Head (still inside the collapsible prefix
    /// run), Middle (indexed nodes forbidden), Tail (every node must be
    /// collapsible to the end) — so distinct viable walks correspond
    /// one-to-one to accepting paths in the RIG × phase product graph.
    /// The test counts those paths (capped at 2); a product cycle that can
    /// still reach acceptance means unboundedly many viable walks.
    /// Nesting-count reliability for a `⊃^n` link (variable paths like
    /// `s.X1.X2.Attr`). `NestedExactly` counts forest *levels* between the
    /// endpoints, and the forest stores extents: a region whose parent can
    /// collapse ([`Grammar::can_collapse`](qof_grammar::Grammar::can_collapse))
    /// may share its parent's extent and occupy the same forest node,
    /// erasing a level. The count is reliable only if no `a → … → b` walk
    /// with exactly `n` intermediates contains such a link.
    fn exact_depth_reliable(&self, a: &str, b: &str, n: u32) -> bool {
        let grammar = &self.schema.grammar;
        let collapsible = |p: &str| grammar.symbol(p).is_some_and(|sym| grammar.can_collapse(sym));
        // Bounded DFS for a *bad* walk: exactly n+1 edges ending at `b`
        // with at least one collapsible parent along the way.
        fn bad_walk(
            g: &Rig,
            cur: &str,
            b: &str,
            edges_left: u32,
            tainted: bool,
            collapsible: &dyn Fn(&str) -> bool,
        ) -> bool {
            if edges_left == 0 {
                return cur == b && tainted;
            }
            let t = tainted || collapsible(cur);
            g.successors(cur).iter().any(|&m| bad_walk(g, m, b, edges_left - 1, t, collapsible))
        }
        !bad_walk(self.full_rig, a, b, n + 1, false, &collapsible)
    }

    fn unique_route(&self, a: &str, b: &str, indexed: &BTreeSet<&str>) -> bool {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        enum Phase {
            Head,
            Middle,
            Tail,
        }
        let g = self.full_rig;
        let grammar = &self.schema.grammar;
        let collapsible = |p: &str| grammar.symbol(p).is_some_and(|sym| grammar.can_collapse(sym));
        let is_indexed = |n: &str| indexed.contains(n);
        let step = |phase: Phase, n: &str| -> Option<Phase> {
            match phase {
                // All nodes consumed so far (including `a`) were collapsible:
                // `n` is head-OK regardless of indexing; the run continues
                // only if `n` itself collapses.
                Phase::Head => Some(if collapsible(n) { Phase::Head } else { Phase::Middle }),
                // Past the head run: indexed nodes must start the tail run.
                Phase::Middle => {
                    if !is_indexed(n) {
                        Some(Phase::Middle)
                    } else if collapsible(n) {
                        Some(Phase::Tail)
                    } else {
                        None
                    }
                }
                // Inside the tail run: everything must collapse down to `b`.
                Phase::Tail => collapsible(n).then_some(Phase::Tail),
            }
        };
        let start_phase = if collapsible(a) { Phase::Head } else { Phase::Middle };

        // can_accept: from (node, phase), can some walk reach `b`?
        // Fixpoint over the finite product graph.
        use std::collections::HashMap;
        let nodes: Vec<&str> = g.node_names().collect();
        let phases = [Phase::Head, Phase::Middle, Phase::Tail];
        let mut accept: HashMap<(&str, Phase), bool> = HashMap::new();
        for &n in &nodes {
            for &p in &phases {
                accept.insert((n, p), false);
            }
        }
        loop {
            let mut changed = false;
            for &n in &nodes {
                for &p in &phases {
                    if accept[&(n, p)] {
                        continue;
                    }
                    let reaches = g.successors(n).iter().any(|&m| {
                        m == b
                            || step(p, m)
                                .is_some_and(|p2| accept.get(&(m, p2)).copied().unwrap_or(false))
                    });
                    if reaches {
                        accept.insert((n, p), true);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Count accepting product paths from (a, start_phase), capped at 2.
        // Walks may pass through `b` and reach it again, so arriving at `b`
        // both accepts and (when a transition exists) continues.
        fn dfs<'x>(
            g: &'x Rig,
            b: &str,
            cur: (&'x str, Phase),
            step: &dyn Fn(Phase, &str) -> Option<Phase>,
            accept: &std::collections::HashMap<(&'x str, Phase), bool>,
            on_path: &mut Vec<(&'x str, Phase)>,
            count: &mut u32,
        ) {
            if *count >= 2 {
                return;
            }
            for next in g.successors(cur.0) {
                if next == b {
                    *count += 1;
                    if *count >= 2 {
                        return;
                    }
                }
                let Some(p2) = step(cur.1, next) else { continue };
                let state = (next, p2);
                if on_path.contains(&state) {
                    // A product cycle: if acceptance is still reachable,
                    // pumping it yields unboundedly many viable walks.
                    if accept.get(&state).copied().unwrap_or(false) {
                        *count = 2;
                        return;
                    }
                    continue;
                }
                if !accept.get(&state).copied().unwrap_or(false) {
                    continue;
                }
                on_path.push(state);
                dfs(g, b, state, step, accept, on_path, count);
                on_path.pop();
                if *count >= 2 {
                    return;
                }
            }
        }
        let mut count = 0;
        let mut on_path = vec![(a, start_phase)];
        dfs(g, b, (a, start_phase), &step, &accept, &mut on_path, &mut count);
        count == 1
    }
}

/// Replaces the deepest leaf of `outer_expr` — built from a chain, so its
/// rightmost operand — by `NestedExactly { deepest, inner, n }`.
fn graft_nested(outer_expr: RegionExpr, inner: RegionExpr, n: u32) -> RegionExpr {
    use RegionExpr::*;
    match outer_expr {
        Name(s) => RegionExpr::Name(s).nested_exactly(inner, n),
        Including(a, b) => Including(a, Box::new(graft_nested(*b, inner, n))),
        DirectIncluding(a, b) => DirectIncluding(a, Box::new(graft_nested(*b, inner, n))),
        SelectEq(e, w) => SelectEq(Box::new(graft_nested(*e, inner, n)), w),
        SelectContains(e, w) => SelectContains(Box::new(graft_nested(*e, inner, n)), w),
        other => other.nested_exactly(inner, n),
    }
}

fn merge_eop(pending: Option<EOp>, next: EOp) -> EOp {
    match pending {
        None => next,
        // Once any star/exact gap is crossed, only plain inclusion remains
        // sound; consecutive adjacents while dropping stay Direct.
        Some(EOp::Direct) => match next {
            EOp::Direct => EOp::Direct,
            EOp::Incl | EOp::Exact(_) => EOp::Incl,
        },
        Some(EOp::Incl) => EOp::Incl,
        Some(EOp::Exact(n)) => match next {
            // An Exact link absorbs following adjacents into a longer gap
            // only when nothing else was dropped; approximating with the
            // count is unsound, so widen to Incl.
            EOp::Direct => EOp::Exact(n),
            _ => EOp::Incl,
        },
    }
}

fn strip_scope(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

fn combine_union(
    exprs: Vec<(RegionExpr, String, bool)>,
) -> Result<(RegionExpr, String, bool), PlanError> {
    let exact = exprs.iter().all(|(_, _, x)| *x);
    let display = exprs.iter().map(|(_, d, _)| d.clone()).collect::<Vec<_>>().join("  ∪  ");
    let expr = exprs
        .into_iter()
        .map(|(e, _, _)| e)
        .reduce(qof_pat::RegionExpr::union)
        .ok_or_else(|| PlanError::Internal("path resolved to no alternatives".into()))?;
    Ok((expr, display, exact))
}

/// Flattens top-level conjunctions.
fn flatten_and(c: &Cond) -> Vec<Cond> {
    match c {
        Cond::And(a, b) => {
            let mut out = flatten_and(a);
            out.extend(flatten_and(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// The variables a condition mentions.
fn vars_of(c: &Cond) -> BTreeSet<String> {
    fn walk(c: &Cond, out: &mut BTreeSet<String>) {
        match c {
            Cond::Eq(p, rhs) => {
                out.insert(p.var.clone());
                if let crate::RightHand::Path(q) = rhs {
                    out.insert(q.var.clone());
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Cond::Not(a) => walk(a, out),
        }
    }
    let mut out = BTreeSet::new();
    walk(c, &mut out);
    out
}

impl Plan {
    /// Whether the whole plan is answered exactly by the index phase
    /// (§6.3): every condition leaf, the join and the projection chain are
    /// certified exact.
    pub fn exactness(&self) -> Exactness {
        fn cond_exact(c: &CondNode) -> bool {
            match c {
                CondNode::IndexOnly { exact, .. } | CondNode::ContentCompare { exact, .. } => {
                    *exact
                }
                CondNode::And(a, b) | CondNode::Or(a, b) => cond_exact(a) && cond_exact(b),
                CondNode::Not(a) => cond_exact(a),
            }
        }
        let vars_ok = self.vars.iter().all(|v| v.cond.as_ref().is_none_or(cond_exact));
        let join_ok = self.join.as_ref().is_none_or(|j| j.exact);
        if vars_ok && join_ok {
            Exactness::Exact
        } else {
            Exactness::Candidates
        }
    }

    /// Pretty multi-line description of the plan (EXPLAIN).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for vp in &self.vars {
            let _ = writeln!(out, "var {} : view {} over <{}>", vp.var, vp.view, vp.symbol);
            if let Some(c) = &vp.cond {
                describe_cond(c, 1, &mut out);
            } else {
                let _ = writeln!(out, "  candidates: all <{}> regions", vp.symbol);
            }
        }
        if let Some(j) = &self.join {
            let _ = writeln!(
                out,
                "join {} ⋈ {}: {} [{}]",
                j.left_var,
                j.right_var,
                j.display,
                if j.exact { "exact" } else { "candidates" }
            );
        }
        match &self.projection {
            ProjPlan::Objects { var } => {
                let _ = writeln!(out, "project: objects of {var}");
            }
            ProjPlan::Values { var, chain, .. } => match chain {
                Some((_, d, exact)) => {
                    let _ = writeln!(
                        out,
                        "project: values of {var} via index [{d}] [{}]",
                        if *exact { "exact" } else { "candidates" }
                    );
                }
                None => {
                    let _ = writeln!(out, "project: values of {var} via parsed objects");
                }
            },
        }
        if !self.rewrites.is_empty() {
            let certified = self.rewrites.iter().filter(|r| r.certified).count();
            let _ = writeln!(
                out,
                "optimizer: {} rewrite(s), {certified} certified",
                self.rewrites.len()
            );
        }
        out
    }

    /// The abstract interpreter's verdict on every region expression the
    /// plan evaluates: condition leaves, both content-compare and join
    /// sides, and the index-side projection chain. The raw material of
    /// trace schema v3's `facts` array.
    pub fn facts(&self, interp: &AbsInterp<'_>) -> Vec<NodeFact> {
        fn cond_facts(c: &CondNode, interp: &AbsInterp<'_>, out: &mut Vec<NodeFact>) {
            match c {
                CondNode::IndexOnly { expr, display, .. } => {
                    out.push(interp.fact(display.clone(), expr));
                }
                CondNode::ContentCompare { left, right, .. } => {
                    out.push(interp.fact(left.to_string(), left));
                    out.push(interp.fact(right.to_string(), right));
                }
                CondNode::And(a, b) | CondNode::Or(a, b) => {
                    cond_facts(a, interp, out);
                    cond_facts(b, interp, out);
                }
                CondNode::Not(a) => cond_facts(a, interp, out),
            }
        }
        let mut out = Vec::new();
        for vp in &self.vars {
            if let Some(c) = &vp.cond {
                cond_facts(c, interp, &mut out);
            }
        }
        if let Some(j) = &self.join {
            out.push(interp.fact(j.left.to_string(), &j.left));
            out.push(interp.fact(j.right.to_string(), &j.right));
        }
        if let ProjPlan::Values { chain: Some((expr, display, _)), .. } = &self.projection {
            out.push(interp.fact(display.clone(), expr));
        }
        out
    }

    /// A sound per-variable candidate-cardinality interval: the abstract
    /// interpreter's bound for each variable's condition, capped by the
    /// view's region count. Phase 1's actual candidate counts always fall
    /// inside these intervals (trace schema v4 pairs the two as
    /// [`CardEstimate`](crate::trace::CardEstimate)s).
    pub fn var_estimates(&self, interp: &AbsInterp<'_>) -> Vec<(String, CardInterval)> {
        self.vars
            .iter()
            .map(|vp| {
                let view_card = interp.analyze(&RegionExpr::name(&vp.symbol)).card;
                let est = match &vp.cond {
                    // No condition: candidates are exactly the view extent.
                    None => view_card,
                    Some(c) => c.estimate(interp, view_card.hi),
                };
                (vp.var.clone(), est)
            })
            .collect()
    }
}

fn min_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

impl CondNode {
    /// A sound upper-bound estimate of the candidate regions this
    /// condition lets through, mirroring the executor's `eval_cond`
    /// semantics: leaves intersect with the view extent, `AND`
    /// intersects, `OR` unions, `NOT` can fall back to the whole view.
    fn estimate(&self, interp: &AbsInterp<'_>, view_hi: Option<u64>) -> CardInterval {
        let hi = match self {
            CondNode::IndexOnly { expr, .. } => min_hi(interp.analyze(expr).card.hi, view_hi),
            // Content-compared and complemented candidates are view
            // regions; nothing tighter is sound (the inexact paths fall
            // back to the full view extent).
            CondNode::ContentCompare { .. } | CondNode::Not(_) => view_hi,
            CondNode::And(a, b) => {
                min_hi(a.estimate(interp, view_hi).hi, b.estimate(interp, view_hi).hi)
            }
            CondNode::Or(a, b) => {
                let sum = a
                    .estimate(interp, view_hi)
                    .hi
                    .zip(b.estimate(interp, view_hi).hi)
                    .map(|(x, y)| x.saturating_add(y));
                min_hi(sum, view_hi)
            }
        };
        CardInterval { lo: 0, hi }
    }
}

fn describe_cond(c: &CondNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match c {
        CondNode::IndexOnly { display, exact, .. } => {
            let _ = writeln!(
                out,
                "{pad}index: {display} [{}]",
                if *exact { "exact" } else { "candidates" }
            );
        }
        CondNode::ContentCompare { display, exact, .. } => {
            let _ =
                writeln!(out, "{pad}{display} [{}]", if *exact { "exact" } else { "candidates" });
        }
        CondNode::And(a, b) => {
            let _ = writeln!(out, "{pad}AND");
            describe_cond(a, depth + 1, out);
            describe_cond(b, depth + 1, out);
        }
        CondNode::Or(a, b) => {
            let _ = writeln!(out, "{pad}OR");
            describe_cond(a, depth + 1, out);
            describe_cond(b, depth + 1, out);
        }
        CondNode::Not(a) => {
            let _ = writeln!(out, "{pad}NOT");
            describe_cond(a, depth + 1, out);
        }
    }
}
