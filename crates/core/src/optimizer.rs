//! The optimization algorithm of §3.2: given an inclusion expression and a
//! RIG, compute the unique most efficient equivalent expression
//! (Theorem 3.6).
//!
//! Step 1 weakens `⊃d` to `⊃` wherever Proposition 3.5(a) licenses it;
//! step 2 repeatedly shortens `Ri ⊃ Rj ⊃ Rk` to `Ri ⊃ Rk` wherever
//! Proposition 3.5(b) licenses it, until no more changes can be done.
//!
//! The paper claims (Theorem 3.6, via Sethi's finite Church–Rosser theorem)
//! that the normal form is *unique*. Property testing found a
//! counterexample — with edges `A→{B,F}, B→E, E→F` the chain
//! `A ⊃d B ⊃d E ⊃d F` reduces to either `A ⊃ E ⊃ F` or `A ⊃ B ⊃ F`
//! depending on which shortening fires first. All normal forms observed are
//! semantically equivalent and cost-identical (see
//! `tests/property_optimizer.rs`), so this implementation simply applies
//! rewrites leftmost-first for a canonical, deterministic result.
//!
//! Projection chains (`⊂`/`⊂d`) are handled identically: the chain is kept
//! in container order internally, which makes the two directions symmetric.

use crate::{ChainOp, Direction, InclusionExpr, Rig};

/// The structural identity of a rewrite, machine-checkable against the
/// Proposition 3.5 side conditions (the self-verification pass of
/// [`crate::analyze::verify`] replays these against the RIG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteKind {
    /// Proposition 3.5(a): `a ⊃d b` weakened to `a ⊃ b`.
    Weaken {
        /// Containing name of the weakened hop.
        a: String,
        /// Contained name of the weakened hop.
        b: String,
    },
    /// Proposition 3.5(b): `a ⊃ via ⊃ b` shortened to `a ⊃ b`.
    Shorten {
        /// Containing end of the shortened sub-chain.
        a: String,
        /// The dropped middle name.
        via: String,
        /// Contained end of the shortened sub-chain.
        b: String,
    },
}

/// One applied rewrite, for EXPLAIN output, the examples, and the
/// self-verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// What was rewritten, structurally.
    pub kind: RewriteKind,
    /// Human-readable description of the rewrite and its justification.
    pub description: String,
    /// The expression after this rewrite.
    pub result: String,
}

/// The result of optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Optimized {
    /// The most efficient equivalent expression.
    pub expr: InclusionExpr,
    /// Whether Proposition 3.3 proved the expression always empty.
    pub trivially_empty: bool,
    /// The rewrites applied, in order.
    pub trace: Vec<Rewrite>,
}

/// Proposition 3.3: the expression's result is empty for **every** instance
/// satisfying the RIG iff (i) some `Ri ⊃d Rj` has no edge `(Ri, Rj)`, or
/// (ii) some `Ri ⊃ Rj` has no path from `Ri` to `Rj`.
pub fn is_trivially_empty(expr: &InclusionExpr, rig: &Rig) -> bool {
    let names = expr.names();
    for (i, op) in expr.ops().iter().enumerate() {
        let (a, b) = (&names[i], &names[i + 1]);
        let dead = match op {
            ChainOp::Direct => !rig.has_edge(a, b),
            ChainOp::Incl => !rig.has_path(a, b),
        };
        if dead {
            return true;
        }
    }
    false
}

/// The §3.2 optimization algorithm (leftmost-first, see the module docs on
/// uniqueness). Runs in time polynomial in the chain length (each graph
/// predicate is one or two reachability queries).
pub fn optimize(expr: &InclusionExpr, rig: &Rig) -> Optimized {
    let mut trace = Vec::new();
    if is_trivially_empty(expr, rig) {
        let out = Optimized { expr: expr.clone(), trivially_empty: true, trace };
        self_verify(expr, rig, &out);
        return out;
    }

    let mut names: Vec<String> = expr.names().to_vec();
    let mut ops: Vec<ChainOp> = expr.ops().to_vec();

    // Step 1: replace ⊃d/⊂d by ⊃/⊂ where Proposition 3.5(a) applies (see
    // `weaken_why` for the rule and its projection dualization).
    for i in 0..ops.len() {
        if ops[i] != ChainOp::Direct {
            continue;
        }
        if let Some(rw) = weaken_at(expr, rig, &names, &mut ops, i) {
            trace.push(rw);
        }
    }

    // Step 2: repeatedly shorten Ri ⊃ Rj ⊃ Rk to Ri ⊃ Rk when every path
    // from Ri to Rk passes through Rj (Proposition 3.5(b)).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..names.len().saturating_sub(2) {
            if ops[i] != ChainOp::Incl || ops[i + 1] != ChainOp::Incl {
                continue;
            }
            let (a, m, b) = (names[i].clone(), names[i + 1].clone(), names[i + 2].clone());
            if rig.all_paths_pass_through(&a, &b, &m) {
                names.remove(i + 1);
                ops.remove(i);
                let cur = expr.with_chain(names.clone(), ops.clone());
                trace.push(Rewrite {
                    kind: RewriteKind::Shorten { a: a.clone(), via: m.clone(), b: b.clone() },
                    description: format!("drop {m}: every path from {a} to {b} passes through {m}"),
                    result: cur.to_string(),
                });
                changed = true;
                break;
            }
        }
    }

    let out = Optimized { expr: expr.with_chain(names, ops), trivially_empty: false, trace };
    self_verify(expr, rig, &out);
    out
}

/// Proposition 3.5(a)'s side condition at hop `i`, with the human-readable
/// justification: the edge is the only path, or the hop touches the
/// chain's existential endpoint. For selection (⊃) chains that endpoint is
/// the deepest (rightmost) element and the rule is "every path starts with
/// the edge"; for projection (⊂) chains the result is the *deepest* set,
/// so the dual applies at the outermost end: "every path ends with the
/// edge" (the paper's §5.2 symmetry claim needs this dualization —
/// property testing caught the literal rule producing wrong projections on
/// self-nested regions).
fn weaken_why(rig: &Rig, dir: Direction, names: &[String], i: usize) -> Option<String> {
    let (a, b) = (&names[i], &names[i + 1]);
    if rig.only_path_edge(a, b) {
        return Some(format!("({a}, {b}) is the only path from {a} to {b}"));
    }
    let endpoint_ok = match dir {
        Direction::Including => i + 1 == names.len() - 1 && rig.all_paths_start_with_edge(a, b),
        Direction::IncludedIn => i == 0 && rig.all_paths_end_with_edge(a, b),
    };
    if endpoint_ok {
        let rule = match dir {
            Direction::Including => "starts",
            Direction::IncludedIn => "ends",
        };
        return Some(format!("endpoint hop and every path from {a} to {b} {rule} with the edge"));
    }
    None
}

/// Applies the step-1 weakening at hop `i` if licensed, mutating `ops` and
/// returning the recorded rewrite.
fn weaken_at(
    expr: &InclusionExpr,
    rig: &Rig,
    names: &[String],
    ops: &mut [ChainOp],
    i: usize,
) -> Option<Rewrite> {
    let why = weaken_why(rig, expr.direction(), names, i)?;
    ops[i] = ChainOp::Incl;
    let (a, b) = (names[i].clone(), names[i + 1].clone());
    let cur = expr.with_chain(names.to_vec(), ops.to_vec());
    Some(Rewrite {
        kind: RewriteKind::Weaken { a: a.clone(), b: b.clone() },
        description: format!("weaken direct inclusion {a} → {b}: {why}"),
        result: cur.to_string(),
    })
}

/// Bound on the normal forms [`normal_forms`] enumerates and on the
/// intermediate reduction states it revisits — non-confluent chains are
/// rare and short, so a small cap loses nothing in practice while keeping
/// enumeration polynomial on adversarial chains (e.g. E8's length-128
/// stress chains).
const MAX_NORMAL_FORMS: usize = 16;
const MAX_REDUCTION_STATES: usize = 512;

/// Enumerates the distinct §3.2 normal forms of `expr` (bounded): step 1's
/// weakenings are order-independent and applied once, then every order of
/// step 2's shortenings is explored depth-first, deduplicating reduction
/// states. The *first* returned form is always the canonical leftmost-first
/// result of [`optimize`]; on confluent inputs (the overwhelmingly common
/// case, per Theorem 3.6) the result is that single form.
pub fn normal_forms(expr: &InclusionExpr, rig: &Rig) -> Vec<Optimized> {
    if is_trivially_empty(expr, rig) {
        return vec![Optimized { expr: expr.clone(), trivially_empty: true, trace: Vec::new() }];
    }

    let names: Vec<String> = expr.names().to_vec();
    let mut ops: Vec<ChainOp> = expr.ops().to_vec();
    let mut weaken_trace: Vec<Rewrite> = Vec::new();
    for i in 0..ops.len() {
        if ops[i] != ChainOp::Direct {
            continue;
        }
        if let Some(rw) = weaken_at(expr, rig, &names, &mut ops, i) {
            weaken_trace.push(rw);
        }
    }

    let mut forms: Vec<Optimized> = Vec::new();
    let mut visited: Vec<(Vec<String>, Vec<ChainOp>)> = Vec::new();
    let mut stack: Vec<(Vec<String>, Vec<ChainOp>, Vec<Rewrite>)> =
        vec![(names, ops, weaken_trace)];
    // Depth-first with choices pushed in *descending* index order, so the
    // leftmost choice is popped (and its fixpoint recorded) first.
    while let Some((names, ops, trace)) = stack.pop() {
        if visited.len() >= MAX_REDUCTION_STATES || forms.len() >= MAX_NORMAL_FORMS {
            break;
        }
        if visited.iter().any(|(n, o)| *n == names && *o == ops) {
            continue;
        }
        visited.push((names.clone(), ops.clone()));
        let choices: Vec<usize> = (0..names.len().saturating_sub(2))
            .filter(|&i| {
                ops[i] == ChainOp::Incl
                    && ops[i + 1] == ChainOp::Incl
                    && rig.all_paths_pass_through(&names[i], &names[i + 2], &names[i + 1])
            })
            .collect();
        if choices.is_empty() {
            let expr_now = expr.with_chain(names, ops);
            if !forms.iter().any(|f| f.expr == expr_now) {
                forms.push(Optimized { expr: expr_now, trivially_empty: false, trace });
            }
            continue;
        }
        for &i in choices.iter().rev() {
            let (mut n2, mut o2, mut t2) = (names.clone(), ops.clone(), trace.clone());
            let (a, m, b) = (n2[i].clone(), n2[i + 1].clone(), n2[i + 2].clone());
            n2.remove(i + 1);
            o2.remove(i);
            let cur = expr.with_chain(n2.clone(), o2.clone());
            t2.push(Rewrite {
                kind: RewriteKind::Shorten { a: a.clone(), via: m.clone(), b: b.clone() },
                description: format!("drop {m}: every path from {a} to {b} passes through {m}"),
                result: cur.to_string(),
            });
            stack.push((n2, o2, t2));
        }
    }
    forms
}

/// Cost-ranked optimization: enumerates the normal forms of `expr` and
/// returns the one minimizing `cost`, preferring the canonical
/// leftmost-first form on ties (so confluent inputs — and absent
/// statistics — behave exactly like [`optimize`]). Every returned form is
/// built from licensed Proposition 3.5 rewrites and self-verifies like the
/// syntactic path.
pub fn optimize_costed(
    expr: &InclusionExpr,
    rig: &Rig,
    cost: &dyn Fn(&InclusionExpr) -> f64,
) -> Optimized {
    let forms = normal_forms(expr, rig);
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for (k, form) in forms.iter().enumerate() {
        let c = cost(&form.expr);
        if c < best_cost {
            best = k;
            best_cost = c;
        }
    }
    let out = forms.into_iter().nth(best).expect("normal_forms returns at least one form");
    self_verify(expr, rig, &out);
    out
}

/// The plan self-verification pass: replays every emitted [`Rewrite`]
/// against Proposition 3.5's side conditions and checks the confluence
/// claim of Theorem 3.6 (see [`crate::analyze::verify`]). Active in debug
/// builds — so every `optimize` call in the test suite is verified — and
/// in release builds with the `self-verify` feature.
#[cfg(any(debug_assertions, feature = "self-verify"))]
fn self_verify(original: &InclusionExpr, rig: &Rig, out: &Optimized) {
    use crate::analyze::Severity;
    let mut diags = crate::analyze::verify::verify_rewrites(original, rig, out);
    diags.extend(crate::analyze::verify::check_confluence(original, rig));
    diags.retain(|d| d.severity == Severity::Error);
    assert!(
        diags.is_empty(),
        "optimizer self-verification failed for `{original}`:\n{}",
        diags.iter().map(|d| d.render(None)).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(not(any(debug_assertions, feature = "self-verify")))]
fn self_verify(_original: &InclusionExpr, _rig: &Rig, _out: &Optimized) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelectKind;

    fn bib_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("Reference", "Key");
        g.add_edge("Reference", "Authors");
        g.add_edge("Reference", "Title");
        g.add_edge("Reference", "Editors");
        g.add_edge("Authors", "Name");
        g.add_edge("Editors", "Name");
        g.add_edge("Name", "First_Name");
        g.add_edge("Name", "Last_Name");
        g
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn paper_running_example_e1_to_e2() {
        // Reference ⊃d Authors ⊃d Name ⊃d σ_"Chang"(Last_Name)
        // must become Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name).
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(!opt.trivially_empty);
        assert_eq!(opt.expr.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
        // Three weakenings + one shortening.
        assert_eq!(opt.trace.len(), 4);
    }

    #[test]
    fn authors_test_is_not_dropped() {
        // The result keeps Authors: paths to Last_Name also run through
        // Editors, so inclusion in Authors must still be tested (the paper's
        // key point about filtering editor names).
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(opt.expr.names().iter().any(|n| n == "Authors"));
        assert!(!opt.expr.names().iter().any(|n| n == "Name"));
    }

    #[test]
    fn without_ambiguity_chain_collapses_fully() {
        // Drop the Editors route: every path to Last_Name now goes through
        // Authors and Name, so both middles vanish.
        let mut g = Rig::new();
        g.add_edge("Reference", "Authors");
        g.add_edge("Authors", "Name");
        g.add_edge("Name", "Last_Name");
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "Reference ⊃ σ_\"Chang\"(Last_Name)");
    }

    #[test]
    fn trivially_empty_no_edge() {
        // e3 = Reference ⊃ Title ⊃ Last_Name: no path Title → Last_Name.
        let e = InclusionExpr::including(
            names(&["Reference", "Title", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        assert!(is_trivially_empty(&e, &bib_rig()));
        assert!(optimize(&e, &bib_rig()).trivially_empty);
    }

    #[test]
    fn trivially_empty_direct_without_edge() {
        // Reference ⊃d Name: path exists but no edge.
        let e =
            InclusionExpr::all_direct(Direction::Including, names(&["Reference", "Name"]), None);
        assert!(is_trivially_empty(&e, &bib_rig()));
    }

    #[test]
    fn non_rightmost_direct_is_kept_when_paths_diverge() {
        // G: A →d B with a second path A → C → B, and B → D.
        // A ⊃d B ⊃d D: the (A,B) direct test cannot be weakened (two paths,
        // B not rightmost); (B,D) can if D is only reachable via the edge.
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("A", "C");
        g.add_edge("C", "B");
        g.add_edge("B", "D");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B", "D"]), None);
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "A ⊃d B ⊃ D");
    }

    #[test]
    fn rightmost_with_multiple_paths_all_starting_with_edge() {
        // A → B plus A → B → ... : every path from A to B starts with the
        // edge (B has a self-returning route B → E → B).
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("B", "E");
        g.add_edge("E", "B");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B"]), None);
        let opt = optimize(&e, &g);
        // Multiple paths A→B exist (through the cycle), but all start with
        // the edge and B is rightmost: weakened.
        assert_eq!(opt.expr.to_string(), "A ⊃ B");
    }

    #[test]
    fn projection_chain_optimizes_symmetrically() {
        // §5.2: Last_Name ⊂d Name ⊂d Authors ⊂d Reference →
        //       Last_Name ⊂ Authors ⊂ Reference.
        let e = InclusionExpr::all_direct(
            Direction::IncludedIn,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            None,
        );
        let opt = optimize(&e, &bib_rig());
        assert_eq!(opt.expr.to_string(), "Last_Name ⊂ Authors ⊂ Reference");
    }

    #[test]
    fn cyclic_rig_keeps_direct_ops() {
        // Self-nested sections: Section → Subsections → Section.
        // Section ⊃d Subsections cannot be weakened: paths through the cycle
        // exist and Subsections is rightmost, but not every path starts with
        // the edge... actually here every path Section→Subsections starts
        // with the only edge out of Section towards Subsections.
        let mut g = Rig::new();
        g.add_edge("Section", "Subsections");
        g.add_edge("Subsections", "Section");
        g.add_edge("Section", "Head");
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Section", "Subsections"]),
            None,
        );
        let opt = optimize(&e, &g);
        // Successors of Section besides Subsections: Head, which does not
        // reach Subsections. So the rightmost rule applies.
        assert_eq!(opt.expr.to_string(), "Section ⊃ Subsections");

        // But Section ⊃d Head cannot be weakened even though Head is
        // rightmost: a path Section → Subsections → Section → Head does not
        // start with the edge.
        let e2 = InclusionExpr::all_direct(Direction::Including, names(&["Section", "Head"]), None);
        let opt2 = optimize(&e2, &g);
        assert_eq!(opt2.expr.to_string(), "Section ⊃d Head");
    }

    #[test]
    fn idempotent() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let g = bib_rig();
        let once = optimize(&e1, &g);
        let twice = optimize(&once.expr, &g);
        assert_eq!(once.expr, twice.expr);
        assert!(twice.trace.is_empty());
    }

    #[test]
    fn two_name_chain_weakens_or_keeps() {
        let g = bib_rig();
        // Reference ⊃d Key: edge is the only path — weakened.
        let e = InclusionExpr::all_direct(Direction::Including, names(&["Reference", "Key"]), None);
        assert_eq!(optimize(&e, &g).expr.to_string(), "Reference ⊃ Key");
    }

    #[test]
    fn selector_is_preserved_through_rewrites() {
        let g = bib_rig();
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Authors", "Name", "Last_Name"]),
            Some((SelectKind::Contains, "Chang".into())),
        );
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "Authors ⊃ σ∋\"Chang\"(Last_Name)");
        assert_eq!(opt.expr.selector().map(|(k, _)| k), Some(SelectKind::Contains));
    }

    #[test]
    fn trace_describes_rewrites() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(opt.trace.iter().any(|r| r.description.contains("drop Name")));
        assert!(opt.trace.iter().any(|r| r.description.contains("weaken direct inclusion")));
    }

    /// The documented non-confluent RIG: edges `A→{B,F}, B→E, E→F`.
    fn non_confluent_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("A", "F");
        g.add_edge("B", "E");
        g.add_edge("E", "F");
        g
    }

    #[test]
    fn normal_forms_enumerates_both_reducts_of_the_counterexample() {
        let g = non_confluent_rig();
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B", "E", "F"]), None);
        let forms = normal_forms(&e, &g);
        let spelled: Vec<String> = forms.iter().map(|f| f.expr.to_string()).collect();
        assert_eq!(forms.len(), 2, "expected exactly two normal forms, got {spelled:?}");
        // The first form is always optimize()'s canonical leftmost-first
        // result, trace and all.
        let canonical = optimize(&e, &g);
        assert_eq!(forms[0].expr, canonical.expr);
        assert_eq!(forms[0].trace, canonical.trace);
        assert!(spelled.contains(&"A ⊃ E ⊃ F".to_string()));
        assert!(spelled.contains(&"A ⊃ B ⊃ F".to_string()));
    }

    #[test]
    fn normal_forms_is_singleton_on_confluent_inputs() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let forms = normal_forms(&e1, &bib_rig());
        assert_eq!(forms.len(), 1);
        let canonical = optimize(&e1, &bib_rig());
        assert_eq!(forms[0].expr, canonical.expr);
        assert_eq!(forms[0].trace, canonical.trace);
    }

    #[test]
    fn normal_forms_short_circuits_trivially_empty() {
        let e = InclusionExpr::including(
            names(&["Reference", "Title", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        let forms = normal_forms(&e, &bib_rig());
        assert_eq!(forms.len(), 1);
        assert!(forms[0].trivially_empty);
    }

    #[test]
    fn optimize_costed_picks_the_cheaper_form_and_keeps_canonical_on_ties() {
        let g = non_confluent_rig();
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B", "E", "F"]), None);
        let canonical = optimize(&e, &g);
        // A constant cost function ties everything: the canonical form wins.
        let tied = optimize_costed(&e, &g, &|_| 1.0);
        assert_eq!(tied.expr, canonical.expr);
        assert_eq!(tied.trace, canonical.trace);
        // A cost function that penalizes the canonical spelling flips the
        // choice to the other normal form.
        let other = optimize_costed(&e, &g, &|x| {
            if x.to_string() == canonical.expr.to_string() {
                10.0
            } else {
                1.0
            }
        });
        assert_ne!(other.expr, canonical.expr);
        assert!(other.expr.to_string() == "A ⊃ B ⊃ F" || other.expr.to_string() == "A ⊃ E ⊃ F");
    }

    #[test]
    fn optimize_costed_matches_optimize_on_confluent_inputs() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let g = bib_rig();
        // Any cost function at all: a single form leaves nothing to rank.
        let costed = optimize_costed(&e1, &g, &|x| x.names().len() as f64);
        let plain = optimize(&e1, &g);
        assert_eq!(costed, plain);
    }
}
