//! The optimization algorithm of §3.2: given an inclusion expression and a
//! RIG, compute the unique most efficient equivalent expression
//! (Theorem 3.6).
//!
//! Step 1 weakens `⊃d` to `⊃` wherever Proposition 3.5(a) licenses it;
//! step 2 repeatedly shortens `Ri ⊃ Rj ⊃ Rk` to `Ri ⊃ Rk` wherever
//! Proposition 3.5(b) licenses it, until no more changes can be done.
//!
//! The paper claims (Theorem 3.6, via Sethi's finite Church–Rosser theorem)
//! that the normal form is *unique*. Property testing found a
//! counterexample — with edges `A→{B,F}, B→E, E→F` the chain
//! `A ⊃d B ⊃d E ⊃d F` reduces to either `A ⊃ E ⊃ F` or `A ⊃ B ⊃ F`
//! depending on which shortening fires first. All normal forms observed are
//! semantically equivalent and cost-identical (see
//! `tests/property_optimizer.rs`), so this implementation simply applies
//! rewrites leftmost-first for a canonical, deterministic result.
//!
//! Projection chains (`⊂`/`⊂d`) are handled identically: the chain is kept
//! in container order internally, which makes the two directions symmetric.

use crate::{ChainOp, Direction, InclusionExpr, Rig};

/// The structural identity of a rewrite, machine-checkable against the
/// Proposition 3.5 side conditions (the self-verification pass of
/// [`crate::analyze::verify`] replays these against the RIG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteKind {
    /// Proposition 3.5(a): `a ⊃d b` weakened to `a ⊃ b`.
    Weaken {
        /// Containing name of the weakened hop.
        a: String,
        /// Contained name of the weakened hop.
        b: String,
    },
    /// Proposition 3.5(b): `a ⊃ via ⊃ b` shortened to `a ⊃ b`.
    Shorten {
        /// Containing end of the shortened sub-chain.
        a: String,
        /// The dropped middle name.
        via: String,
        /// Contained end of the shortened sub-chain.
        b: String,
    },
}

/// One applied rewrite, for EXPLAIN output, the examples, and the
/// self-verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// What was rewritten, structurally.
    pub kind: RewriteKind,
    /// Human-readable description of the rewrite and its justification.
    pub description: String,
    /// The expression after this rewrite.
    pub result: String,
}

/// The result of optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Optimized {
    /// The most efficient equivalent expression.
    pub expr: InclusionExpr,
    /// Whether Proposition 3.3 proved the expression always empty.
    pub trivially_empty: bool,
    /// The rewrites applied, in order.
    pub trace: Vec<Rewrite>,
}

/// Proposition 3.3: the expression's result is empty for **every** instance
/// satisfying the RIG iff (i) some `Ri ⊃d Rj` has no edge `(Ri, Rj)`, or
/// (ii) some `Ri ⊃ Rj` has no path from `Ri` to `Rj`.
pub fn is_trivially_empty(expr: &InclusionExpr, rig: &Rig) -> bool {
    let names = expr.names();
    for (i, op) in expr.ops().iter().enumerate() {
        let (a, b) = (&names[i], &names[i + 1]);
        let dead = match op {
            ChainOp::Direct => !rig.has_edge(a, b),
            ChainOp::Incl => !rig.has_path(a, b),
        };
        if dead {
            return true;
        }
    }
    false
}

/// The §3.2 optimization algorithm (leftmost-first, see the module docs on
/// uniqueness). Runs in time polynomial in the chain length (each graph
/// predicate is one or two reachability queries).
pub fn optimize(expr: &InclusionExpr, rig: &Rig) -> Optimized {
    let mut trace = Vec::new();
    if is_trivially_empty(expr, rig) {
        let out = Optimized { expr: expr.clone(), trivially_empty: true, trace };
        self_verify(expr, rig, &out);
        return out;
    }

    let mut names: Vec<String> = expr.names().to_vec();
    let mut ops: Vec<ChainOp> = expr.ops().to_vec();

    // Step 1: replace ⊃d/⊂d by ⊃/⊂ where Proposition 3.5(a) applies: the
    // edge is the only path, or the hop touches the chain's existential
    // endpoint. For selection (⊃) chains that endpoint is the deepest
    // (rightmost) element and the rule is "every path starts with the
    // edge"; for projection (⊂) chains the result is the *deepest* set, so
    // the dual applies at the outermost end: "every path ends with the
    // edge" (the paper's §5.2 symmetry claim needs this dualization —
    // property testing caught the literal rule producing wrong projections
    // on self-nested regions).
    for i in 0..ops.len() {
        if ops[i] != ChainOp::Direct {
            continue;
        }
        let (a, b) = (names[i].clone(), names[i + 1].clone());
        let endpoint = match expr.direction() {
            Direction::Including => i + 1 == names.len() - 1,
            Direction::IncludedIn => i == 0,
        };
        let endpoint_ok = match expr.direction() {
            Direction::Including => endpoint && rig.all_paths_start_with_edge(&a, &b),
            Direction::IncludedIn => endpoint && rig.all_paths_end_with_edge(&a, &b),
        };
        let (applies, why) = if rig.only_path_edge(&a, &b) {
            (true, format!("({a}, {b}) is the only path from {a} to {b}"))
        } else if endpoint_ok {
            let rule = match expr.direction() {
                Direction::Including => "starts",
                Direction::IncludedIn => "ends",
            };
            (true, format!("endpoint hop and every path from {a} to {b} {rule} with the edge"))
        } else {
            (false, String::new())
        };
        if applies {
            ops[i] = ChainOp::Incl;
            let cur = expr.with_chain(names.clone(), ops.clone());
            trace.push(Rewrite {
                kind: RewriteKind::Weaken { a: a.clone(), b: b.clone() },
                description: format!("weaken direct inclusion {a} → {b}: {why}"),
                result: cur.to_string(),
            });
        }
    }

    // Step 2: repeatedly shorten Ri ⊃ Rj ⊃ Rk to Ri ⊃ Rk when every path
    // from Ri to Rk passes through Rj (Proposition 3.5(b)).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..names.len().saturating_sub(2) {
            if ops[i] != ChainOp::Incl || ops[i + 1] != ChainOp::Incl {
                continue;
            }
            let (a, m, b) = (names[i].clone(), names[i + 1].clone(), names[i + 2].clone());
            if rig.all_paths_pass_through(&a, &b, &m) {
                names.remove(i + 1);
                ops.remove(i);
                let cur = expr.with_chain(names.clone(), ops.clone());
                trace.push(Rewrite {
                    kind: RewriteKind::Shorten { a: a.clone(), via: m.clone(), b: b.clone() },
                    description: format!("drop {m}: every path from {a} to {b} passes through {m}"),
                    result: cur.to_string(),
                });
                changed = true;
                break;
            }
        }
    }

    let out = Optimized { expr: expr.with_chain(names, ops), trivially_empty: false, trace };
    self_verify(expr, rig, &out);
    out
}

/// The plan self-verification pass: replays every emitted [`Rewrite`]
/// against Proposition 3.5's side conditions and checks the confluence
/// claim of Theorem 3.6 (see [`crate::analyze::verify`]). Active in debug
/// builds — so every `optimize` call in the test suite is verified — and
/// in release builds with the `self-verify` feature.
#[cfg(any(debug_assertions, feature = "self-verify"))]
fn self_verify(original: &InclusionExpr, rig: &Rig, out: &Optimized) {
    use crate::analyze::Severity;
    let mut diags = crate::analyze::verify::verify_rewrites(original, rig, out);
    diags.extend(crate::analyze::verify::check_confluence(original, rig));
    diags.retain(|d| d.severity == Severity::Error);
    assert!(
        diags.is_empty(),
        "optimizer self-verification failed for `{original}`:\n{}",
        diags.iter().map(|d| d.render(None)).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(not(any(debug_assertions, feature = "self-verify")))]
fn self_verify(_original: &InclusionExpr, _rig: &Rig, _out: &Optimized) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelectKind;

    fn bib_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("Reference", "Key");
        g.add_edge("Reference", "Authors");
        g.add_edge("Reference", "Title");
        g.add_edge("Reference", "Editors");
        g.add_edge("Authors", "Name");
        g.add_edge("Editors", "Name");
        g.add_edge("Name", "First_Name");
        g.add_edge("Name", "Last_Name");
        g
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn paper_running_example_e1_to_e2() {
        // Reference ⊃d Authors ⊃d Name ⊃d σ_"Chang"(Last_Name)
        // must become Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name).
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(!opt.trivially_empty);
        assert_eq!(opt.expr.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
        // Three weakenings + one shortening.
        assert_eq!(opt.trace.len(), 4);
    }

    #[test]
    fn authors_test_is_not_dropped() {
        // The result keeps Authors: paths to Last_Name also run through
        // Editors, so inclusion in Authors must still be tested (the paper's
        // key point about filtering editor names).
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(opt.expr.names().iter().any(|n| n == "Authors"));
        assert!(!opt.expr.names().iter().any(|n| n == "Name"));
    }

    #[test]
    fn without_ambiguity_chain_collapses_fully() {
        // Drop the Editors route: every path to Last_Name now goes through
        // Authors and Name, so both middles vanish.
        let mut g = Rig::new();
        g.add_edge("Reference", "Authors");
        g.add_edge("Authors", "Name");
        g.add_edge("Name", "Last_Name");
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "Reference ⊃ σ_\"Chang\"(Last_Name)");
    }

    #[test]
    fn trivially_empty_no_edge() {
        // e3 = Reference ⊃ Title ⊃ Last_Name: no path Title → Last_Name.
        let e = InclusionExpr::including(
            names(&["Reference", "Title", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        assert!(is_trivially_empty(&e, &bib_rig()));
        assert!(optimize(&e, &bib_rig()).trivially_empty);
    }

    #[test]
    fn trivially_empty_direct_without_edge() {
        // Reference ⊃d Name: path exists but no edge.
        let e =
            InclusionExpr::all_direct(Direction::Including, names(&["Reference", "Name"]), None);
        assert!(is_trivially_empty(&e, &bib_rig()));
    }

    #[test]
    fn non_rightmost_direct_is_kept_when_paths_diverge() {
        // G: A →d B with a second path A → C → B, and B → D.
        // A ⊃d B ⊃d D: the (A,B) direct test cannot be weakened (two paths,
        // B not rightmost); (B,D) can if D is only reachable via the edge.
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("A", "C");
        g.add_edge("C", "B");
        g.add_edge("B", "D");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B", "D"]), None);
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "A ⊃d B ⊃ D");
    }

    #[test]
    fn rightmost_with_multiple_paths_all_starting_with_edge() {
        // A → B plus A → B → ... : every path from A to B starts with the
        // edge (B has a self-returning route B → E → B).
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("B", "E");
        g.add_edge("E", "B");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B"]), None);
        let opt = optimize(&e, &g);
        // Multiple paths A→B exist (through the cycle), but all start with
        // the edge and B is rightmost: weakened.
        assert_eq!(opt.expr.to_string(), "A ⊃ B");
    }

    #[test]
    fn projection_chain_optimizes_symmetrically() {
        // §5.2: Last_Name ⊂d Name ⊂d Authors ⊂d Reference →
        //       Last_Name ⊂ Authors ⊂ Reference.
        let e = InclusionExpr::all_direct(
            Direction::IncludedIn,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            None,
        );
        let opt = optimize(&e, &bib_rig());
        assert_eq!(opt.expr.to_string(), "Last_Name ⊂ Authors ⊂ Reference");
    }

    #[test]
    fn cyclic_rig_keeps_direct_ops() {
        // Self-nested sections: Section → Subsections → Section.
        // Section ⊃d Subsections cannot be weakened: paths through the cycle
        // exist and Subsections is rightmost, but not every path starts with
        // the edge... actually here every path Section→Subsections starts
        // with the only edge out of Section towards Subsections.
        let mut g = Rig::new();
        g.add_edge("Section", "Subsections");
        g.add_edge("Subsections", "Section");
        g.add_edge("Section", "Head");
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Section", "Subsections"]),
            None,
        );
        let opt = optimize(&e, &g);
        // Successors of Section besides Subsections: Head, which does not
        // reach Subsections. So the rightmost rule applies.
        assert_eq!(opt.expr.to_string(), "Section ⊃ Subsections");

        // But Section ⊃d Head cannot be weakened even though Head is
        // rightmost: a path Section → Subsections → Section → Head does not
        // start with the edge.
        let e2 = InclusionExpr::all_direct(Direction::Including, names(&["Section", "Head"]), None);
        let opt2 = optimize(&e2, &g);
        assert_eq!(opt2.expr.to_string(), "Section ⊃d Head");
    }

    #[test]
    fn idempotent() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let g = bib_rig();
        let once = optimize(&e1, &g);
        let twice = optimize(&once.expr, &g);
        assert_eq!(once.expr, twice.expr);
        assert!(twice.trace.is_empty());
    }

    #[test]
    fn two_name_chain_weakens_or_keeps() {
        let g = bib_rig();
        // Reference ⊃d Key: edge is the only path — weakened.
        let e = InclusionExpr::all_direct(Direction::Including, names(&["Reference", "Key"]), None);
        assert_eq!(optimize(&e, &g).expr.to_string(), "Reference ⊃ Key");
    }

    #[test]
    fn selector_is_preserved_through_rewrites() {
        let g = bib_rig();
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Authors", "Name", "Last_Name"]),
            Some((SelectKind::Contains, "Chang".into())),
        );
        let opt = optimize(&e, &g);
        assert_eq!(opt.expr.to_string(), "Authors ⊃ σ∋\"Chang\"(Last_Name)");
        assert_eq!(opt.expr.selector().map(|(k, _)| k), Some(SelectKind::Contains));
    }

    #[test]
    fn trace_describes_rewrites() {
        let e1 = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        let opt = optimize(&e1, &bib_rig());
        assert!(opt.trace.iter().any(|r| r.description.contains("drop Name")));
        assert!(opt.trace.iter().any(|r| r.description.contains("weaken direct inclusion")));
    }
}
