//! Static analysis: `qof check`.
//!
//! Everything the paper decides *without touching the file* surfaces here
//! as structured diagnostics with stable `QOF0xx` codes: Proposition 3.3
//! (trivially empty expressions), §6.3 (exactness of a partial index),
//! §5.3 (`*X` paths are cheaper than fixed paths), plus schema- and
//! RIG-level sanity lints and the optimizer self-verification pass
//! (Proposition 3.5 side conditions, Theorem 3.6 confluence).
//!
//! The three entry points are [`check_schema`], [`check_index`] and
//! [`check_query`] (the latter also available as
//! [`FileDatabase::check`](crate::FileDatabase::check)); each returns
//! [`Diagnostic`] values renderable in rustc style via
//! [`Diagnostic::render`].

pub mod absint;
mod query;
mod schema;
pub mod verify;

pub use query::check_query;
pub use schema::{check_index, check_schema};

use std::fmt;

/// Stable diagnostic codes. The numeric ranges group the checks:
/// `QOF00x` schema, `QOF01x` RIG/index, `QOF02x` query, `QOF03x`
/// optimizer self-verification, `QOF1xx` abstract interpretation
/// (static domains, cardinality intervals, emptiness facts) and the
/// rewrite certifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Code {
    /// Non-terminal unreachable from the grammar root.
    Qof001,
    /// Nullable rule: the non-terminal can match the empty string, so its
    /// zero-width regions break region nesting.
    Qof002,
    /// Class annotation references a field with no grammar counterpart.
    Qof003,
    /// View over a symbol the grammar does not define.
    Qof004,
    /// Indexed region name unreachable from the root in the RIG.
    Qof010,
    /// Partial index makes a query hop inexact (§6.3).
    Qof011,
    /// Query syntax error.
    Qof020,
    /// Unknown view in the FROM clause.
    Qof021,
    /// Unknown class/attribute name in a path.
    Qof022,
    /// Type mismatch in a comparison.
    Qof023,
    /// Trivially empty inclusion expression (Proposition 3.3).
    Qof024,
    /// Fixed path more expensive than the equivalent `*X` path (§5.3).
    Qof025,
    /// The view's non-terminal is not indexed.
    Qof026,
    /// Optimizer rewrite violates a Proposition 3.5 side condition.
    Qof030,
    /// Optimizer normal form is not confluent (Theorem 3.6).
    Qof031,
    /// Subexpression proven empty by the abstract interpreter.
    Qof100,
    /// Dead branch of a `∪`/`−`: one operand is provably empty.
    Qof101,
    /// Redundant intersection: both operands are the same expression.
    Qof102,
    /// Inclusion over disjoint RIG components: the operand domains admit
    /// no containment per the RIG.
    Qof103,
    /// Closure (`+`) requested over a region type on no RIG cycle, so the
    /// closure can never add a second level.
    Qof104,
    /// Optimizer rewrite the certifier could not certify.
    Qof110,
}

impl Code {
    /// The stable `QOF0xx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Qof001 => "QOF001",
            Code::Qof002 => "QOF002",
            Code::Qof003 => "QOF003",
            Code::Qof004 => "QOF004",
            Code::Qof010 => "QOF010",
            Code::Qof011 => "QOF011",
            Code::Qof020 => "QOF020",
            Code::Qof021 => "QOF021",
            Code::Qof022 => "QOF022",
            Code::Qof023 => "QOF023",
            Code::Qof024 => "QOF024",
            Code::Qof025 => "QOF025",
            Code::Qof026 => "QOF026",
            Code::Qof030 => "QOF030",
            Code::Qof031 => "QOF031",
            Code::Qof100 => "QOF100",
            Code::Qof101 => "QOF101",
            Code::Qof102 => "QOF102",
            Code::Qof103 => "QOF103",
            Code::Qof104 => "QOF104",
            Code::Qof110 => "QOF110",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A provable mistake: the query cannot run or cannot mean what was
    /// written.
    Error,
    /// Legal but almost certainly not intended, or a correctness hazard.
    Warning,
    /// A suggestion (e.g. a cheaper equivalent form).
    Help,
}

impl Severity {
    /// The stable lowercase label (`error`/`warning`/`help`), shared by
    /// the rustc-style renderer and the `--json` output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Help => "help",
        }
    }

    fn label(self) -> &'static str {
        self.as_str()
    }
}

/// A byte range into the checked source (query text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start byte offset, inclusive.
    pub start: usize,
    /// End byte offset, exclusive.
    pub end: usize,
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// How serious it is.
    pub severity: Severity,
    /// Where in the checked source, when the finding is source-anchored.
    pub span: Option<Span>,
    /// The primary message.
    pub message: String,
    /// Supporting evidence (e.g. the witnessing RIG edge for QOF024).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with no span and no notes.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic { code, severity, span: None, message: message.into(), notes: Vec::new() }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Appends a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic in rustc style. Passing the checked source
    /// adds the quoted line with a caret underline when the diagnostic has
    /// a span:
    ///
    /// ```text
    /// error[QOF024]: path `r.Title.Last_Name` is trivially empty (Proposition 3.3)
    ///  --> query:1:35
    ///   |
    /// 1 | SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"
    ///   |                                   ^^^^^^^^^^^^^^^^
    ///   = note: the RIG has no path from `Title` to `Last_Name`
    /// ```
    pub fn render(&self, source: Option<&str>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}[{}]: {}", self.severity.label(), self.code, self.message);
        if let (Some(span), Some(src)) = (self.span, source) {
            let start = span.start.min(src.len());
            let line_no = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
            let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
            let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
            let col = start - line_start + 1;
            let line = &src[line_start..line_end];
            let gutter = line_no.to_string().len();
            let _ = writeln!(out, "{:gutter$}--> query:{line_no}:{col}", "");
            let _ = writeln!(out, "{:gutter$} |", "");
            let _ = writeln!(out, "{line_no} | {line}");
            let width = span.end.min(line_end).saturating_sub(start).max(1);
            let _ =
                writeln!(out, "{:gutter$} | {:pad$}{}", "", "", "^".repeat(width), pad = col - 1);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  = note: {note}");
        }
        out
    }

    /// Serializes the diagnostic as one JSON object — the machine-readable
    /// twin of [`Diagnostic::render`], sharing the same data model. The
    /// `span` key is omitted when the finding is not source-anchored.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let esc = crate::trace::esc;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code,
            self.severity.as_str(),
            esc(&self.message)
        );
        if let Some(span) = self.span {
            let _ = write!(out, ",\"span\":{{\"start\":{},\"end\":{}}}", span.start, span.end);
        }
        out.push_str(",\"notes\":[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(note));
        }
        out.push_str("]}");
        out
    }
}

/// Renders a batch of diagnostics against one source, separated by blank
/// lines, with a closing summary count.
pub fn render_all(diags: &[Diagnostic], source: Option<&str>) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render(source));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    out
}

/// Levenshtein edit distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within an edit-distance budget scaled to the
/// name's length (the rustc heuristic: short names tolerate one edit).
pub(crate) fn did_you_mean<'a>(
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).max(2);
    candidates
        .into_iter()
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d <= budget)
        .min_by_key(|&(d, c)| (d, c.len()))
        .map(|(_, c)| c)
}

/// Locates `name` in `src` as a whole identifier (bounded by
/// non-identifier characters), for span-anchoring diagnostics without
/// threading positions through the AST.
pub(crate) fn locate(src: &str, name: &str) -> Option<Span> {
    if name.is_empty() {
        return None;
    }
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(i) = src[from..].find(name) {
        let start = from + i;
        let end = start + name.len();
        let left_ok = start == 0 || !is_ident(src.as_bytes()[start - 1]);
        let right_ok = end == src.len() || !is_ident(src.as_bytes()[end]);
        if left_ok && right_ok {
            return Some(Span { start, end });
        }
        from = start + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Qof024.as_str(), "QOF024");
        assert_eq!(Code::Qof011.to_string(), "QOF011");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("Year", "Year"), 0);
    }

    #[test]
    fn did_you_mean_respects_budget() {
        assert_eq!(did_you_mean("Yaer", ["Year", "Title"]), Some("Year"));
        assert_eq!(did_you_mean("Zzz", ["Year", "Title"]), None);
    }

    #[test]
    fn locate_matches_whole_identifiers() {
        let src = "SELECT r FROM References r WHERE r.Year = \"1982\"";
        let span = locate(src, "Year").unwrap();
        assert_eq!(&src[span.start..span.end], "Year");
        // `r` must match the variable, not the `r` inside `References`.
        let span = locate(src, "r").unwrap();
        assert_eq!(span.start, 7);
    }

    #[test]
    fn render_with_span_quotes_the_line() {
        let src = "SELECT r FROM Refs r";
        let d = Diagnostic::new(Code::Qof021, Severity::Error, "unknown view `Refs`")
            .with_span(locate(src, "Refs").unwrap())
            .with_note("did you mean `References`?");
        let text = d.render(Some(src));
        assert!(text.contains("error[QOF021]"), "{text}");
        assert!(text.contains("--> query:1:15"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("= note: did you mean"), "{text}");
    }
}
