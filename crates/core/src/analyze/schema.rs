//! Schema and index lints (`QOF001`–`QOF004`, `QOF010`).

use super::{Code, Diagnostic, Severity};
use qof_db::TypeDef;
use qof_grammar::{Grammar, IndexSpec, StructuringSchema, SymbolId};
use std::collections::BTreeSet;

/// Lints a structuring schema without any file or index:
///
/// * `QOF001` — non-terminals unreachable from the root (dead rules);
/// * `QOF002` — nullable non-terminals whose zero-width regions break the
///   region-forest nesting the optimizer relies on;
/// * `QOF003` — class annotations referencing fields with no grammar
///   counterpart under the class's symbol;
/// * `QOF004` — views over symbols the grammar does not define.
pub fn check_schema(schema: &StructuringSchema) -> Vec<Diagnostic> {
    let grammar = &schema.grammar;
    let mut out = Vec::new();

    for (view, symbol) in schema.views() {
        if grammar.symbol(symbol).is_none() {
            let d = Diagnostic::new(
                Code::Qof004,
                Severity::Error,
                format!("view `{view}` ranges over `{symbol}`, which the grammar does not define"),
            )
            .with_note("every view must name a grammar non-terminal (§4.1)");
            out.push(match super::did_you_mean(symbol, grammar.symbols().map(|(_, n)| n)) {
                Some(s) => d.with_note(format!("did you mean `{s}`?")),
                None => d,
            });
        }
    }

    let reachable = grammar.reachable_symbols();
    for (id, name) in grammar.symbols() {
        if !reachable.contains(&id) {
            out.push(
                Diagnostic::new(
                    Code::Qof001,
                    Severity::Warning,
                    format!("non-terminal `{name}` is unreachable from the root"),
                )
                .with_note("its regions can never occur in a parsed file, so querying or indexing it is dead weight"),
            );
        }
    }

    for id in grammar.nullable_symbols() {
        if !reachable.contains(&id) {
            continue; // already reported as QOF001
        }
        let name = grammar.name(id);
        out.push(
            Diagnostic::new(
                Code::Qof002,
                Severity::Warning,
                format!("non-terminal `{name}` can match the empty string"),
            )
            .with_note(
                "zero-width regions cannot be ordered in the region forest, so nesting tests \
                 on them are unreliable; delimit the rule (e.g. bracket the repetition)",
            ),
        );
    }

    for class in &schema.classes {
        let Some(sym) = grammar.symbol(&class.name) else {
            out.push(
                Diagnostic::new(
                    Code::Qof003,
                    Severity::Error,
                    format!("class `{}` does not correspond to any grammar symbol", class.name),
                )
                .with_note("natural structuring schemas name classes after non-terminals (§4.2)"),
            );
            continue;
        };
        let below = descendants(grammar, sym);
        for field in fields_of(&class.ty) {
            let known = grammar.symbol(&field).is_some_and(|f| below.contains(&f));
            if !known {
                let d = Diagnostic::new(
                    Code::Qof003,
                    Severity::Error,
                    format!(
                        "class `{}` declares field `{field}`, which no derivation of `{}` produces",
                        class.name, class.name
                    ),
                );
                let cands: Vec<&str> = below.iter().map(|&s| grammar.name(s)).collect();
                out.push(match super::did_you_mean(&field, cands.iter().copied()) {
                    Some(s) => d.with_note(format!("did you mean `{s}`?")),
                    None => d,
                });
            }
        }
    }

    out
}

/// Lints an index specification against a schema (`QOF010`): indexed names
/// that are not grammar symbols, or that no derivation from the root ever
/// produces — either way the index bucket can never serve a query path.
pub fn check_index(schema: &StructuringSchema, spec: &IndexSpec) -> Vec<Diagnostic> {
    let grammar = &schema.grammar;
    let mut out = Vec::new();
    if spec.is_full() {
        return out;
    }
    let reachable: BTreeSet<&str> =
        grammar.reachable_symbols().into_iter().map(|id| grammar.name(id)).collect();
    for name in spec.plain_names() {
        if grammar.symbol(name).is_none() {
            let d = Diagnostic::new(
                Code::Qof010,
                Severity::Error,
                format!("indexed name `{name}` is not a grammar symbol"),
            );
            out.push(match super::did_you_mean(name, grammar.symbols().map(|(_, n)| n)) {
                Some(s) => d.with_note(format!("did you mean `{s}`?")),
                None => d,
            });
        } else if !reachable.contains(name) {
            out.push(
                Diagnostic::new(
                    Code::Qof010,
                    Severity::Warning,
                    format!("indexed region `{name}` is unreachable from the grammar root"),
                )
                .with_note("no derivation produces it, so its index bucket stays empty"),
            );
        }
    }
    out
}

/// All symbols reachable from `sym` (exclusive of `sym` unless on a cycle).
fn descendants(grammar: &Grammar, sym: SymbolId) -> BTreeSet<SymbolId> {
    let mut seen = BTreeSet::new();
    let mut stack = grammar.children_of(sym);
    while let Some(s) = stack.pop() {
        if seen.insert(s) {
            stack.extend(grammar.children_of(s));
        }
    }
    seen
}

/// The field names a class type declares, across tuples nested in
/// sets/lists/unions.
fn fields_of(ty: &TypeDef) -> Vec<String> {
    match ty {
        TypeDef::Tuple(fields) => fields.keys().cloned().collect(),
        TypeDef::Set(t) | TypeDef::List(t) => fields_of(t),
        TypeDef::Union(ts) => ts.iter().flat_map(fields_of).collect(),
        TypeDef::Str | TypeDef::Int | TypeDef::Class(_) => Vec::new(),
    }
}
