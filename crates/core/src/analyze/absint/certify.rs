//! The rewrite certifier: abstract-interpretation sign-off on every
//! §3.3/§3.5 step the optimizer recorded.
//!
//! The optimizer's trace is replayed step by step from the original
//! chain. Each step must (1) structurally apply to the current chain,
//! (2) satisfy the Proposition 3.5 side condition it claims, and (3)
//! carry the abstract state across: the [`AbsState`]s of the chain
//! before and after the step must be [compatible](AbsState::compatible)
//! (a rewrite preserves the concrete result set, so the two
//! over-approximations must share at least one concretization). A
//! Proposition 3.3 `∅` verdict is certified by replaying the per-hop
//! dead-edge test — the structural ground truth — and confirming the
//! interpreter agrees the `∅` encoding is empty.
//!
//! Unlike `analyze::verify` (which turns violations into `QOF030`
//! diagnostics), the certifier returns a per-step verdict so the
//! planner can annotate each `PlanRewrite` as certified or not, surface
//! `QOF110` for failures, and — under `--strict` — fall back to the
//! unoptimized chain.

use super::{AbsInterp, AbsState};
use crate::analyze::verify::weaken_licensed;
use crate::analyze::{Code, Diagnostic, Severity};
use crate::optimizer::{is_trivially_empty, Optimized, RewriteKind};
use crate::{ChainOp, InclusionExpr, Rig};

/// The verdict on one optimizer step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepCert {
    /// Whether the step passed all three checks.
    pub certified: bool,
    /// Why it failed, when it did.
    pub reason: Option<String>,
}

impl StepCert {
    fn ok() -> Self {
        StepCert { certified: true, reason: None }
    }

    fn fail(reason: impl Into<String>) -> Self {
        StepCert { certified: false, reason: Some(reason.into()) }
    }
}

/// The certifier's output for one optimized chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyResult {
    /// One verdict per entry of the optimizer trace, in order.
    pub steps: Vec<StepCert>,
    /// The verdict on the Proposition 3.3 `∅` conclusion, when the
    /// optimizer drew one.
    pub empty_step: Option<StepCert>,
    /// Whether the replayed trace lands exactly on the optimized chain.
    pub replay_matches: bool,
}

impl CertifyResult {
    /// Whether every step (and the `∅` verdict, if any) is certified and
    /// the replay reproduced the optimizer's output.
    pub fn all_certified(&self) -> bool {
        self.replay_matches
            && self.steps.iter().all(|s| s.certified)
            && self.empty_step.as_ref().is_none_or(|s| s.certified)
    }
}

/// Certifies `out` — the optimizer's verdict on `original` over `rig` —
/// step by step. See the module docs for the three per-step checks.
pub fn certify(
    original: &InclusionExpr,
    rig: &Rig,
    out: &Optimized,
    interp: &AbsInterp<'_>,
) -> CertifyResult {
    if out.trivially_empty {
        let structurally_empty = is_trivially_empty(original, rig);
        // The planner encodes a Proposition 3.3 verdict as `x − x`; the
        // interpreter must prove that encoding empty. (The chain itself
        // may *not* be abstractly provable: the loose domain rule admits
        // reverse-path inclusions that equal-span regions could satisfy,
        // so the per-hop structural replay above is the authoritative
        // test, exactly as in `is_trivially_empty`.)
        let head = qof_pat::RegionExpr::name(&original.names()[0]);
        let abs_agrees = interp.analyze(&head.clone().difference(head)).empty;
        let step = if !structurally_empty {
            StepCert::fail("a per-hop replay finds no dead RIG edge or path")
        } else if !out.trace.is_empty() {
            StepCert::fail("a trivially empty expression must not also be rewritten")
        } else if !abs_agrees {
            StepCert::fail("the abstract state of the ∅ encoding is not provably empty")
        } else {
            StepCert::ok()
        };
        let certified = step.certified;
        return CertifyResult {
            steps: Vec::new(),
            empty_step: Some(step),
            replay_matches: certified,
        };
    }

    let mut names: Vec<String> = original.names().to_vec();
    let mut ops: Vec<ChainOp> = original.ops().to_vec();
    let mut steps = Vec::with_capacity(out.trace.len());
    let mut broken = false;
    for rw in &out.trace {
        if broken {
            steps.push(StepCert::fail("an earlier step failed to replay"));
            continue;
        }
        let pre = interp.analyze(&original.with_chain(names.clone(), ops.clone()).to_region_expr());
        let step = match &rw.kind {
            RewriteKind::Weaken { a, b } => {
                match (0..ops.len())
                    .find(|&i| names[i] == *a && names[i + 1] == *b && ops[i] == ChainOp::Direct)
                {
                    None => {
                        broken = true;
                        StepCert::fail(format!(
                            "`weaken {a} ⊃d {b}` does not apply to the current chain"
                        ))
                    }
                    Some(i) => {
                        let licensed = weaken_licensed(rig, original.direction(), &names, i);
                        ops[i] = ChainOp::Incl;
                        if licensed {
                            StepCert::ok()
                        } else {
                            StepCert::fail(format!(
                                "`weaken {a} ⊃d {b}` violates Proposition 3.5(a)"
                            ))
                        }
                    }
                }
            }
            RewriteKind::Shorten { a, via, b } => {
                match (0..names.len().saturating_sub(2)).find(|&i| {
                    names[i] == *a
                        && names[i + 1] == *via
                        && names[i + 2] == *b
                        && ops[i] == ChainOp::Incl
                        && ops[i + 1] == ChainOp::Incl
                }) {
                    None => {
                        broken = true;
                        StepCert::fail(format!(
                            "`drop {via} from {a} ⊃ {via} ⊃ {b}` does not apply to the current \
                             chain"
                        ))
                    }
                    Some(i) => {
                        let licensed = rig.all_paths_pass_through(a, b, via);
                        names.remove(i + 1);
                        ops.remove(i);
                        if licensed {
                            StepCert::ok()
                        } else {
                            StepCert::fail(format!(
                                "`drop {via} from {a} ⊃ {via} ⊃ {b}` violates Proposition 3.5(b)"
                            ))
                        }
                    }
                }
            }
        };
        let step = if step.certified {
            let post =
                interp.analyze(&original.with_chain(names.clone(), ops.clone()).to_region_expr());
            check_states(&pre, &post)
        } else {
            step
        };
        steps.push(step);
    }
    let replay_matches = !broken && names == out.expr.names() && ops == out.expr.ops();
    CertifyResult { steps, empty_step: None, replay_matches }
}

/// Renders an uncertified rewrite as the `QOF110` diagnostic `qof check`
/// emits — the one constructor behind both the check path and tests, so
/// the rendered shape cannot drift.
pub fn uncertified_diagnostic(
    proposition: &str,
    description: &str,
    reason: Option<&str>,
) -> Diagnostic {
    let mut d = Diagnostic::new(
        Code::Qof110,
        Severity::Warning,
        format!("optimizer rewrite [{proposition}] `{description}` failed certification"),
    )
    .with_note(
        "the abstract interpreter could not prove the step sound; `--strict` suppresses \
         uncertified rewrites",
    );
    if let Some(r) = reason {
        d = d.with_note(r);
    }
    d
}

/// The abstract-state leg of certification: a semantics-preserving
/// rewrite must leave the pre/post states compatible.
fn check_states(pre: &AbsState, post: &AbsState) -> StepCert {
    if pre.compatible(post) {
        StepCert::ok()
    } else {
        StepCert::fail(format!(
            "pre/post abstract states are incompatible: {} vs {} (empty: {} vs {})",
            pre.card, post.card, pre.empty, post.empty
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, Direction, Rewrite};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    fn bib_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("Reference", "Authors");
        g.add_edge("Authors", "Name");
        g.add_edge("Name", "Last_Name");
        g
    }

    #[test]
    fn real_optimizer_output_is_certified() {
        let g = bib_rig();
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            None,
        );
        let out = optimize(&e, &g);
        assert!(!out.trace.is_empty(), "the golden chain must rewrite");
        let interp = AbsInterp::new(&g);
        let cert = certify(&e, &g, &out, &interp);
        assert!(cert.all_certified(), "{cert:?}");
        assert_eq!(cert.steps.len(), out.trace.len());
    }

    #[test]
    fn trivially_empty_verdict_is_certified() {
        let mut g = Rig::new();
        g.add_edge("A", "B");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["B", "A"]), None);
        let out = optimize(&e, &g);
        assert!(out.trivially_empty);
        let interp = AbsInterp::new(&g);
        let cert = certify(&e, &g, &out, &interp);
        assert!(cert.all_certified(), "{cert:?}");
        assert!(cert.empty_step.is_some());
    }

    #[test]
    fn forged_shorten_is_not_certified() {
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("B", "C");
        g.add_edge("A", "C"); // second path: dropping B is unsound
        let e = InclusionExpr::including(
            names(&["A", "B", "C"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        let forged = Optimized {
            expr: e.with_chain(names(&["A", "C"]), vec![ChainOp::Incl]),
            trivially_empty: false,
            trace: vec![Rewrite {
                kind: RewriteKind::Shorten { a: "A".into(), via: "B".into(), b: "C".into() },
                description: String::new(),
                result: String::new(),
            }],
        };
        let interp = AbsInterp::new(&g);
        let cert = certify(&e, &g, &forged, &interp);
        assert!(!cert.all_certified());
        assert!(!cert.steps[0].certified);
        assert!(cert.steps[0].reason.as_deref().unwrap().contains("3.5(b)"));
    }

    #[test]
    fn forged_empty_verdict_is_not_certified() {
        let g = bib_rig();
        let e =
            InclusionExpr::including(names(&["Reference", "Authors"]), vec![ChainOp::Incl], None);
        let forged = Optimized { expr: e.clone(), trivially_empty: true, trace: Vec::new() };
        let interp = AbsInterp::new(&g);
        let cert = certify(&e, &g, &forged, &interp);
        assert!(!cert.all_certified());
    }
}
