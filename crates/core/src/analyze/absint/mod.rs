//! Abstract interpretation over the region algebra.
//!
//! Every [`RegionExpr`] node is assigned an [`AbsState`]: a **static
//! domain** (which region types the result's spans can belong to,
//! derived from the RIG's inclusion closure), a **cardinality interval**
//! (exact leaf counts from index statistics when available, `[0, ∞)`
//! otherwise), and an **emptiness fact** (`σ_w` on a word absent from
//! the index, inclusion chains contradicting the RIG's partial order,
//! `x − x`, …). The domains are *sound over-approximations*: the
//! concrete result's cardinality always lies in the interval, and a
//! node proven `empty` evaluates to ∅ on any instance consistent with
//! the RIG (the property tests in `crates/proptests` check exactly
//! this).
//!
//! Two consumers sit on top:
//!
//! * [`certify`](crate::analyze::absint::certify) — replays every
//!   §3.3/§3.5 rewrite the optimizer recorded and checks the pre/post
//!   abstract states are compatible (certified steps are annotated in
//!   `QueryTrace` and EXPLAIN; uncertifiable steps raise `QOF110` and,
//!   under `--strict`, suppress the rewrite);
//! * [`lint_expr`](AbsInterp::lint_expr) — the `QOF1xx` lint family in
//!   `qof check` (provably-empty subexpressions, dead `∪`/`−` branches,
//!   redundant intersections, inclusion over disjoint RIG components).

mod certify;

pub use certify::{certify, uncertified_diagnostic, CertifyResult, StepCert};

use super::{Code, Diagnostic, Severity};
use crate::trace::NodeFact;
use crate::Rig;
use qof_pat::{Instance, RegionExpr};
use qof_text::WordLookup;
use std::collections::BTreeSet;

/// An interval `[lo, hi]` of possible result cardinalities; `hi == None`
/// means unbounded (`∞`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardInterval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound; `None` is `∞`.
    pub hi: Option<u64>,
}

impl CardInterval {
    /// The no-information interval `[0, ∞)`.
    pub fn top() -> Self {
        CardInterval { lo: 0, hi: None }
    }

    /// A singleton interval `[n, n]`.
    pub fn exact(n: u64) -> Self {
        CardInterval { lo: n, hi: Some(n) }
    }

    /// The empty-set interval `[0, 0]`.
    pub fn zero() -> Self {
        CardInterval::exact(0)
    }

    /// Whether a concrete cardinality lies in the interval.
    pub fn contains(&self, n: u64) -> bool {
        self.lo <= n && self.hi.is_none_or(|hi| n <= hi)
    }

    /// Whether two intervals share at least one value.
    pub fn overlaps(&self, other: &CardInterval) -> bool {
        self.hi.is_none_or(|hi| other.lo <= hi) && other.hi.is_none_or(|hi| self.lo <= hi)
    }

    fn min_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        }
    }

    fn add_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        }
    }
}

impl std::fmt::Display for CardInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.hi {
            Some(hi) => write!(f, "[{}, {}]", self.lo, hi),
            None => write!(f, "[{}, ∞)", self.lo),
        }
    }
}

/// The abstract state of one expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Region types the result's spans can belong to. `Some(D)` claims
    /// every span in the concrete result is a region of at least one type
    /// in `D`; `None` is ⊤ (no claim — e.g. raw word spans).
    pub domain: Option<BTreeSet<String>>,
    /// Possible result cardinalities.
    pub card: CardInterval,
    /// Whether the node is *proven* to evaluate to ∅.
    pub empty: bool,
    /// Human-readable evidence for the facts above.
    pub notes: Vec<String>,
}

impl AbsState {
    fn top() -> Self {
        AbsState { domain: None, card: CardInterval::top(), empty: false, notes: Vec::new() }
    }

    fn mark_empty(mut self, note: impl Into<String>) -> Self {
        self.empty = true;
        self.card = CardInterval::zero();
        self.notes.push(note.into());
        self
    }

    /// Whether two abstract states can describe the same concrete set —
    /// the compatibility test the rewrite certifier applies to pre/post
    /// states. The empty set inhabits every domain, so disjoint domains
    /// only conflict when both states also require a non-empty result.
    pub fn compatible(&self, other: &AbsState) -> bool {
        if !self.card.overlaps(&other.card) {
            return false;
        }
        if self.empty != other.empty && (self.card.lo > 0 || other.card.lo > 0) {
            return false;
        }
        if let (Some(a), Some(b)) = (&self.domain, &other.domain) {
            if a.is_disjoint(b) && self.card.lo > 0 && other.card.lo > 0 {
                return false;
            }
        }
        true
    }
}

/// The abstract interpreter. Constructed from a [`Rig`] alone it reasons
/// purely structurally; [`AbsInterp::with_stats`] adds index statistics
/// for exact leaf cardinalities and absent-word emptiness facts.
pub struct AbsInterp<'a> {
    rig: &'a Rig,
    instance: Option<&'a Instance>,
    words: Option<&'a dyn WordLookup>,
}

impl<'a> AbsInterp<'a> {
    /// A purely structural interpreter: domains and RIG facts only, all
    /// cardinality intervals `[0, ∞)` at the leaves.
    pub fn new(rig: &'a Rig) -> Self {
        AbsInterp { rig, instance: None, words: None }
    }

    /// An interpreter with index statistics: `Name` leaves get exact
    /// counts from `instance`, `word(w)`/`σ_w` get `frequency(w)` bounds
    /// and absent-word emptiness facts from `words`.
    pub fn with_stats(rig: &'a Rig, instance: &'a Instance, words: &'a dyn WordLookup) -> Self {
        AbsInterp { rig, instance: Some(instance), words: Some(words) }
    }

    /// Whether spans of types `n` and `m` can stand in an inclusion
    /// relation per the RIG. Inclusion here is non-strict (`⊇`), so
    /// equal-span regions make the *reverse* RIG direction satisfiable
    /// too; names the RIG does not know (e.g. scoped index keys) are
    /// conservatively compatible with everything.
    fn can_relate(&self, n: &str, m: &str) -> bool {
        n == m
            || !self.rig.has_node(n)
            || !self.rig.has_node(m)
            || self.rig.has_path(n, m)
            || self.rig.has_path(m, n)
    }

    /// Like [`Self::can_relate`] but for *direct* inclusion: only the RIG
    /// edge in the stated direction (or equal spans) qualifies.
    fn can_relate_direct(&self, outer: &str, inner: &str) -> bool {
        outer == inner
            || !self.rig.has_node(outer)
            || !self.rig.has_node(inner)
            || self.rig.has_edge(outer, inner)
    }

    /// Keeps the names of `dom` that can relate to at least one name of
    /// `other` under `relate`; `None` (⊤) on either side passes `dom`
    /// through unchanged.
    fn filter_domain(
        dom: &Option<BTreeSet<String>>,
        other: &Option<BTreeSet<String>>,
        mut relate: impl FnMut(&str, &str) -> bool,
    ) -> Option<BTreeSet<String>> {
        match (dom, other) {
            (Some(d), Some(o)) => {
                Some(d.iter().filter(|n| o.iter().any(|m| relate(n, m))).cloned().collect())
            }
            _ => dom.clone(),
        }
    }

    fn leaf_name(&self, n: &str) -> AbsState {
        let mut st = AbsState {
            domain: Some(std::iter::once(n.to_string()).collect()),
            card: CardInterval::top(),
            empty: false,
            notes: Vec::new(),
        };
        if let Some(inst) = self.instance {
            let count = inst.get(n).map_or(0, qof_pat::RegionSet::len) as u64;
            st.card = CardInterval::exact(count);
            if count == 0 {
                st = st.mark_empty(format!("the index holds no `{n}` regions"));
            }
        }
        st
    }

    fn word_card(&self, w: &str) -> (CardInterval, bool) {
        match self.words {
            Some(idx) => {
                let f = idx.frequency(w) as u64;
                (CardInterval::exact(f), f == 0)
            }
            None => (CardInterval::top(), false),
        }
    }

    /// Computes the abstract state of `expr` bottom-up.
    pub fn analyze(&self, expr: &RegionExpr) -> AbsState {
        use RegionExpr as E;
        match expr {
            E::Name(n) => self.leaf_name(n),
            E::Word(w) => {
                let (card, absent) = self.word_card(w);
                let st = AbsState { domain: None, card, empty: false, notes: Vec::new() };
                if absent {
                    st.mark_empty(format!("word \"{w}\" does not occur in the corpus"))
                } else {
                    st
                }
            }
            E::Prefix(_) => AbsState::top(),
            E::Union(a, b) => {
                let (sa, sb) = (self.analyze(a), self.analyze(b));
                let domain = match (&sa.domain, &sb.domain) {
                    (Some(da), Some(db)) => Some(da.union(db).cloned().collect()),
                    _ => None,
                };
                let card = CardInterval {
                    lo: sa.card.lo.max(sb.card.lo),
                    hi: CardInterval::add_hi(sa.card.hi, sb.card.hi),
                };
                let mut st = AbsState { domain, card, empty: false, notes: Vec::new() };
                if sa.empty && sb.empty {
                    st = st.mark_empty("both union operands are provably empty");
                }
                st
            }
            E::Intersect(a, b) => {
                let (sa, sb) = (self.analyze(a), self.analyze(b));
                let filtered =
                    Self::filter_domain(&sa.domain, &sb.domain, |n, m| self.can_relate(n, m));
                let card = CardInterval { lo: 0, hi: CardInterval::min_hi(sa.card.hi, sb.card.hi) };
                let mut st =
                    AbsState { domain: filtered.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty || sb.empty {
                    st = st.mark_empty("an intersection operand is provably empty");
                } else if matches!(&filtered, Some(d) if d.is_empty()) {
                    st = st.mark_empty(
                        "the operand region types lie in unrelated RIG components, so no span \
                         can belong to both sides",
                    );
                }
                st
            }
            E::Difference(a, b) => {
                let sa = self.analyze(a);
                let card = CardInterval { lo: 0, hi: sa.card.hi };
                let mut st =
                    AbsState { domain: sa.domain.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty {
                    st = st.mark_empty("the left difference operand is provably empty");
                } else if a == b {
                    st = st.mark_empty("`x − x` is the empty set");
                }
                st
            }
            E::SelectEq(a, w) => {
                let sa = self.analyze(a);
                let (wc, absent) = self.word_card(w);
                let card = CardInterval { lo: 0, hi: CardInterval::min_hi(sa.card.hi, wc.hi) };
                let mut st =
                    AbsState { domain: sa.domain.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty {
                    st = st.mark_empty("the selected set is provably empty");
                } else if absent {
                    st = st.mark_empty(format!("word \"{w}\" does not occur in the corpus"));
                }
                st
            }
            E::SelectContains(a, w) => {
                let sa = self.analyze(a);
                let card = CardInterval { lo: 0, hi: sa.card.hi };
                let mut st =
                    AbsState { domain: sa.domain.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty {
                    st = st.mark_empty("the selected set is provably empty");
                } else if self.words.is_some_and(|idx| !idx.contains(w)) {
                    st = st.mark_empty(format!("word \"{w}\" does not occur in the corpus"));
                }
                st
            }
            E::Innermost(a) | E::Outermost(a) => {
                let sa = self.analyze(a);
                let card = CardInterval { lo: sa.card.lo.min(1), hi: sa.card.hi };
                let mut st =
                    AbsState { domain: sa.domain.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty {
                    st = st.mark_empty("the operand is provably empty");
                }
                st
            }
            E::Including(a, b) => self.inclusion(a, b, false, false),
            E::IncludedIn(a, b) => self.inclusion(a, b, true, false),
            E::DirectIncluding(a, b) => self.inclusion(a, b, false, true),
            E::DirectIncludedIn(a, b) => self.inclusion(a, b, true, true),
            E::NestedExactly { outer, inner, .. } => {
                let (so, si) = (self.analyze(outer), self.analyze(inner));
                let card = CardInterval { lo: 0, hi: so.card.hi };
                let mut st =
                    AbsState { domain: so.domain.clone(), card, empty: false, notes: Vec::new() };
                if so.empty || si.empty {
                    st = st.mark_empty("a nesting operand is provably empty");
                }
                st
            }
            E::Near { left, right, .. } => {
                let (sl, sr) = (self.analyze(left), self.analyze(right));
                let mut st = AbsState::top();
                if sl.empty || sr.empty {
                    st = st.mark_empty("a near() operand is provably empty");
                }
                st
            }
            E::SelectCountAtLeast(a, w, n) => {
                let sa = self.analyze(a);
                let card = CardInterval { lo: 0, hi: sa.card.hi };
                let mut st =
                    AbsState { domain: sa.domain.clone(), card, empty: false, notes: Vec::new() };
                if sa.empty {
                    st = st.mark_empty("the selected set is provably empty");
                } else if *n >= 1 && self.words.is_some_and(|idx| !idx.contains(w)) {
                    st = st.mark_empty(format!("word \"{w}\" does not occur in the corpus"));
                }
                st
            }
        }
    }

    /// Common transfer function for the four inclusion operators. The
    /// result is always a subset of the left operand; the left domain is
    /// filtered to the types that can relate to the right per the RIG.
    /// `contained` flips the relation direction (`⊂` keeps types *inside*
    /// the right operand), `direct` restricts it to single RIG edges.
    fn inclusion(&self, a: &RegionExpr, b: &RegionExpr, contained: bool, direct: bool) -> AbsState {
        let (sa, sb) = (self.analyze(a), self.analyze(b));
        let relate = |n: &str, m: &str| {
            let (outer, inner) = if contained { (m, n) } else { (n, m) };
            if direct {
                self.can_relate_direct(outer, inner)
            } else {
                self.can_relate(outer, inner)
            }
        };
        let filtered = Self::filter_domain(&sa.domain, &sb.domain, relate);
        let card = CardInterval { lo: 0, hi: sa.card.hi };
        let mut st = AbsState { domain: filtered.clone(), card, empty: false, notes: Vec::new() };
        if sa.empty || sb.empty {
            st = st.mark_empty("an inclusion operand is provably empty");
        } else if matches!(&filtered, Some(d) if d.is_empty()) {
            let op = match (contained, direct) {
                (false, false) => "⊃",
                (false, true) => "⊃d",
                (true, false) => "⊂",
                (true, true) => "⊂d",
            };
            st = st.mark_empty(format!(
                "no `{op}` relation between the operand region types is satisfiable per the RIG"
            ));
        }
        st
    }

    /// Packages the abstract state of `expr` as a trace-schema
    /// [`NodeFact`] labelled `node`.
    pub fn fact(&self, node: impl Into<String>, expr: &RegionExpr) -> NodeFact {
        let st = self.analyze(expr);
        NodeFact {
            node: node.into(),
            domain: st.domain.clone().map(|d| d.into_iter().collect()).unwrap_or_default(),
            domain_known: st.domain.is_some(),
            card_lo: st.card.lo,
            card_hi: st.card.hi,
            empty: st.empty,
            notes: st.notes,
        }
    }

    /// The `QOF1xx` lint pass: walks `expr` emitting diagnostics for
    /// provably-empty subexpressions (`QOF100`, at the outermost empty
    /// node only), dead `∪`/`−` branches (`QOF101`), redundant
    /// intersections (`QOF102`) and inclusions the RIG proves
    /// unsatisfiable (`QOF103`).
    pub fn lint_expr(&self, expr: &RegionExpr, out: &mut Vec<Diagnostic>) {
        use RegionExpr as E;
        let st = self.analyze(expr);
        if st.empty {
            // The planner encodes Proposition 3.3 emptiness as `x − x`;
            // that syntactic form is QOF024's territory, not a new lint.
            if matches!(expr, E::Difference(a, b) if a == b) {
                return;
            }
            let disjoint_inclusion =
                matches!(
                    expr,
                    E::Including(..)
                        | E::IncludedIn(..)
                        | E::DirectIncluding(..)
                        | E::DirectIncludedIn(..)
                ) && st.notes.iter().any(|n| n.contains("satisfiable per the RIG"));
            let mut d = if disjoint_inclusion {
                Diagnostic::new(
                    Code::Qof103,
                    Severity::Warning,
                    format!("inclusion `{expr}` relates disjoint RIG components"),
                )
            } else {
                Diagnostic::new(
                    Code::Qof100,
                    Severity::Warning,
                    format!("subexpression `{expr}` is provably empty"),
                )
            };
            for note in st.notes {
                d = d.with_note(note);
            }
            out.push(d);
            return;
        }
        match expr {
            E::Union(a, b) => {
                for (side, other) in [(a, b), (b, a)] {
                    if self.analyze(side).empty && !self.analyze(other).empty {
                        out.push(Diagnostic::new(
                            Code::Qof101,
                            Severity::Warning,
                            format!("dead `∪` branch: `{side}` is provably empty"),
                        ));
                    }
                }
                self.lint_expr(a, out);
                self.lint_expr(b, out);
            }
            E::Difference(a, b) => {
                if self.analyze(b).empty {
                    out.push(Diagnostic::new(
                        Code::Qof101,
                        Severity::Warning,
                        format!("dead `−` branch: subtracting the provably empty `{b}`"),
                    ));
                }
                self.lint_expr(a, out);
                self.lint_expr(b, out);
            }
            E::Intersect(a, b) => {
                if a == b {
                    out.push(Diagnostic::new(
                        Code::Qof102,
                        Severity::Warning,
                        format!("redundant intersection: both operands are `{a}`"),
                    ));
                }
                self.lint_expr(a, out);
                self.lint_expr(b, out);
            }
            E::Including(a, b)
            | E::IncludedIn(a, b)
            | E::DirectIncluding(a, b)
            | E::DirectIncludedIn(a, b) => {
                self.lint_expr(a, out);
                self.lint_expr(b, out);
            }
            E::NestedExactly { outer, inner, .. } => {
                self.lint_expr(outer, out);
                self.lint_expr(inner, out);
            }
            E::Near { left, right, .. } => {
                self.lint_expr(left, out);
                self.lint_expr(right, out);
            }
            E::SelectEq(a, _)
            | E::SelectContains(a, _)
            | E::SelectCountAtLeast(a, _, _)
            | E::Innermost(a)
            | E::Outermost(a) => self.lint_expr(a, out),
            E::Name(_) | E::Word(_) | E::Prefix(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib_rig() -> Rig {
        let mut g = Rig::new();
        g.add_edge("Reference", "Key");
        g.add_edge("Reference", "Authors");
        g.add_edge("Reference", "Title");
        g.add_edge("Authors", "Name");
        g.add_edge("Name", "Last_Name");
        g
    }

    #[test]
    fn name_domain_is_singleton_and_inclusion_filters_it() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let e = RegionExpr::name("Reference").including(RegionExpr::name("Last_Name"));
        let st = i.analyze(&e);
        assert_eq!(st.domain, Some(std::iter::once("Reference".to_string()).collect()));
        assert!(!st.empty);
    }

    #[test]
    fn inclusion_over_disjoint_components_is_empty() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let e = RegionExpr::name("Title").including(RegionExpr::name("Last_Name"));
        let st = i.analyze(&e);
        assert!(st.empty, "Title has no RIG path to/from Last_Name");
        assert_eq!(st.card, CardInterval::zero());
    }

    #[test]
    fn direct_inclusion_requires_the_edge() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let ok = RegionExpr::name("Authors").direct_including(RegionExpr::name("Name"));
        assert!(!i.analyze(&ok).empty);
        let skip = RegionExpr::name("Reference").direct_including(RegionExpr::name("Last_Name"));
        assert!(i.analyze(&skip).empty, "⊃d needs the edge, not just a path");
    }

    #[test]
    fn difference_of_equal_expressions_is_empty() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let x = RegionExpr::name("Title");
        let st = i.analyze(&x.clone().difference(x));
        assert!(st.empty);
    }

    #[test]
    fn union_interval_sums_and_maxes() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let e = RegionExpr::name("Title").union(RegionExpr::name("Key"));
        let st = i.analyze(&e);
        assert_eq!(st.card, CardInterval::top());
        assert_eq!(st.domain, Some(["Key".to_string(), "Title".to_string()].into_iter().collect()));
    }

    #[test]
    fn lints_fire_where_expected() {
        let g = bib_rig();
        let i = AbsInterp::new(&g);
        let mut out = Vec::new();
        // Dead union branch: one side provably empty, the other fine.
        let dead = RegionExpr::name("Title").including(RegionExpr::name("Last_Name"));
        let live = RegionExpr::name("Reference");
        i.lint_expr(&live.clone().union(dead), &mut out);
        assert!(out.iter().any(|d| d.code == Code::Qof101), "{out:?}");
        assert!(out.iter().any(|d| d.code == Code::Qof103), "{out:?}");
        out.clear();
        i.lint_expr(&live.clone().intersect(live), &mut out);
        assert_eq!(out.iter().filter(|d| d.code == Code::Qof102).count(), 1);
    }

    #[test]
    fn compatible_states_tolerate_coarsening() {
        let precise = AbsState {
            domain: Some(std::iter::once("A".to_string()).collect()),
            card: CardInterval::exact(3),
            empty: false,
            notes: Vec::new(),
        };
        let coarse = AbsState::top();
        assert!(precise.compatible(&coarse));
        assert!(coarse.compatible(&precise));
        let empty = AbsState::top().mark_empty("x");
        assert!(!precise.compatible(&empty), "exact 3 vs proven ∅ must conflict");
    }
}
