//! Plan self-verification (`QOF030`, `QOF031`).
//!
//! The optimizer's output is *checked, not trusted*: every [`Rewrite`] it
//! emits is replayed against the side conditions of Proposition 3.5, and
//! the confluence claim of Theorem 3.6 is probed by reducing the same
//! expression under the opposite application order.
//!
//! On confluence the implementation deliberately deviates from the paper:
//! property testing found RIGs where the normal form is order-dependent
//! (see the `optimizer` module docs). All observed divergent normal forms
//! are cost-identical, so a *syntactic* divergence with equal cost is a
//! `QOF031` **warning** (documenting the Theorem 3.6 counterexample),
//! while a cost divergence would be a `QOF031` **error** — and trips the
//! `debug_assertions`/`self-verify` assertion inside
//! [`optimize`](crate::optimize) itself.

use super::{Code, Diagnostic, Severity};
use crate::optimizer::{is_trivially_empty, Optimized, RewriteKind};
use crate::{ChainOp, Direction, InclusionExpr, Rig};

/// Replays every rewrite in `out.trace` from `original`, re-checking the
/// Proposition 3.5 side condition each one claims, and confirms the replay
/// lands exactly on `out.expr`. Any violation is a `QOF030` error.
pub fn verify_rewrites(original: &InclusionExpr, rig: &Rig, out: &Optimized) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let empty = is_trivially_empty(original, rig);
    if out.trivially_empty != empty {
        diags.push(Diagnostic::new(
            Code::Qof030,
            Severity::Error,
            format!(
                "optimizer marked `{original}` trivially_empty={}, but Proposition 3.3 says {}",
                out.trivially_empty, empty
            ),
        ));
        return diags;
    }
    if empty {
        if !out.trace.is_empty() {
            diags.push(Diagnostic::new(
                Code::Qof030,
                Severity::Error,
                "a trivially empty expression must not be rewritten".to_string(),
            ));
        }
        return diags;
    }

    let mut names: Vec<String> = original.names().to_vec();
    let mut ops: Vec<ChainOp> = original.ops().to_vec();
    for rw in &out.trace {
        match &rw.kind {
            RewriteKind::Weaken { a, b } => {
                let Some(i) = (0..ops.len())
                    .find(|&i| names[i] == *a && names[i + 1] == *b && ops[i] == ChainOp::Direct)
                else {
                    diags.push(Diagnostic::new(
                        Code::Qof030,
                        Severity::Error,
                        format!("rewrite `weaken {a} ⊃d {b}` does not apply to the current chain"),
                    ));
                    return diags;
                };
                if !weaken_licensed(rig, original.direction(), &names, i) {
                    diags.push(
                        Diagnostic::new(
                            Code::Qof030,
                            Severity::Error,
                            format!("rewrite `weaken {a} ⊃d {b}` violates Proposition 3.5(a)"),
                        )
                        .with_note(
                            "the edge is not the only path and the hop is not a licensed \
                             endpoint hop",
                        ),
                    );
                }
                ops[i] = ChainOp::Incl;
            }
            RewriteKind::Shorten { a, via, b } => {
                let Some(i) = (0..names.len().saturating_sub(2)).find(|&i| {
                    names[i] == *a
                        && names[i + 1] == *via
                        && names[i + 2] == *b
                        && ops[i] == ChainOp::Incl
                        && ops[i + 1] == ChainOp::Incl
                }) else {
                    diags.push(Diagnostic::new(
                        Code::Qof030,
                        Severity::Error,
                        format!(
                            "rewrite `drop {via} from {a} ⊃ {via} ⊃ {b}` does not apply to \
                             the current chain"
                        ),
                    ));
                    return diags;
                };
                if !rig.all_paths_pass_through(a, b, via) {
                    diags.push(
                        Diagnostic::new(
                            Code::Qof030,
                            Severity::Error,
                            format!(
                                "rewrite `drop {via} from {a} ⊃ {via} ⊃ {b}` violates \
                                 Proposition 3.5(b)"
                            ),
                        )
                        .with_note(format!(
                            "some path from `{a}` to `{b}` avoids `{via}`, so dropping the \
                             `{via}` test admits extra results"
                        )),
                    );
                }
                names.remove(i + 1);
                ops.remove(i);
            }
        }
    }
    if names != out.expr.names() || ops != out.expr.ops() {
        diags.push(
            Diagnostic::new(
                Code::Qof030,
                Severity::Error,
                format!("the trace does not reproduce the optimized expression `{}`", out.expr),
            )
            .with_note(format!("replay landed on `{}`", original.with_chain(names, ops))),
        );
    }
    diags
}

/// Whether Proposition 3.5(a) licenses weakening the hop at `i`:
/// the edge is the only path, or the hop touches the chain's existential
/// endpoint and every path runs through the edge at that end.
pub(crate) fn weaken_licensed(rig: &Rig, dir: Direction, names: &[String], i: usize) -> bool {
    let (a, b) = (&names[i], &names[i + 1]);
    if rig.only_path_edge(a, b) {
        return true;
    }
    match dir {
        Direction::Including => i + 1 == names.len() - 1 && rig.all_paths_start_with_edge(a, b),
        Direction::IncludedIn => i == 0 && rig.all_paths_end_with_edge(a, b),
    }
}

/// Probes Theorem 3.6: reduces `expr` applying shortenings leftmost-first
/// and rightmost-first. Divergent normal forms of equal cost are a
/// `QOF031` warning (the documented counterexample class); a cost
/// divergence is a `QOF031` error.
pub fn check_confluence(expr: &InclusionExpr, rig: &Rig) -> Vec<Diagnostic> {
    if is_trivially_empty(expr, rig) {
        return Vec::new();
    }
    let (ln, lo) = reduce(expr, rig, false);
    let (rn, ro) = reduce(expr, rig, true);
    if ln == rn && lo == ro {
        return Vec::new();
    }
    let cost = |ops: &[ChainOp]| (ops.len(), ops.iter().filter(|o| **o == ChainOp::Direct).count());
    let left = expr.with_chain(ln, lo.clone());
    let right = expr.with_chain(rn, ro.clone());
    if cost(&lo) == cost(&ro) {
        vec![Diagnostic::new(
            Code::Qof031,
            Severity::Warning,
            format!("normal form is order-dependent: leftmost gives `{left}`, rightmost `{right}`"),
        )
        .with_note(
            "a known counterexample class to Theorem 3.6; the forms are cost-identical \
             and semantically equivalent, and the implementation picks leftmost-first \
             deterministically",
        )]
    } else {
        vec![Diagnostic::new(
            Code::Qof031,
            Severity::Error,
            format!("normal forms diverge in cost: leftmost gives `{left}`, rightmost `{right}`"),
        )]
    }
}

/// The §3.2 reduction with a controllable shortening order. Weakening
/// (step 1) is position-independent; only step 2's scan order varies.
fn reduce(expr: &InclusionExpr, rig: &Rig, rightmost: bool) -> (Vec<String>, Vec<ChainOp>) {
    let mut names: Vec<String> = expr.names().to_vec();
    let mut ops: Vec<ChainOp> = expr.ops().to_vec();
    for (i, op) in ops.iter_mut().enumerate() {
        if *op == ChainOp::Direct && weaken_licensed(rig, expr.direction(), &names, i) {
            *op = ChainOp::Incl;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let idx: Vec<usize> = if rightmost {
            (0..names.len().saturating_sub(2)).rev().collect()
        } else {
            (0..names.len().saturating_sub(2)).collect()
        };
        for i in idx {
            if ops[i] != ChainOp::Incl || ops[i + 1] != ChainOp::Incl {
                continue;
            }
            if rig.all_paths_pass_through(&names[i], &names[i + 2], &names[i + 1]) {
                names.remove(i + 1);
                ops.remove(i);
                changed = true;
                break;
            }
        }
    }
    (names, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn clean_optimization_verifies() {
        let mut g = Rig::new();
        g.add_edge("Reference", "Authors");
        g.add_edge("Authors", "Name");
        g.add_edge("Name", "Last_Name");
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            None,
        );
        let out = optimize(&e, &g);
        assert!(verify_rewrites(&e, &g, &out).is_empty());
        assert!(check_confluence(&e, &g).is_empty());
    }

    #[test]
    fn forged_shorten_is_rejected() {
        // A trace claiming a drop that Prop 3.5(b) does not license.
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("B", "C");
        g.add_edge("A", "C"); // second path: dropping B is unsound
        let e = InclusionExpr::including(
            names(&["A", "B", "C"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        let forged = Optimized {
            expr: e.with_chain(names(&["A", "C"]), vec![ChainOp::Incl]),
            trivially_empty: false,
            trace: vec![crate::Rewrite {
                kind: RewriteKind::Shorten { a: "A".into(), via: "B".into(), b: "C".into() },
                description: String::new(),
                result: String::new(),
            }],
        };
        let diags = verify_rewrites(&e, &g, &forged);
        assert!(diags.iter().any(|d| d.code == Code::Qof030 && d.severity == Severity::Error));
    }

    #[test]
    fn thm36_counterexample_is_cost_confluent() {
        // The documented counterexample: normal forms differ syntactically
        // but match in cost — QOF031 warning, not error.
        let mut g = Rig::new();
        g.add_edge("A", "B");
        g.add_edge("A", "F");
        g.add_edge("B", "E");
        g.add_edge("E", "F");
        let e = InclusionExpr::all_direct(Direction::Including, names(&["A", "B", "E", "F"]), None);
        let diags = check_confluence(&e, &g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Qof031);
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
