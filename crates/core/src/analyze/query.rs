//! Query lints (`QOF011`, `QOF020`–`QOF026`, `QOF1xx`).
//!
//! Everything here is decided **statically**: from the query text, the
//! structuring schema, the RIG, and (when a planner is supplied) the index
//! spec — no file content is ever read. With a planner, the abstract
//! interpreter additionally lints the *planned* region expressions
//! (`QOF100`–`QOF103`) and surfaces any rewrite the certifier refused to
//! sign off (`QOF110`); `QOF104` flags closures over non-cyclic RIG
//! names.

use super::absint::AbsInterp;
use super::{did_you_mean, locate, Code, Diagnostic, Severity};
use crate::optimizer::optimize;
use crate::plan::{CondNode, InexactReason, Plan, PlanError, Planner, ProjPlan};
use crate::translate::{resolve_path, SkOp, Skeleton, TranslateError};
use crate::{
    parse_query, ChainOp, Cond, Direction, InclusionExpr, Projection, QPath, QStep, Query, Rig,
    RightHand,
};
use qof_db::TypeDef;
use qof_grammar::StructuringSchema;

/// Statically checks one query against a schema and its RIG. With a
/// [`Planner`] (i.e. an index spec), also checks index-dependent facts:
/// §6.3 exactness (`QOF011`) and view indexing (`QOF026`).
///
/// Prefer [`FileDatabase::check`](crate::FileDatabase::check), which
/// supplies the planner for you.
pub fn check_query(
    schema: &StructuringSchema,
    full_rig: &Rig,
    planner: Option<&Planner<'_>>,
    src: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // QOF020: syntax. Nothing else can be checked if parsing fails.
    let q = match parse_query(src) {
        Ok(q) => q,
        Err(e) => {
            let at = e.at.min(src.len());
            out.push(
                Diagnostic::new(Code::Qof020, Severity::Error, e.message)
                    .with_span(super::Span { start: at, end: at + 1 }),
            );
            return out;
        }
    };

    // QOF021: views. Unknown views suppress path checks for their vars.
    let grammar = &schema.grammar;
    let mut symbols: Vec<(String, String)> = Vec::new(); // (var, view symbol)
    for (view, var) in &q.ranges {
        match schema.view_symbol_name(view) {
            Some(sym) => symbols.push((var.clone(), sym.to_owned())),
            None => {
                let mut d = Diagnostic::new(
                    Code::Qof021,
                    Severity::Error,
                    format!("unknown view `{view}`"),
                );
                if let Some(span) = locate(src, view) {
                    d = d.with_span(span);
                }
                let views: Vec<&str> = schema.views().map(|(v, _)| v).collect();
                if let Some(s) = did_you_mean(view, views.iter().copied()) {
                    d = d.with_note(format!("did you mean `{s}`?"));
                }
                out.push(d);
            }
        }
    }

    let mut empty_paths: Vec<String> = Vec::new();
    for path in paths_of(&q) {
        let Some((_, symbol)) = symbols.iter().find(|(v, _)| *v == path.var) else {
            continue; // unknown view (reported) or unknown variable (QOF020 domain)
        };
        match resolve_path(grammar, symbol, &path.steps) {
            Err(e) => out.push(translate_diag(grammar, symbol, &path, &e, src)),
            Ok(spec) => {
                if check_trivially_empty(full_rig, &path, &spec.alternatives, src, &mut out) {
                    empty_paths.push(path.to_string());
                } else {
                    check_star_suggestion(full_rig, symbol, &path, src, &mut out);
                    check_acyclic_closure(full_rig, &path, &spec.alternatives, src, &mut out);
                }
            }
        }
    }

    check_types(schema, &q, src, &mut out);

    if let Some(planner) = planner {
        check_with_planner(planner, &q, &symbols, &empty_paths, src, &mut out);
    }

    out
}

/// Collects every path the query mentions (projection, conditions, joins).
fn paths_of(q: &Query) -> Vec<QPath> {
    fn walk(c: &Cond, out: &mut Vec<QPath>) {
        match c {
            Cond::Eq(p, rh) => {
                out.push(p.clone());
                if let RightHand::Path(qp) = rh {
                    out.push(qp.clone());
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Cond::Not(a) => walk(a, out),
        }
    }
    let mut out = Vec::new();
    if let Projection::Path(p) = &q.select {
        out.push(p.clone());
    }
    if let Some(w) = &q.where_ {
        walk(w, &mut out);
    }
    out
}

/// QOF020/QOF022 from a translation failure, with did-you-mean.
fn translate_diag(
    grammar: &qof_grammar::Grammar,
    symbol: &str,
    path: &QPath,
    e: &TranslateError,
    src: &str,
) -> Diagnostic {
    match e {
        TranslateError::NoSuchAttribute { attribute, under } => {
            let mut d = Diagnostic::new(
                Code::Qof022,
                Severity::Error,
                format!("no attribute `{attribute}` under `{under}`"),
            );
            if let Some(span) = locate(src, attribute) {
                d = d.with_span(span);
            }
            if let Some(u) = grammar.symbol(under) {
                let mut cands: Vec<&str> = Vec::new();
                let mut stack = grammar.children_of(u);
                let mut seen = std::collections::BTreeSet::new();
                while let Some(s) = stack.pop() {
                    if seen.insert(s) {
                        cands.push(grammar.name(s));
                        stack.extend(grammar.children_of(s));
                    }
                }
                if let Some(s) = did_you_mean(attribute, cands.iter().copied()) {
                    d = d.with_note(format!("did you mean `{s}`?"));
                }
            }
            d
        }
        TranslateError::UnknownSymbol(s) => {
            let mut d = Diagnostic::new(
                Code::Qof022,
                Severity::Error,
                format!("unknown symbol `{s}` in path `{path}`"),
            );
            if let Some(span) = locate(src, s) {
                d = d.with_span(span);
            }
            if let Some(sugg) = did_you_mean(s, grammar.symbols().map(|(_, n)| n)) {
                d = d.with_note(format!("did you mean `{sugg}`?"));
            }
            d
        }
        TranslateError::VariableAtEnd => {
            let mut d = Diagnostic::new(
                Code::Qof020,
                Severity::Error,
                format!(
                    "path `{path}` ends in a variable; a variable must be followed by an attribute"
                ),
            );
            if let Some(span) = locate(src, &path.var) {
                d = d.with_span(span);
            }
            d
        }
        TranslateError::UnknownView(v) => {
            // Normally caught at the FROM clause; keep a fallback.
            Diagnostic::new(Code::Qof021, Severity::Error, format!("unknown view `{v}`"))
        }
    }
    .with_note(format!("path resolved against view symbol `{symbol}`"))
}

/// QOF024 — Proposition 3.3, checked **pre-optimizer** on the full RIG:
/// the path is empty on every instance iff every derivation alternative
/// has a dead hop. The witnessing hop goes into the notes. Returns whether
/// the path was reported, so follow-up lints can stay quiet about it.
fn check_trivially_empty(
    rig: &Rig,
    path: &QPath,
    alternatives: &[Skeleton],
    src: &str,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let mut witnesses = Vec::new();
    for alt in alternatives {
        match dead_hop(rig, alt) {
            Some(w) => witnesses.push(w),
            None => return false, // one live derivation ⇒ not trivially empty
        }
    }
    let Some(first) = witnesses.first() else { return false };
    let mut d = Diagnostic::new(
        Code::Qof024,
        Severity::Warning,
        format!("path `{path}` is trivially empty (Proposition 3.3)"),
    )
    .with_note(first.clone());
    for extra in witnesses.iter().skip(1) {
        if extra != first {
            d = d.with_note(format!("another derivation is also dead: {extra}"));
        }
    }
    d = d.with_note("the result is empty on every file satisfying the schema; the engine will not touch the index");
    if let Some(name) = path.steps.iter().rev().find_map(|s| match s {
        QStep::Attr(a) => Some(a.as_str()),
        _ => None,
    }) {
        if let Some(span) = locate(src, name) {
            d = d.with_span(span);
        }
    }
    out.push(d);
    true
}

/// The first dead hop of a skeleton under Proposition 3.3, described.
fn dead_hop(rig: &Rig, alt: &Skeleton) -> Option<String> {
    for (i, op) in alt.ops.iter().enumerate() {
        let (a, b) = (&alt.names[i], &alt.names[i + 1]);
        let witness = match op {
            SkOp::Adjacent if !rig.has_edge(a, b) => {
                Some(format!("the RIG has no edge `{a} → {b}`"))
            }
            SkOp::Star | SkOp::Closure if !rig.has_path(a, b) => {
                Some(format!("the RIG has no path from `{a}` to `{b}`"))
            }
            SkOp::Exact(n) if !has_walk(rig, a, b, *n + 1) => {
                Some(format!("the RIG has no walk of exactly {} edges from `{a}` to `{b}`", *n + 1))
            }
            _ => None,
        };
        if witness.is_some() {
            return witness;
        }
    }
    None
}

/// Whether the RIG has a walk of exactly `edges` edges from `a` to `b`.
fn has_walk(rig: &Rig, a: &str, b: &str, edges: u32) -> bool {
    if edges == 0 {
        return a == b;
    }
    rig.successors(a).iter().any(|&m| has_walk(rig, m, b, edges - 1))
}

/// QOF025 — §5.3: a fixed path whose optimizer normal form is the single
/// inclusion `view ⊃ target` selects exactly the regions `*X.target`
/// selects. The star form expresses that single inclusion directly — one
/// index operation, no reliance on the rewrite engine.
fn check_star_suggestion(
    rig: &Rig,
    view_symbol: &str,
    path: &QPath,
    src: &str,
    out: &mut Vec<Diagnostic>,
) {
    let attrs: Vec<&str> = path
        .steps
        .iter()
        .map(|s| match s {
            QStep::Attr(a) => Some(a.as_str()),
            _ => None,
        })
        .collect::<Option<_>>()
        .unwrap_or_default();
    // Only plain fixed paths with at least one intermediate hop.
    if attrs.len() != path.steps.len() || attrs.len() < 2 {
        return;
    }
    // The pre-optimizer chain the planner would build under full indexing.
    let mut names: Vec<String> = vec![view_symbol.to_owned()];
    names.extend(attrs.iter().map(|s| (*s).to_owned()));
    let chain = InclusionExpr::all_direct(Direction::Including, names, None);
    let opt = optimize(&chain, rig);
    if opt.trivially_empty {
        return; // QOF024 territory
    }
    if opt.expr.names().len() == 2 && opt.expr.ops() == [ChainOp::Incl] {
        let target = *attrs.last().expect("non-empty");
        let mut d = Diagnostic::new(
            Code::Qof025,
            Severity::Help,
            format!("fixed path `{path}` can be written `{}.*X.{target}` (§5.3)", path.var),
        )
        .with_note(format!(
            "the RIG proves every `{target}` under `{view_symbol}` lies on this path, so \
             `*X` selects the same regions with a single inclusion operation, \
             independent of the rewrite engine"
        ));
        if let Some(span) = locate(src, target) {
            d = d.with_span(span);
        }
        out.push(d);
    }
}

/// QOF104 — a closure step (`A+`) over a name on no RIG cycle: `A` can
/// never nest within itself, so the closure collapses to a single level
/// and the `+` is misleading (pre-wiring for path regular expressions).
fn check_acyclic_closure(
    rig: &Rig,
    path: &QPath,
    alternatives: &[Skeleton],
    src: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut flagged: Vec<&str> = Vec::new();
    for alt in alternatives {
        for (i, op) in alt.ops.iter().enumerate() {
            let target = alt.names[i + 1].as_str();
            if *op == SkOp::Closure && !rig.on_cycle(target) && !flagged.contains(&target) {
                flagged.push(target);
                let mut d = Diagnostic::new(
                    Code::Qof104,
                    Severity::Help,
                    format!("closure `{target}+` in `{path}` ranges over a non-cyclic RIG name"),
                )
                .with_note(format!(
                    "the RIG has no cycle through `{target}`, so `{target}` regions never nest \
                     within each other and `{target}+` matches exactly one level"
                ));
                if let Some(span) = locate(src, target) {
                    d = d.with_span(span);
                }
                out.push(d);
            }
        }
    }
}

/// QOF023 — type mismatches on comparisons, via `qof_db::schema`.
fn check_types(schema: &StructuringSchema, q: &Query, src: &str, out: &mut Vec<Diagnostic>) {
    let Some(w) = &q.where_ else { return };
    fn walk(schema: &StructuringSchema, q: &Query, c: &Cond, src: &str, out: &mut Vec<Diagnostic>) {
        match c {
            Cond::Eq(p, RightHand::Const(word)) => {
                let Some(TypeDef::Int) = terminal_type(schema, q, p) else { return };
                let numeric = {
                    let w = word.strip_suffix('*').unwrap_or(word);
                    !w.is_empty() && w.bytes().all(|b| b.is_ascii_digit())
                };
                if !numeric {
                    let mut d = Diagnostic::new(
                        Code::Qof023,
                        Severity::Warning,
                        format!(
                            "comparing integer attribute `{p}` with non-numeric string \"{word}\""
                        ),
                    )
                    .with_note("the comparison is textual and can never match an integer token");
                    if let Some(span) = locate(src, word) {
                        d = d.with_span(span);
                    }
                    out.push(d);
                }
            }
            Cond::Eq(p, RightHand::Path(qp)) => {
                let (lt, rt) = (terminal_type(schema, q, p), terminal_type(schema, q, qp));
                if let (Some(l), Some(r)) = (lt, rt) {
                    if l != r {
                        let mut d = Diagnostic::new(
                            Code::Qof023,
                            Severity::Warning,
                            format!(
                                "comparing `{p}` ({}) with `{qp}` ({}): the types differ",
                                type_name(&l),
                                type_name(&r)
                            ),
                        )
                        .with_note("content equality across types never holds");
                        if let Some(span) = locate(src, &p.var) {
                            d = d.with_span(span);
                        }
                        out.push(d);
                    }
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk(schema, q, a, src, out);
                walk(schema, q, b, src, out);
            }
            Cond::Not(a) => walk(schema, q, a, src, out),
        }
    }
    walk(schema, q, w, src, out);
}

fn type_name(t: &TypeDef) -> &'static str {
    match t {
        TypeDef::Str => "string",
        TypeDef::Int => "integer",
        TypeDef::Set(_) => "set",
        TypeDef::List(_) => "list",
        TypeDef::Tuple(_) => "tuple",
        TypeDef::Class(_) => "object",
        TypeDef::Union(_) => "union",
    }
}

/// The atomic type a path lands on, following the class annotations of the
/// database schema (§4.1). Variables (`*X`, `X1`) defeat static typing;
/// the walk gives up and the comparison goes unchecked.
fn terminal_type(schema: &StructuringSchema, q: &Query, p: &QPath) -> Option<TypeDef> {
    let view = q.view_of(&p.var)?;
    let symbol = schema.view_symbol_name(view)?;
    let class = schema.classes.iter().find(|c| c.name == symbol)?;
    let mut ty = class.ty.clone();
    for step in &p.steps {
        let QStep::Attr(name) = step else { return None };
        ty = strip_containers(schema, ty)?;
        let TypeDef::Tuple(fields) = ty else { return None };
        ty = fields.get(name)?.clone();
    }
    match strip_containers(schema, ty)? {
        t @ (TypeDef::Str | TypeDef::Int) => Some(t),
        _ => None,
    }
}

/// Dereferences sets, lists and class references down to the element type.
fn strip_containers(schema: &StructuringSchema, mut ty: TypeDef) -> Option<TypeDef> {
    loop {
        ty = match ty {
            TypeDef::Set(t) | TypeDef::List(t) => *t,
            TypeDef::Class(c) => schema.classes.iter().find(|k| k.name == c)?.ty.clone(),
            other => return Some(other),
        };
    }
}

/// The planner-dependent checks: `QOF026` (view not indexed), `QOF011`
/// (§6.3 inexact hops, with the ambiguous edge named), the abstract
/// interpreter's `QOF100`–`QOF103` lints over the planned region
/// expressions, and `QOF110` for rewrites the certifier refused.
fn check_with_planner(
    planner: &Planner<'_>,
    q: &Query,
    symbols: &[(String, String)],
    empty_paths: &[String],
    src: &str,
    out: &mut Vec<Diagnostic>,
) {
    match planner.plan(q) {
        Err(PlanError::ViewNotIndexed(sym)) => {
            out.push(
                Diagnostic::new(
                    Code::Qof026,
                    Severity::Error,
                    format!("view symbol `{sym}` is not indexed"),
                )
                .with_note(
                    "§6 requires at least the view's regions in the index to locate candidates",
                ),
            );
            return;
        }
        Err(_) => {} // reported through the path/type lints above
        Ok(plan) => check_plan_absint(planner, &plan, empty_paths, out),
    }
    let mut seen: Vec<crate::plan::InexactHop> = Vec::new();
    for path in paths_of(q) {
        let Some((_, symbol)) = symbols.iter().find(|(v, _)| *v == path.var) else { continue };
        if empty_paths.contains(&path.to_string()) {
            continue; // already QOF024: exactness of an empty result is moot
        }
        let Ok(hops) = planner.path_inexact_hops(symbol, &path.steps) else { continue };
        for hop in hops {
            if seen.contains(&hop) {
                continue;
            }
            let why = match hop.reason {
                InexactReason::AmbiguousRoute => format!(
                    "more than one viable walk realizes `{} ⊃d {}` in the partial universe, \
                     so the direct-inclusion test admits false positives",
                    hop.from, hop.to
                ),
                InexactReason::CollapsibleDepth => format!(
                    "a collapsible region between `{}` and `{}` can share extents with its \
                     parent, so forest levels do not count grammar hops",
                    hop.from, hop.to
                ),
                InexactReason::PartialIndexGap => format!(
                    "intermediates between `{}` and `{}` are not indexed, so the nesting \
                     count cannot be taken on the partial forest",
                    hop.from, hop.to
                ),
                InexactReason::TargetNotIndexed => format!(
                    "`{}` itself is not indexed; its nearest indexed ancestor `{}` only \
                     approximates it",
                    hop.to, hop.from
                ),
            };
            let mut d = Diagnostic::new(
                Code::Qof011,
                Severity::Warning,
                format!("the index cannot answer hop `{} → {}` exactly (§6.3)", hop.from, hop.to),
            )
            .with_note(why)
            .with_note("candidate regions will be parsed to filter false positives (§6.2)");
            if let Some(span) = locate(src, &hop.to).or_else(|| locate(src, &hop.from)) {
                d = d.with_span(span);
            }
            out.push(d);
            seen.push(hop);
        }
    }
}

/// The abstract-interpretation leg of the planner checks: `QOF110` for
/// every rewrite the certifier refused, then the `QOF100`–`QOF103` lints
/// over each region expression the plan evaluates. The interpreter runs
/// RIG-only here — `qof check` plans against a synthetic sample corpus
/// whose index statistics would be misleading as evidence.
fn check_plan_absint(
    planner: &Planner<'_>,
    plan: &Plan,
    empty_paths: &[String],
    out: &mut Vec<Diagnostic>,
) {
    for rw in &plan.rewrites {
        if !rw.certified {
            out.push(super::absint::uncertified_diagnostic(&rw.proposition, &rw.description, None));
        }
    }
    // A path already reported as trivially empty (QOF024) plans to the ∅
    // encoding; its subtree needs no second emptiness report.
    if !empty_paths.is_empty() {
        return;
    }
    let interp = AbsInterp::new(planner.partial_rig);
    fn walk(c: &CondNode, interp: &AbsInterp<'_>, out: &mut Vec<Diagnostic>) {
        match c {
            CondNode::IndexOnly { expr, .. } => interp.lint_expr(expr, out),
            CondNode::ContentCompare { left, right, .. } => {
                interp.lint_expr(left, out);
                interp.lint_expr(right, out);
            }
            CondNode::And(a, b) | CondNode::Or(a, b) => {
                walk(a, interp, out);
                walk(b, interp, out);
            }
            CondNode::Not(a) => walk(a, interp, out),
        }
    }
    for vp in &plan.vars {
        if let Some(c) = &vp.cond {
            walk(c, &interp, out);
        }
    }
    if let Some(j) = &plan.join {
        interp.lint_expr(&j.left, out);
        interp.lint_expr(&j.right, out);
    }
    if let ProjPlan::Values { chain: Some((expr, _, _)), .. } = &plan.projection {
        interp.lint_expr(expr, out);
    }
}
