//! Chrome `trace_event` export: turns a [`QueryTrace`] span tree into JSON
//! that opens directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing` — no dependencies, no SDK, just the documented JSON
//! format.
//!
//! Mapping:
//!
//! * each query is a *process* (`pid` = query id) named after its query
//!   text via `process_name` metadata events;
//! * executor phases render on thread 1 ("phases"), the main engine's
//!   operator spans on thread 2 ("engine"), and each shard's spans on
//!   thread 3+ — every source is a single-threaded span stack, so the
//!   begin/end events of one thread always nest properly;
//! * every span is a matched `B`/`E` duration-event pair (what the CI
//!   validator checks), with operator attributes (span id, cardinalities,
//!   bytes scanned, probes, cache source) in `args`;
//! * timestamps are microseconds (the format's unit) on the query's own
//!   timeline: schema v5 stamps every op, phase and shard with an offset
//!   from one shared origin, so no clock reconstruction happens here.
//!
//! [`traces_to_perfetto`] exports a whole serve window (the flight
//! recorder's rings): one process per query, each on its own timeline.

use std::fmt::Write as _;

use qof_pat::OpTrace;

use crate::trace::{esc, QueryTrace};

/// Thread id carrying the executor phases.
const TID_PHASES: u64 = 1;
/// Thread id carrying the main (unscoped) engine's operator spans.
const TID_ENGINE: u64 = 2;
/// First thread id for shard workers (shard `i` gets `TID_SHARD0 + i`).
const TID_SHARD0: u64 = 3;

/// Nanosecond offset → the format's microsecond timestamp, exactly
/// (`1234` ns → `"1.234"`), without routing through `f64`.
fn ts_micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Emits one `{"ph":"M", …}` metadata event.
fn metadata_event(out: &mut String, pid: u64, tid: u64, what: &str, name: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    );
}

/// Emits the matched `B`/`E` pair for one span interval.
#[allow(clippy::too_many_arguments)] // every field of a trace_event line, flat like the format
fn begin_end(
    out: &mut String,
    pid: u64,
    tid: u64,
    cat: &str,
    name: &str,
    start_nanos: u64,
    nanos: u64,
    args: &str,
    body: impl FnOnce(&mut String),
) {
    let _ = write!(
        out,
        ",{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\
         \"tid\":{tid},\"args\":{{{args}}}}}",
        esc(name),
        ts_micros(start_nanos)
    );
    body(out);
    let _ = write!(
        out,
        ",{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\
         \"tid\":{tid}}}",
        esc(name),
        ts_micros(start_nanos.saturating_add(nanos))
    );
}

/// Emits one operator span and, nested between its `B` and `E`, its
/// children — the span tree becomes a properly nested event stack.
fn op_events(out: &mut String, pid: u64, tid: u64, node: &OpTrace) {
    let name = if node.detail.is_empty() {
        node.op.clone()
    } else {
        format!("{} {}", node.op, node.detail)
    };
    let args = format!(
        "\"span_id\":{},\"input\":{},\"output\":{},\"bytes\":{},\"probes\":{},\"source\":\"{}\"",
        node.span_id,
        node.input,
        node.output,
        node.bytes,
        node.probes,
        node.source.label()
    );
    begin_end(out, pid, tid, "op", &name, node.start_nanos, node.nanos, &args, |out| {
        for child in &node.children {
            op_events(out, pid, tid, child);
        }
    });
}

/// Writes one trace's events (metadata + spans) into `out`, assuming the
/// cursor sits right after a `[` or a previous event. The first event
/// written here is a metadata event with no leading comma iff `first`.
fn write_trace(out: &mut String, trace: &QueryTrace, first: bool) {
    let pid = if trace.id == 0 { 1 } else { trace.id };
    if !first {
        out.push(',');
    }
    let title = if trace.id == 0 {
        format!("query: {}", trace.query)
    } else {
        format!("query {}: {}", trace.id, trace.query)
    };
    metadata_event(out, pid, 0, "process_name", &title);
    out.push(',');
    metadata_event(out, pid, TID_PHASES, "thread_name", "phases");
    out.push(',');
    metadata_event(out, pid, TID_ENGINE, "thread_name", "engine");
    for (i, shard) in trace.shards.iter().enumerate() {
        out.push(',');
        let tid = TID_SHARD0 + i as u64;
        metadata_event(
            out,
            pid,
            tid,
            "thread_name",
            &format!("shard {i} [{}, {})", shard.start, shard.end),
        );
    }
    // The whole query as one enclosing span on the phase thread, then the
    // phases back-to-back inside it.
    begin_end(out, pid, TID_PHASES, "query", "query", 0, trace.total_nanos, "", |out| {
        for phase in &trace.phases {
            begin_end(
                out,
                pid,
                TID_PHASES,
                "phase",
                &phase.name,
                phase.start_nanos,
                phase.nanos,
                "",
                |_| {},
            );
        }
    });
    for op in &trace.ops {
        op_events(out, pid, TID_ENGINE, op);
    }
    for (i, shard) in trace.shards.iter().enumerate() {
        let tid = TID_SHARD0 + i as u64;
        for op in &shard.ops {
            op_events(out, pid, tid, op);
        }
    }
}

/// Exports one traced query as a Chrome `trace_event` JSON document.
pub fn trace_to_perfetto(trace: &QueryTrace) -> String {
    traces_to_perfetto(std::slice::from_ref(trace))
}

/// Exports several traced queries (a flight-recorder window) as one
/// document: one process per query, each on its own timeline starting at
/// t=0 — Perfetto's process tracks keep them apart.
pub fn traces_to_perfetto(traces: &[QueryTrace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, trace) in traces.iter().enumerate() {
        write_trace(&mut out, trace, i == 0);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use qof_pat::json::{get_arr, get_str, get_u64, Json};
    use qof_pat::{CacheSource, TraceSink};

    use super::*;
    use crate::trace::{PhaseTrace, ShardTrace};

    /// A trace whose spans were stamped by a real sink, so the intervals
    /// obey the nesting invariants the exporter relies on.
    fn stamped_trace() -> QueryTrace {
        let sink = TraceSink::new();
        sink.enter(); // ⊃
        sink.enter(); // name Reference
        sink.exit(OpTrace { op: "name".into(), detail: "Reference".into(), ..OpTrace::default() });
        sink.leaf(OpTrace {
            op: "σ".into(),
            detail: "\"1982\"".into(),
            source: CacheSource::SharedCache,
            ..OpTrace::default()
        });
        sink.exit(OpTrace { op: "⊃".into(), output: 1, ..OpTrace::default() });
        let ops = sink.take();
        let end = ops[0].end_nanos();
        QueryTrace {
            id: 7,
            query: "SELECT r FROM References r".into(),
            phases: vec![
                PhaseTrace { name: "index-candidates".into(), start_nanos: 0, nanos: end },
                PhaseTrace { name: "projection".into(), start_nanos: end, nanos: 10 },
            ],
            shards: vec![ShardTrace {
                start: 0,
                end: 512,
                start_nanos: 0,
                nanos: end,
                ops: ops.clone(),
            }],
            ops,
            total_nanos: end + 10,
            ..QueryTrace::default()
        }
    }

    /// Replays the event list through a per-(pid,tid) stack: every `E`
    /// must close the innermost open `B` of its thread, and within one
    /// thread timestamps never regress.
    fn check_matched_pairs(events: &[Json]) {
        use std::collections::HashMap;
        let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
        let mut clocks: HashMap<(u64, u64), f64> = HashMap::new();
        for ev in events {
            let obj = ev.as_obj().unwrap();
            let ph = get_str(obj, "ph").unwrap();
            if ph == "M" {
                continue;
            }
            let key = (get_u64(obj, "pid").unwrap(), get_u64(obj, "tid").unwrap());
            let ts = qof_pat::json::get_f64(obj, "ts").unwrap();
            let clock = clocks.entry(key).or_insert(0.0);
            assert!(ts >= *clock, "timestamp regressed on {key:?}: {ts} < {clock}");
            *clock = ts;
            let name = get_str(obj, "name").unwrap();
            match ph.as_str() {
                "B" => stacks.entry(key).or_default().push(name),
                "E" => {
                    let open = stacks.get_mut(&key).and_then(Vec::pop);
                    assert_eq!(open.as_deref(), Some(name.as_str()), "unmatched E on {key:?}");
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        for (key, stack) in stacks {
            assert!(stack.is_empty(), "unclosed spans on {key:?}: {stack:?}");
        }
    }

    #[test]
    fn export_is_wellformed_with_matched_pairs() {
        let json = trace_to_perfetto(&stamped_trace());
        let doc = Json::parse(&json).expect("export parses");
        let obj = doc.as_obj().unwrap();
        let events = get_arr(obj, "traceEvents").unwrap();
        // Metadata: process name + 3 thread names (phases, engine, shard).
        let metas: Vec<_> =
            events.iter().filter(|e| get_str(e.as_obj().unwrap(), "ph").unwrap() == "M").collect();
        assert_eq!(metas.len(), 4, "{json}");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("query 7: SELECT r"));
        assert!(json.contains("shard 0 [0, 512)"));
        // Span events: query + 2 phases + 3 ops on the engine thread + 3
        // on the shard thread, each a B/E pair.
        let begins =
            events.iter().filter(|e| get_str(e.as_obj().unwrap(), "ph").unwrap() == "B").count();
        let ends =
            events.iter().filter(|e| get_str(e.as_obj().unwrap(), "ph").unwrap() == "E").count();
        assert_eq!(begins, 9, "{json}");
        assert_eq!(begins, ends);
        check_matched_pairs(events);
        // Operator attributes ride along.
        assert!(json.contains("\"source\":\"shared\""), "{json}");
        assert!(json.contains("\"name\":\"σ \\\"1982\\\"\""), "{json}");
    }

    #[test]
    fn window_export_separates_queries_by_pid() {
        let mut a = stamped_trace();
        a.id = 1;
        let mut b = stamped_trace();
        b.id = 2;
        let json = traces_to_perfetto(&[a, b]);
        let doc = Json::parse(&json).expect("export parses");
        let events = get_arr(doc.as_obj().unwrap(), "traceEvents").unwrap();
        let pids: std::collections::BTreeSet<u64> =
            events.iter().map(|e| get_u64(e.as_obj().unwrap(), "pid").unwrap()).collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        check_matched_pairs(events);
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(ts_micros(0), "0.000");
        assert_eq!(ts_micros(1_234), "1.234");
        assert_eq!(ts_micros(1_000_007), "1000.007");
    }
}
