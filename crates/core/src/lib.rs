#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # qof-core
//!
//! The primary contribution of *Optimizing Queries on Files* (Consens &
//! Milo, SIGMOD 1994): querying semi-structured files through a text index,
//! with RIG-based optimization of region expressions.
//!
//! The pipeline, mirroring the paper:
//!
//! 1. A file format is described by a *structuring schema*
//!    ([`qof_grammar::StructuringSchema`]); [`FileDatabase::build`] parses
//!    the corpus once, extracts the configured region indices and the word
//!    index (the service the underlying text system provides).
//! 2. The *region inclusion graph* ([`Rig`]) is derived automatically from
//!    the grammar (§4.2), both for full indexing and for any partial index
//!    subset (§6.1).
//! 3. An XSQL-like query ([`Query`], parsed by [`parse_query`]) is
//!    *translated* into inclusion expressions ([`InclusionExpr`]) over the
//!    indexed region names (§5.1).
//! 4. The [`optimize`] algorithm (§3.2) rewrites each expression into its
//!    unique most efficient version: `⊃d` weakened to `⊃` and chains
//!    shortened, justified by Propositions 3.3 and 3.5 and Theorem 3.6.
//! 5. The [`planner`](plan) decides whether the index computes the query
//!    exactly (§6.3) or yields *candidate regions* that are then parsed with
//!    the query pushed into the parsing process (§6.2), and the executor
//!    runs the whole plan, joining region contents in the object database
//!    where the region algebra cannot (§5.2).
//!
//! [`baseline`] implements the comparison system: the standard-database
//! pipeline that parses and loads the whole file before querying. §7's
//! index-selection guidelines are implemented by [`advise`].

mod advisor;
pub mod analyze;
mod backend;
pub mod baseline;
mod cost;
mod exec;
mod incl;
mod optimizer;
pub mod perfetto;
mod plan;
pub mod qofx;
mod query;
mod residual;
mod rig;
mod trace;
mod translate;

pub use advisor::{advise, advise_costed, Advice};
pub use analyze::absint::{
    certify, uncertified_diagnostic, AbsInterp, AbsState, CardInterval, CertifyResult, StepCert,
};
pub use analyze::{
    check_index, check_query, check_schema, render_all, Code, Diagnostic, Severity, Span,
};
pub use cost::{
    CachedChain, CostEstimate, PlanCache, PlanCacheStats, StatsStore, DEFAULT_PLAN_CACHE_ENTRIES,
};
pub use exec::{
    BuildError, ExecOptions, FileDatabase, QueryError, QueryResult, RunStats, TraceHook,
};
pub use incl::{ChainOp, Direction, InclusionExpr, SelectKind};
pub use optimizer::{
    is_trivially_empty, normal_forms, optimize, optimize_costed, Optimized, Rewrite, RewriteKind,
};
pub use perfetto::{trace_to_perfetto, traces_to_perfetto};
pub use plan::{Exactness, InexactHop, InexactReason, Plan, PlanError, PlanRewrite, Planner};
pub use qofx::{inspect_qofx, QofxError, QofxSummary, QOFX_MAGIC, QOFX_VERSION};
pub use query::{parse_query, Cond, Projection, QPath, QStep, Query, QueryParseError, RightHand};
pub use residual::{
    compile_cond, compile_steps, db_steps_for, eval_pair, eval_single, path_values, CompiledCond,
    CompiledPath,
};
pub use rig::{Rig, RigViolation};
pub use trace::{CardEstimate, NodeFact, PhaseTrace, QueryTrace, ShardTrace, TRACE_SCHEMA_VERSION};
pub use translate::{PathSpec, TranslateError};
