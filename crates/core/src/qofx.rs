//! The `.qofx` persistent index container.
//!
//! A database built once with [`FileDatabase::build`](crate::FileDatabase::build)
//! can be written to a single `.qofx` file and reopened later without
//! re-parsing or re-tokenizing anything — the server's O(1)-start path.
//! The file carries everything the build phase produced *except* the
//! structuring schema (supplied by name at open, exactly as at build) and
//! the optional suffix array (cheap to rebuild relative to its size on
//! disk):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QOFX"
//! 4       4     format version (u32 LE, currently 1)
//! 8       4     flags (u32 LE; bit 0 = word index is case-folding)
//! 12      4     reserved (must be 0)
//! 16      8     FNV-1a 64 checksum of the whole file, this field zeroed
//! 24      16    CORP section offset + length (u64 LE each)
//! 40      16    WORD section offset + length
//! 56      16    REGN section offset + length
//! 72      16    SPEC section offset + length
//! 88      —     section payloads, contiguous, in the order above
//! ```
//!
//! * **CORP** — the file table (names + spans) and the global text,
//!   byte-exact, so reopened offsets mean what built offsets meant.
//! * **WORD** — the compressed word index: scope spans, the dictionary
//!   (word, count, payload length), then one blob of delta-coded varint
//!   posting blocks. On open the blob is *not* loaded: the reader keeps
//!   the file handle and pages posting bytes on demand
//!   ([`PostingsSource::Paged`](qof_text::PostingsSource)).
//! * **REGN** — every region name's set, delta-coded: per region a varint
//!   start gap (starts are non-decreasing in canonical order) and a
//!   varint length.
//! * **SPEC** — the [`IndexSpec`] the database was built with, so a
//!   reopened database plans against the same partial-index contract.
//!
//! Corruption anywhere — a flipped bit, a truncated tail — fails the
//! checksum before any section is parsed; the structural decoders behind
//! it are still fully defensive, so even a file that collides on the
//! checksum is rejected rather than trusted.

use qof_grammar::IndexSpec;
use qof_pat::{fnv1a64, Instance, Region, RegionSet};
use qof_text::varint::{decode_u32, decode_u64, encode_u32, encode_u64};
use qof_text::{CompressedWordIndex, Corpus, FileEntry, Pos};
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// The four magic bytes every `.qofx` file starts with.
pub const QOFX_MAGIC: [u8; 4] = *b"QOFX";

/// The current (and only) on-disk format version.
pub const QOFX_VERSION: u32 = 1;

const HEADER_LEN: usize = 88;
const FLAG_CASE_FOLD: u32 = 1;

/// Why a `.qofx` file could not be opened.
#[derive(Debug)]
pub enum QofxError {
    /// The file could not be read (or written) at all.
    Io(io::Error),
    /// The first four bytes are not `QOFX` — not an index file.
    BadMagic,
    /// The file is a `.qofx` of a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The stored checksum does not match the file's contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the file as read.
        actual: u64,
    },
    /// The file ends before its own header or sections do.
    Truncated,
    /// A section is structurally malformed (with a description of how).
    Corrupt(String),
}

impl fmt::Display for QofxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QofxError::Io(e) => write!(f, "index file I/O error: {e}"),
            QofxError::BadMagic => write!(f, "not a .qofx index file (bad magic)"),
            QofxError::UnsupportedVersion(v) => {
                write!(f, "unsupported .qofx format version {v} (this build reads {QOFX_VERSION})")
            }
            QofxError::ChecksumMismatch { stored, actual } => write!(
                f,
                "index file corrupt: checksum mismatch (header {stored:#018x}, file {actual:#018x})"
            ),
            QofxError::Truncated => write!(f, "index file corrupt: truncated"),
            QofxError::Corrupt(what) => write!(f, "index file corrupt: {what}"),
        }
    }
}

impl std::error::Error for QofxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QofxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for QofxError {
    fn from(e: io::Error) -> Self {
        QofxError::Io(e)
    }
}

// The checksum is [`fnv1a64`]: FNV-1a 64 widened to 8-byte lanes, so the
// open-path digest runs at memory speed instead of a byte per multiply.
// Each step is `h = (h ^ chunk) * prime` with an odd prime — a bijection
// in the chunk, so any single flipped bit anywhere in the file is
// guaranteed (not just likely) to change the digest, same as classic
// byte-wise FNV-1a. Not cryptographic: it guards against bit rot and
// truncation, not adversaries. The same helper fingerprints query shapes
// (workload analytics), so the spelling lives in `qof_pat` alone.

/// Everything a `.qofx` file reconstructs.
pub(crate) struct QofxContents {
    pub corpus: Corpus,
    pub words: CompressedWordIndex,
    pub instance: Instance,
    pub spec: IndexSpec,
}

// -- encoding ---------------------------------------------------------------

fn encode_corpus(corpus: &Corpus, out: &mut Vec<u8>) {
    encode_u64(corpus.files().len() as u64, out);
    for f in corpus.files() {
        encode_u64(f.name.len() as u64, out);
        out.extend_from_slice(f.name.as_bytes());
        encode_u32(f.span.start, out);
        encode_u32(f.span.end, out);
    }
    let text = corpus.text();
    encode_u64(text.len() as u64, out);
    out.extend_from_slice(text.as_bytes());
}

fn encode_regions(instance: &Instance, out: &mut Vec<u8>) {
    encode_u64(instance.name_count() as u64, out);
    for (name, set) in instance.iter() {
        encode_u64(name.len() as u64, out);
        out.extend_from_slice(name.as_bytes());
        encode_u64(set.len() as u64, out);
        let mut prev_start: Pos = 0;
        for r in set {
            // Canonical region order is ascending start (descending end at
            // ties), so start gaps are non-negative and small.
            encode_u32(r.start - prev_start, out);
            encode_u32(r.end - r.start, out);
            prev_start = r.start;
        }
    }
}

fn encode_spec(spec: &IndexSpec, out: &mut Vec<u8>) {
    out.push(u8::from(spec.is_full()));
    let plain: Vec<&str> = spec.plain_names().collect();
    encode_u64(plain.len() as u64, out);
    for name in plain {
        encode_u64(name.len() as u64, out);
        out.extend_from_slice(name.as_bytes());
    }
    let scoped: Vec<(&str, &str)> = spec.scoped_names().collect();
    encode_u64(scoped.len() as u64, out);
    for (scope, name) in scoped {
        encode_u64(scope.len() as u64, out);
        out.extend_from_slice(scope.as_bytes());
        encode_u64(name.len() as u64, out);
        out.extend_from_slice(name.as_bytes());
    }
    match spec.word_scope() {
        None => out.push(0),
        Some(name) => {
            out.push(1);
            encode_u64(name.len() as u64, out);
            out.extend_from_slice(name.as_bytes());
        }
    }
}

/// Serializes the database parts into `.qofx` wire form and writes them to
/// `path` atomically enough for our purposes (single `write_all` of a
/// fully assembled buffer). Returns the file's size in bytes.
pub(crate) fn write_qofx(
    path: &Path,
    corpus: &Corpus,
    words: &CompressedWordIndex,
    instance: &Instance,
    spec: &IndexSpec,
) -> io::Result<u64> {
    let mut corp = Vec::new();
    encode_corpus(corpus, &mut corp);
    let mut word = Vec::new();
    words.serialize(&mut word)?;
    let mut regn = Vec::new();
    encode_regions(instance, &mut regn);
    let mut spec_bytes = Vec::new();
    encode_spec(spec, &mut spec_bytes);

    let mut file_bytes =
        Vec::with_capacity(HEADER_LEN + corp.len() + word.len() + regn.len() + spec_bytes.len());
    file_bytes.extend_from_slice(&QOFX_MAGIC);
    file_bytes.extend_from_slice(&QOFX_VERSION.to_le_bytes());
    let mut flags = 0u32;
    if words.case_fold() {
        flags |= FLAG_CASE_FOLD;
    }
    file_bytes.extend_from_slice(&flags.to_le_bytes());
    file_bytes.extend_from_slice(&0u32.to_le_bytes()); // reserved
    file_bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
    let mut offset = HEADER_LEN as u64;
    for section in [&corp, &word, &regn, &spec_bytes] {
        file_bytes.extend_from_slice(&offset.to_le_bytes());
        file_bytes.extend_from_slice(&(section.len() as u64).to_le_bytes());
        offset += section.len() as u64;
    }
    debug_assert_eq!(file_bytes.len(), HEADER_LEN);
    for section in [corp, word, regn, spec_bytes] {
        file_bytes.extend_from_slice(&section);
    }
    let checksum = fnv1a64(&file_bytes);
    file_bytes[16..24].copy_from_slice(&checksum.to_le_bytes());

    let mut f = File::create(path)?;
    f.write_all(&file_bytes)?;
    f.sync_all()?;
    Ok(file_bytes.len() as u64)
}

// -- decoding ---------------------------------------------------------------

fn read_u32_le(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64_le(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

fn decode_str(buf: &[u8], at: &mut usize, what: &str) -> Result<String, QofxError> {
    let len = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
    let len = usize::try_from(len).map_err(|_| QofxError::Truncated)?;
    let end = at.checked_add(len).ok_or(QofxError::Truncated)?;
    let bytes = buf.get(*at..end).ok_or(QofxError::Truncated)?;
    let s = std::str::from_utf8(bytes)
        .map_err(|_| QofxError::Corrupt(format!("{what} is not UTF-8")))?;
    *at = end;
    Ok(s.to_owned())
}

fn decode_corpus(buf: &[u8]) -> Result<Corpus, QofxError> {
    let at = &mut 0usize;
    let n_files = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
    let n_files = usize::try_from(n_files).map_err(|_| QofxError::Truncated)?;
    let mut files = Vec::with_capacity(n_files.min(1 << 20));
    for _ in 0..n_files {
        let name = decode_str(buf, at, "file name")?;
        let start = decode_u32(buf, at).ok_or(QofxError::Truncated)?;
        let end = decode_u32(buf, at).ok_or(QofxError::Truncated)?;
        files.push(FileEntry { name, span: start..end });
    }
    let text = decode_str(buf, at, "corpus text")?;
    if *at != buf.len() {
        return Err(QofxError::Corrupt("trailing bytes after corpus text".to_owned()));
    }
    Corpus::from_parts(text, files).map_err(QofxError::Corrupt)
}

fn decode_regions(buf: &[u8]) -> Result<Instance, QofxError> {
    let at = &mut 0usize;
    let n_names = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
    let n_names = usize::try_from(n_names).map_err(|_| QofxError::Truncated)?;
    let mut instance = Instance::new();
    let mut prev_name: Option<String> = None;
    for _ in 0..n_names {
        let name = decode_str(buf, at, "region name")?;
        if prev_name.as_deref().is_some_and(|p| p >= name.as_str()) {
            return Err(QofxError::Corrupt("region names out of order".to_owned()));
        }
        let n_regions = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
        let n_regions = usize::try_from(n_regions).map_err(|_| QofxError::Truncated)?;
        let mut regions = Vec::with_capacity(n_regions.min(1 << 20));
        let mut prev_start: Pos = 0;
        let mut prev: Option<Region> = None;
        for _ in 0..n_regions {
            let gap = decode_u32(buf, at).ok_or(QofxError::Truncated)?;
            let len = decode_u32(buf, at).ok_or(QofxError::Truncated)?;
            let start = prev_start.checked_add(gap).ok_or(QofxError::Truncated)?;
            let end = start.checked_add(len).ok_or(QofxError::Truncated)?;
            let r = Region::new(start, end);
            // `from_sorted` trusts canonical order; verify it here so a
            // checksum-colliding file can't smuggle in an unsorted set.
            if prev.as_ref().is_some_and(|p| *p >= r) {
                return Err(QofxError::Corrupt(format!(
                    "regions of {name} out of canonical order"
                )));
            }
            prev_start = start;
            prev = Some(r);
            regions.push(r);
        }
        prev_name = Some(name.clone());
        instance.insert(name, RegionSet::from_sorted(regions));
    }
    if *at != buf.len() {
        return Err(QofxError::Corrupt("trailing bytes after region sets".to_owned()));
    }
    Ok(instance)
}

fn decode_spec(buf: &[u8]) -> Result<IndexSpec, QofxError> {
    let at = &mut 0usize;
    let full = match buf.first().copied() {
        Some(0) => false,
        Some(1) => true,
        _ => return Err(QofxError::Corrupt("bad full-index tag in spec".to_owned())),
    };
    *at += 1;
    let n_plain = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
    let mut plain = Vec::new();
    for _ in 0..n_plain {
        plain.push(decode_str(buf, at, "spec name")?);
    }
    let n_scoped = decode_u64(buf, at).ok_or(QofxError::Truncated)?;
    let mut scoped = Vec::new();
    for _ in 0..n_scoped {
        let scope = decode_str(buf, at, "spec scope")?;
        let name = decode_str(buf, at, "spec name")?;
        scoped.push((scope, name));
    }
    let word_scope = match buf.get(*at).copied() {
        Some(0) => {
            *at += 1;
            None
        }
        Some(1) => {
            *at += 1;
            Some(decode_str(buf, at, "word scope")?)
        }
        _ => return Err(QofxError::Corrupt("bad word-scope tag in spec".to_owned())),
    };
    if *at != buf.len() {
        return Err(QofxError::Corrupt("trailing bytes after spec".to_owned()));
    }
    let mut spec = if full { IndexSpec::full() } else { IndexSpec::names(plain) };
    for (scope, name) in &scoped {
        spec = spec.with_scoped(scope, name);
    }
    if let Some(name) = &word_scope {
        spec = spec.with_word_scope(name);
    }
    Ok(spec)
}

struct Section {
    offset: u64,
    len: u64,
}

fn section_slice<'a>(data: &'a [u8], s: &Section) -> Result<&'a [u8], QofxError> {
    let offset = usize::try_from(s.offset).map_err(|_| QofxError::Truncated)?;
    let len = usize::try_from(s.len).map_err(|_| QofxError::Truncated)?;
    let end = offset.checked_add(len).ok_or(QofxError::Truncated)?;
    data.get(offset..end).ok_or(QofxError::Truncated)
}

/// Reads, checksums and decodes a `.qofx` file. The returned word index
/// pages its posting blob from `path` on demand — the blob bytes read
/// here for the checksum are dropped with the rest of the file buffer.
pub(crate) fn read_qofx(path: &Path) -> Result<QofxContents, QofxError> {
    let mut data = std::fs::read(path)?;
    if data.len() < HEADER_LEN {
        if data.get(..4) != Some(&QOFX_MAGIC[..]) && data.len() >= 4 {
            return Err(QofxError::BadMagic);
        }
        return Err(QofxError::Truncated);
    }
    if data[..4] != QOFX_MAGIC {
        return Err(QofxError::BadMagic);
    }
    let version = read_u32_le(&data, 4).ok_or(QofxError::Truncated)?;
    if version != QOFX_VERSION {
        return Err(QofxError::UnsupportedVersion(version));
    }
    let flags = read_u32_le(&data, 8).ok_or(QofxError::Truncated)?;
    let stored = read_u64_le(&data, 16).ok_or(QofxError::Truncated)?;
    // Hash with the checksum field zeroed, as the writer did. Zeroing in
    // place is fine: `stored` is already extracted and nothing else reads
    // those eight bytes.
    data[16..24].fill(0);
    let actual = fnv1a64(&data);
    if stored != actual {
        return Err(QofxError::ChecksumMismatch { stored, actual });
    }
    let mut sections = Vec::with_capacity(4);
    for i in 0..4 {
        let base = 24 + i * 16;
        sections.push(Section {
            offset: read_u64_le(&data, base).ok_or(QofxError::Truncated)?,
            len: read_u64_le(&data, base + 8).ok_or(QofxError::Truncated)?,
        });
    }
    let corpus = decode_corpus(section_slice(&data, &sections[0])?)?;
    let word_buf = section_slice(&data, &sections[1])?;
    let case_fold = flags & FLAG_CASE_FOLD != 0;
    let at = &mut 0usize;
    let words =
        CompressedWordIndex::deserialize(word_buf, at, case_fold, Some((path, sections[1].offset)))
            .map_err(QofxError::Corrupt)?;
    if *at != word_buf.len() {
        return Err(QofxError::Corrupt("trailing bytes after word section".to_owned()));
    }
    let instance = decode_regions(section_slice(&data, &sections[2])?)?;
    let spec = decode_spec(section_slice(&data, &sections[3])?)?;
    Ok(QofxContents { corpus, words, instance, spec })
}

/// What `qof index inspect` prints: the container's vital signs, gathered
/// by fully opening (and therefore fully validating) the file.
#[derive(Debug, Clone)]
pub struct QofxSummary {
    /// Format version from the header.
    pub version: u32,
    /// Whether the word index folds case.
    pub case_fold: bool,
    /// Whether the word index is scoped (§7 selective indexing).
    pub scoped: bool,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Number of corpus files.
    pub files: usize,
    /// Global corpus text size in bytes.
    pub corpus_bytes: u64,
    /// Distinct indexed words.
    pub distinct_words: usize,
    /// Total postings across all words.
    pub postings: usize,
    /// Region names carried in the REGN section.
    pub region_names: usize,
    /// Total regions across all names.
    pub regions: usize,
    /// Whether the stored spec is a full index.
    pub full_index: bool,
    /// Header checksum (validated).
    pub checksum: u64,
}

/// Opens and fully validates `path`, returning its [`QofxSummary`].
pub fn inspect_qofx(path: &Path) -> Result<QofxSummary, QofxError> {
    let file_bytes = std::fs::metadata(path)?.len();
    let contents = read_qofx(path)?;
    let mut data = [0u8; HEADER_LEN];
    File::open(path)?.read_exact(&mut data)?;
    let version = read_u32_le(&data, 4).ok_or(QofxError::Truncated)?;
    let flags = read_u32_le(&data, 8).ok_or(QofxError::Truncated)?;
    let checksum = read_u64_le(&data, 16).ok_or(QofxError::Truncated)?;
    Ok(QofxSummary {
        version,
        case_fold: flags & FLAG_CASE_FOLD != 0,
        scoped: contents.words.is_scoped(),
        file_bytes,
        files: contents.corpus.files().len(),
        corpus_bytes: u64::from(contents.corpus.len()),
        distinct_words: contents.words.distinct_words(),
        postings: contents.words.postings(),
        region_names: contents.instance.name_count(),
        regions: contents.instance.region_count(),
        full_index: contents.spec.is_full(),
        checksum,
    })
}
