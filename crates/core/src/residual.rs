//! Residual predicates: conditions compiled to database path steps, used to
//! filter parsed candidate objects (§6.2's second phase) and by the
//! standard-database baseline.
//!
//! Compilation is grammar-aware: a query step into a `Repeat` item becomes
//! an element traversal, a transparent choice branch contributes no step,
//! and everything else is a tuple-field access. Because a query path may
//! resolve to several derivation alternatives, a compiled path is a *set*
//! of step lists; a value matches when any alternative does.

use qof_db::{eval_path_counted, Database, DbStep, PathCost, Value};
use qof_grammar::{Grammar, RuleBody};

use crate::translate::{resolve_path, SkOp, Skeleton, TranslateError};
use crate::{Cond, QStep, RightHand};

/// A compiled path: one step list per derivation alternative.
pub type CompiledPath = Vec<Vec<DbStep>>;

/// A condition with all paths compiled to database steps.
#[derive(Debug, Clone)]
pub enum CompiledCond {
    /// `var.path = "const"`.
    EqConst {
        /// The range variable the path roots at.
        var: String,
        /// The compiled path alternatives.
        paths: CompiledPath,
        /// The constant.
        value: String,
    },
    /// `lvar.path = rvar.path` (same or different variables).
    EqPath {
        /// Left variable.
        lvar: String,
        /// Left path alternatives.
        lpaths: CompiledPath,
        /// Right variable.
        rvar: String,
        /// Right path alternatives.
        rpaths: CompiledPath,
    },
    /// Conjunction.
    And(Box<CompiledCond>, Box<CompiledCond>),
    /// Disjunction.
    Or(Box<CompiledCond>, Box<CompiledCond>),
    /// Negation.
    Not(Box<CompiledCond>),
}

/// Compiles one skeleton to database steps.
pub fn db_steps_for(grammar: &Grammar, alt: &Skeleton) -> Vec<DbStep> {
    let mut out = Vec::new();
    for (i, op) in alt.ops.iter().enumerate() {
        let parent = &alt.names[i];
        let name = &alt.names[i + 1];
        match op {
            SkOp::Adjacent => {
                let Some(psym) = grammar.symbol(parent) else { continue };
                match &grammar.rule(psym).body {
                    RuleBody::Repeat { .. } => out.push(DbStep::Elements),
                    // A choice node's value IS its branch's value: stepping
                    // into the branch is the identity in value space.
                    RuleBody::Choice(_) => {}
                    _ => out.push(DbStep::Field(name.clone())),
                }
            }
            SkOp::Star => {
                out.push(DbStep::AnyPath);
                out.push(DbStep::Field(name.clone()));
            }
            SkOp::Closure => {
                // The closure target is not a value field; the next step's
                // field access discriminates within the AnyPath frontier.
                out.push(DbStep::AnyPath);
            }
            SkOp::Exact(n) => {
                out.push(DbStep::Exactly(*n));
                out.push(DbStep::Field(name.clone()));
            }
        }
    }
    out
}

/// Compiles a query path rooted at `view_symbol` into step-list
/// alternatives.
pub fn compile_steps(
    grammar: &Grammar,
    view_symbol: &str,
    steps: &[QStep],
) -> Result<CompiledPath, TranslateError> {
    let spec = resolve_path(grammar, view_symbol, steps)?;
    let mut out: CompiledPath =
        spec.alternatives.iter().map(|alt| db_steps_for(grammar, alt)).collect();
    out.dedup();
    Ok(out)
}

/// Compiles a condition; `view_symbol_of` maps a range variable to the
/// non-terminal its view ranges over.
pub fn compile_cond(
    grammar: &Grammar,
    view_symbol_of: &dyn Fn(&str) -> Option<String>,
    cond: &Cond,
) -> Result<CompiledCond, TranslateError> {
    let sym = |var: &str| {
        view_symbol_of(var).ok_or_else(|| TranslateError::UnknownSymbol(var.to_owned()))
    };
    Ok(match cond {
        Cond::Eq(p, RightHand::Const(w)) => CompiledCond::EqConst {
            var: p.var.clone(),
            paths: compile_steps(grammar, &sym(&p.var)?, &p.steps)?,
            value: w.clone(),
        },
        Cond::Eq(p, RightHand::Path(q)) => CompiledCond::EqPath {
            lvar: p.var.clone(),
            lpaths: compile_steps(grammar, &sym(&p.var)?, &p.steps)?,
            rvar: q.var.clone(),
            rpaths: compile_steps(grammar, &sym(&q.var)?, &q.steps)?,
        },
        Cond::And(a, b) => CompiledCond::And(
            Box::new(compile_cond(grammar, view_symbol_of, a)?),
            Box::new(compile_cond(grammar, view_symbol_of, b)?),
        ),
        Cond::Or(a, b) => CompiledCond::Or(
            Box::new(compile_cond(grammar, view_symbol_of, a)?),
            Box::new(compile_cond(grammar, view_symbol_of, b)?),
        ),
        Cond::Not(a) => CompiledCond::Not(Box::new(compile_cond(grammar, view_symbol_of, a)?)),
    })
}

/// The union of a compiled path's results over its alternatives.
pub fn path_values<'a>(
    db: &'a Database,
    value: &'a Value,
    paths: &CompiledPath,
    cost: &mut PathCost,
) -> Vec<&'a Value> {
    let mut out: Vec<&Value> = Vec::new();
    for steps in paths {
        out.extend(eval_path_counted(db, value, steps, cost));
    }
    out.sort_unstable();
    out.dedup_by(|a, b| a == b);
    out
}

/// Evaluates a compiled condition against a single binding `var = value`.
/// Paths rooted at other variables evaluate to no values.
pub fn eval_single(
    db: &Database,
    var: &str,
    value: &Value,
    cond: &CompiledCond,
    cost: &mut PathCost,
) -> bool {
    eval_pair(db, var, value, "\u{0}", value, cond, cost)
}

/// Evaluates a compiled condition against a pair of bindings.
pub fn eval_pair(
    db: &Database,
    v1: &str,
    a: &Value,
    v2: &str,
    b: &Value,
    cond: &CompiledCond,
    cost: &mut PathCost,
) -> bool {
    let binding = |var: &str| -> Option<&Value> {
        if var == v1 {
            Some(a)
        } else if var == v2 {
            Some(b)
        } else {
            None
        }
    };
    match cond {
        CompiledCond::EqConst { var, paths, value } => binding(var).is_some_and(|v| {
            let prefix = value.strip_suffix('*').filter(|p| !p.is_empty());
            path_values(db, v, paths, cost).iter().any(|x| {
                x.as_str().is_some_and(|s| match prefix {
                    Some(p) => s.starts_with(p),
                    None => s == value.as_str(),
                })
            })
        }),
        CompiledCond::EqPath { lvar, lpaths, rvar, rpaths } => {
            let (Some(lv), Some(rv)) = (binding(lvar), binding(rvar)) else {
                return false;
            };
            let ls = path_values(db, lv, lpaths, cost);
            let rs = path_values(db, rv, rpaths, cost);
            ls.iter().any(|x| rs.iter().any(|y| x == y))
        }
        CompiledCond::And(x, y) => {
            eval_pair(db, v1, a, v2, b, x, cost) && eval_pair(db, v1, a, v2, b, y, cost)
        }
        CompiledCond::Or(x, y) => {
            eval_pair(db, v1, a, v2, b, x, cost) || eval_pair(db, v1, a, v2, b, y, cost)
        }
        CompiledCond::Not(x) => !eval_pair(db, v1, a, v2, b, x, cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use qof_grammar::{lit, nt, TokenPattern, ValueBuilder};

    fn grammar() -> Grammar {
        Grammar::builder("Set")
            .repeat("Set", "Entry", None, ValueBuilder::Set)
            .seq(
                "Entry",
                [lit("["), nt("Key"), lit(":"), nt("Authors"), lit("]")],
                ValueBuilder::ObjectAuto("Entry".into()),
            )
            .token("Key", TokenPattern::Word, ValueBuilder::Atom)
            .repeat("Authors", "Name", Some(","), ValueBuilder::Set)
            .seq("Name", [nt("Last_Name")], ValueBuilder::TupleAuto)
            .token("Last_Name", TokenPattern::Word, ValueBuilder::Atom)
            .build()
            .unwrap()
    }

    #[test]
    fn repeat_items_compile_to_elements() {
        let g = grammar();
        let steps: Vec<QStep> =
            ["Authors", "Name", "Last_Name"].iter().map(|s| QStep::Attr(s.to_string())).collect();
        let compiled = compile_steps(&g, "Entry", &steps).unwrap();
        assert_eq!(
            compiled,
            vec![vec![
                DbStep::Field("Authors".into()),
                DbStep::Elements,
                DbStep::Field("Last_Name".into()),
            ]]
        );
    }

    #[test]
    fn compiled_condition_evaluates() {
        let g = grammar();
        let q = parse_query("SELECT r FROM Entries r WHERE r.Authors.Name.Last_Name = \"Chang\"")
            .unwrap();
        let cc =
            compile_cond(&g, &|_| Some("Entry".to_owned()), q.where_.as_ref().unwrap()).unwrap();
        let db = Database::new();
        let hit = Value::tuple([
            ("Key", Value::str("k1")),
            ("Authors", Value::set([Value::tuple([("Last_Name", Value::str("Chang"))])])),
        ]);
        let miss = Value::tuple([
            ("Key", Value::str("k2")),
            ("Authors", Value::set([Value::tuple([("Last_Name", Value::str("Milo"))])])),
        ]);
        let mut cost = PathCost::default();
        assert!(eval_single(&db, "r", &hit, &cc, &mut cost));
        assert!(!eval_single(&db, "r", &miss, &cc, &mut cost));
    }

    #[test]
    fn star_and_vars_compile() {
        let g = grammar();
        let steps = vec![QStep::Star("X".into()), QStep::Attr("Last_Name".into())];
        let compiled = compile_steps(&g, "Entry", &steps).unwrap();
        assert_eq!(compiled[0], vec![DbStep::AnyPath, DbStep::Field("Last_Name".into())]);
        let steps2 = vec![QStep::Vars(2), QStep::Attr("Last_Name".into())];
        let compiled2 = compile_steps(&g, "Entry", &steps2).unwrap();
        assert_eq!(compiled2[0], vec![DbStep::Exactly(2), DbStep::Field("Last_Name".into())]);
    }
}
