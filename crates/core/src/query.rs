//! The query language: the XSQL-like subset of §2/§5 —
//!
//! ```text
//! SELECT r            FROM References r WHERE r.Authors.Name.Last_Name = "Chang"
//! SELECT r.Title      FROM References r WHERE r.Year = "1982" AND NOT r.Key = "Key000001"
//! SELECT r            FROM References r WHERE r.*X.Last_Name = "Chang"
//! SELECT r            FROM References r WHERE r.X1.X2.Last_Name = "Chang"
//! SELECT r            FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name
//! SELECT r            FROM References r, References s WHERE r.Referred.RefKey = s.Key
//! ```
//!
//! Path steps follow the paper's conventions: `*X` matches any attribute
//! path; a bare `X`, `X1`, `X2`, … step is a single-attribute variable, and
//! a run of `n` of them matches paths of exactly length `n` (§5.3).

use std::fmt;

/// One step of a query path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QStep {
    /// A named attribute.
    Attr(String),
    /// `*X`: any attribute path (including the empty one).
    Star(String),
    /// A run of `n` single-attribute variables (`X1.…​.Xn`).
    Vars(u32),
    /// `A+`: a transitive-closure step — the path passes through at least
    /// one `A`, at any depth (the §5.3 path *regular* expressions: "it is
    /// possible to evaluate paths with a regular expression involving a
    /// transitive closure, with just an inclusion expression").
    Plus(String),
}

/// A path rooted at a range variable: `r.Authors.Name.Last_Name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QPath {
    /// The range variable.
    pub var: String,
    /// The steps after the variable.
    pub steps: Vec<QStep>,
}

/// The right-hand side of an equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RightHand {
    /// A string constant.
    Const(String),
    /// Another path (same or different variable — a join).
    Path(QPath),
}

/// A selection condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `path = const` or `path = path`.
    Eq(QPath, RightHand),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

/// What the query returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT r` — whole objects.
    Var(String),
    /// `SELECT r.p` — the values at a path.
    Path(QPath),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The projection.
    pub select: Projection,
    /// `(view, variable)` pairs from the FROM clause.
    pub ranges: Vec<(String, String)>,
    /// The WHERE condition, if any.
    pub where_: Option<Cond>,
}

impl Query {
    /// The view a variable ranges over.
    pub fn view_of(&self, var: &str) -> Option<&str> {
        self.ranges.iter().find(|(_, v)| v == var).map(|(w, _)| w.as_str())
    }

    /// The variable the projection is rooted at.
    pub fn projected_var(&self) -> &str {
        match &self.select {
            Projection::Var(v) => v,
            Projection::Path(p) => &p.var,
        }
    }
}

/// A parse failure with position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Character offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for QueryParseError {}

impl fmt::Display for QPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.var)?;
        for s in &self.steps {
            match s {
                QStep::Attr(a) => write!(f, ".{a}")?,
                QStep::Star(x) => write!(f, ".*{x}")?,
                QStep::Vars(n) => {
                    for i in 0..*n {
                        write!(f, ".X{}", i + 1)?;
                    }
                }
                QStep::Plus(a) => write!(f, ".{a}+")?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Eq(p, RightHand::Const(c)) => write!(f, "{p} = \"{c}\""),
            Cond::Eq(p, RightHand::Path(q)) => write!(f, "{p} = {q}"),
            Cond::And(a, b) => write!(f, "({a} AND {b})"),
            Cond::Or(a, b) => write!(f, "({a} OR {b})"),
            Cond::Not(a) => write!(f, "NOT {a}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.select {
            Projection::Var(v) => write!(f, "SELECT {v}")?,
            Projection::Path(p) => write!(f, "SELECT {p}")?,
        }
        write!(f, " FROM ")?;
        for (i, (view, var)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{view} {var}")?;
        }
        if let Some(w) = &self.where_ {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Lexer<'a> {
    src: &'a str,
    at: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    Dot,
    Comma,
    Star,
    Plus,
    Eq,
    LParen,
    RParen,
    End,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, at: 0 }
    }

    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError { at: self.at, message: message.into() }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.as_bytes().get(self.at).copied()
    }

    fn next_tok(&mut self) -> Result<Tok, QueryParseError> {
        while matches!(self.peek_byte(), Some(b) if (b as char).is_ascii_whitespace()) {
            self.at += 1;
        }
        let Some(b) = self.peek_byte() else { return Ok(Tok::End) };
        match b {
            b'.' => {
                self.at += 1;
                Ok(Tok::Dot)
            }
            b',' => {
                self.at += 1;
                Ok(Tok::Comma)
            }
            b'*' => {
                self.at += 1;
                Ok(Tok::Star)
            }
            b'+' => {
                self.at += 1;
                Ok(Tok::Plus)
            }
            b'=' => {
                self.at += 1;
                Ok(Tok::Eq)
            }
            b'(' => {
                self.at += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.at += 1;
                Ok(Tok::RParen)
            }
            b'"' => {
                self.at += 1;
                let start = self.at;
                while let Some(c) = self.peek_byte() {
                    if c == b'"' {
                        let s = self.src[start..self.at].to_owned();
                        self.at += 1;
                        return Ok(Tok::Str(s));
                    }
                    self.at += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            c if (c as char).is_ascii_alphanumeric() || c == b'_' => {
                let start = self.at;
                while matches!(self.peek_byte(), Some(c) if (c as char).is_ascii_alphanumeric() || c == b'_')
                {
                    self.at += 1;
                }
                Ok(Tok::Ident(self.src[start..self.at].to_owned()))
            }
            other => Err(self.err(format!("unexpected character {:?}", other as char))),
        }
    }
}

struct Parser<'a> {
    lx: Lexer<'a>,
    tok: Tok,
}

/// Whether an identifier is a single-step path variable (`X`, `X1`, `X2`, …).
fn is_path_var(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next() == Some('X') && chars.all(|c| c.is_ascii_digit())
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, QueryParseError> {
        let mut lx = Lexer::new(src);
        let tok = lx.next_tok()?;
        Ok(Self { lx, tok })
    }

    fn bump(&mut self) -> Result<Tok, QueryParseError> {
        let t = std::mem::replace(&mut self.tok, self.lx.next_tok()?);
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryParseError> {
        match self.bump()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.lx.err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.lx.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn path(&mut self) -> Result<QPath, QueryParseError> {
        let var = self.ident()?;
        let mut steps = Vec::new();
        while self.tok == Tok::Dot {
            self.bump()?;
            if self.tok == Tok::Star {
                self.bump()?;
                let name = self.ident()?;
                steps.push(QStep::Star(name));
            } else {
                let name = self.ident()?;
                if self.tok == Tok::Plus {
                    self.bump()?;
                    steps.push(QStep::Plus(name));
                } else if is_path_var(&name) {
                    // Collapse runs of single-step variables.
                    if let Some(QStep::Vars(n)) = steps.last_mut() {
                        *n += 1;
                    } else {
                        steps.push(QStep::Vars(1));
                    }
                } else {
                    steps.push(QStep::Attr(name));
                }
            }
        }
        Ok(QPath { var, steps })
    }

    fn cond_primary(&mut self) -> Result<Cond, QueryParseError> {
        if self.at_kw("NOT") {
            self.bump()?;
            let inner = self.cond_primary()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.tok == Tok::LParen {
            self.bump()?;
            let inner = self.cond_or()?;
            if self.bump()? != Tok::RParen {
                return Err(self.lx.err("expected )"));
            }
            return Ok(inner);
        }
        let left = self.path()?;
        if self.bump()? != Tok::Eq {
            return Err(self.lx.err("expected ="));
        }
        let right = match self.bump()? {
            Tok::Str(s) => RightHand::Const(s),
            Tok::Ident(v) => {
                // Re-parse as a path: var already consumed.
                let mut steps = Vec::new();
                while self.tok == Tok::Dot {
                    self.bump()?;
                    if self.tok == Tok::Star {
                        self.bump()?;
                        let name = self.ident()?;
                        steps.push(QStep::Star(name));
                    } else {
                        let name = self.ident()?;
                        if self.tok == Tok::Plus {
                            self.bump()?;
                            steps.push(QStep::Plus(name));
                        } else if is_path_var(&name) {
                            if let Some(QStep::Vars(n)) = steps.last_mut() {
                                *n += 1;
                            } else {
                                steps.push(QStep::Vars(1));
                            }
                        } else {
                            steps.push(QStep::Attr(name));
                        }
                    }
                }
                RightHand::Path(QPath { var: v, steps })
            }
            other => {
                return Err(self.lx.err(format!("expected constant or path, found {other:?}")))
            }
        };
        Ok(Cond::Eq(left, right))
    }

    fn cond_and(&mut self) -> Result<Cond, QueryParseError> {
        let mut left = self.cond_primary()?;
        while self.at_kw("AND") {
            self.bump()?;
            let right = self.cond_primary()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_or(&mut self) -> Result<Cond, QueryParseError> {
        let mut left = self.cond_and()?;
        while self.at_kw("OR") {
            self.bump()?;
            let right = self.cond_and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn query(&mut self) -> Result<Query, QueryParseError> {
        self.expect_kw("SELECT")?;
        let proj_path = self.path()?;
        let select = if proj_path.steps.is_empty() {
            Projection::Var(proj_path.var)
        } else {
            Projection::Path(proj_path)
        };
        self.expect_kw("FROM")?;
        let mut ranges = Vec::new();
        loop {
            let view = self.ident()?;
            let var = self.ident()?;
            ranges.push((view, var));
            if self.tok == Tok::Comma {
                self.bump()?;
            } else {
                break;
            }
        }
        let where_ = if self.at_kw("WHERE") {
            self.bump()?;
            Some(self.cond_or()?)
        } else {
            None
        };
        if self.tok != Tok::End {
            return Err(self.lx.err(format!("trailing input: {:?}", self.tok)));
        }
        Ok(Query { select, ranges, where_ })
    }
}

/// Parses a query string.
pub fn parse_query(src: &str) -> Result<Query, QueryParseError> {
    Parser::new(src)?.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q =
            parse_query("SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"")
                .unwrap();
        assert_eq!(q.select, Projection::Var("r".into()));
        assert_eq!(q.ranges, vec![("References".into(), "r".into())]);
        let Some(Cond::Eq(p, RightHand::Const(c))) = q.where_ else {
            panic!("expected equality");
        };
        assert_eq!(p.var, "r");
        assert_eq!(
            p.steps,
            vec![
                QStep::Attr("Authors".into()),
                QStep::Attr("Name".into()),
                QStep::Attr("Last_Name".into())
            ]
        );
        assert_eq!(c, "Chang");
    }

    #[test]
    fn star_variable() {
        let q = parse_query("SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"").unwrap();
        let Some(Cond::Eq(p, _)) = q.where_ else { panic!() };
        assert_eq!(p.steps[0], QStep::Star("X".into()));
        assert_eq!(p.steps[1], QStep::Attr("Last_Name".into()));
    }

    #[test]
    fn fixed_length_variables_collapse() {
        let q =
            parse_query("SELECT r FROM References r WHERE r.X1.X2.Last_Name = \"Chang\"").unwrap();
        let Some(Cond::Eq(p, _)) = q.where_ else { panic!() };
        assert_eq!(p.steps, vec![QStep::Vars(2), QStep::Attr("Last_Name".into())]);
    }

    #[test]
    fn boolean_structure_and_precedence() {
        let q = parse_query(
            "SELECT r FROM References r WHERE r.A = \"x\" AND r.B = \"y\" OR NOT r.C = \"z\"",
        )
        .unwrap();
        // AND binds tighter than OR.
        let Some(Cond::Or(l, r)) = q.where_ else { panic!("expected OR at top") };
        assert!(matches!(*l, Cond::And(..)));
        assert!(matches!(*r, Cond::Not(..)));
    }

    #[test]
    fn parens_override_precedence() {
        let q = parse_query(
            "SELECT r FROM References r WHERE r.A = \"x\" AND (r.B = \"y\" OR r.C = \"z\")",
        )
        .unwrap();
        let Some(Cond::And(_, r)) = q.where_ else { panic!("expected AND at top") };
        assert!(matches!(*r, Cond::Or(..)));
    }

    #[test]
    fn join_across_variables() {
        let q =
            parse_query("SELECT r FROM References r, References s WHERE r.Referred.RefKey = s.Key")
                .unwrap();
        assert_eq!(q.ranges.len(), 2);
        assert_eq!(q.view_of("s"), Some("References"));
        let Some(Cond::Eq(p, RightHand::Path(rhs))) = q.where_ else { panic!() };
        assert_eq!(p.var, "r");
        assert_eq!(rhs.var, "s");
    }

    #[test]
    fn projection_path() {
        let q = parse_query("SELECT r.Authors.Name.Last_Name FROM References r").unwrap();
        let Projection::Path(p) = q.select else { panic!() };
        assert_eq!(p.steps.len(), 3);
        assert!(q.where_.is_none());
    }

    #[test]
    fn display_round_trips() {
        let src = "SELECT r FROM References r WHERE (r.A = \"x\" AND r.*X.B = \"y\")";
        let q = parse_query(src).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_query("SELECT r FROM References r WHERE r.A = ").unwrap_err();
        assert!(e.to_string().contains("parse error"));
        let e2 = parse_query("SELECT FROM References r").unwrap_err();
        assert!(e2.message.contains("expected"));
        assert!(parse_query("SELECT r FROM References r JUNK trailing").is_err());
        assert!(parse_query("SELECT r FROM References r WHERE r.A = \"unterminated").is_err());
    }

    #[test]
    fn plus_closure_step() {
        let q = parse_query("SELECT s FROM Sections s WHERE s.Section+.Head = \"intro\"").unwrap();
        let Some(Cond::Eq(p, _)) = q.where_ else { panic!() };
        assert_eq!(p.steps[0], QStep::Plus("Section".into()));
        assert_eq!(p.steps[1], QStep::Attr("Head".into()));
        assert_eq!(p.to_string(), "s.Section+.Head");
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("select r from References r where r.A = \"x\"").is_ok());
    }
}
