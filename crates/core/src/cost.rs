//! Statistics-driven cost estimation and plan caching.
//!
//! The paper's optimizer (§3.2) is purely syntactic: it rewrites toward a
//! normal form licensed by the RIG alone. But the normal form is not always
//! unique (see [`crate::optimizer`]'s counterexample), and when several
//! certified-equivalent forms exist, they differ in *work*: each retained
//! middle name costs a merge pass over its region set. This module supplies
//! the missing half — index statistics gathered at build time
//! ([`StatsStore`]), a cost model over inclusion chains
//! ([`StatsStore::estimate_chain`]), and a [`PlanCache`] that memoizes the
//! optimize-and-certify work per lowered chain so a query server replaying
//! the same workload plans each shape once per statistics epoch.
//!
//! Cost unit: *regions consumed*, the same currency the engine's
//! [`EvalStats`](qof_pat::EvalStats) counters report, plus a discounted
//! bytes-scanned term for selector hops that force text reads downstream.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qof_pat::{CardObservations, Instance, OpTrace};
use qof_text::WordLookup;

use crate::plan::PlanRewrite;
use crate::trace::QueryTrace;
use crate::{ChainOp, InclusionExpr, Rig};

/// Default entry cap of a [`PlanCache`]. Distinct chain shapes per
/// workload are few (one per query path run), so a small cache holds the
/// entire working set of a server.
pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 1024;

/// Minimum observations of an operator before its observed mean output is
/// blended into the static estimate (guards against one unlucky query
/// skewing the model).
const MIN_CALIBRATION_OBS: u64 = 16;

/// Minimum observations of an operator *under one fingerprint* before the
/// per-fingerprint mean outranks the global blend. Lower than
/// [`MIN_CALIBRATION_OBS`]: within one query shape the samples are far
/// less noisy than across the whole workload.
const MIN_FP_CALIBRATION_OBS: u64 = 4;

/// Maximum fingerprints the per-fingerprint calibration map tracks —
/// matches the workload table's top-K, and bounds memory the same way.
const MAX_FP_CALIBRATION_ENTRIES: usize = 64;

/// Weight of one scanned text byte relative to one consumed region in the
/// scalar cost (scanning is streaming; region merging does comparisons).
const BYTE_WEIGHT: f64 = 0.01;

/// Extra per-region factor charged to a *direct* inclusion hop: `⊃d`
/// consults the nesting forest for parenthood instead of a plain ordered
/// merge.
const DIRECT_PENALTY: f64 = 2.0;

/// Comparison-cost factor of a galloping (exponential-search) probe
/// relative to one linear-sweep step — the constant behind the engine's
/// 16× skew crossover in `RegionSet::intersect`/`difference`.
const GALLOP_FACTOR: f64 = 4.0;

/// The cost of merging two sorted region sets of sizes `a` and `b`, as
/// the engine actually executes it: the linear sweep touches `a + b`
/// regions, but past a 16× size skew the engine gallops through the big
/// side, touching about `min · log₂ max` instead. The estimator takes
/// whichever is cheaper, so plan ranking rewards skewed
/// (gallop-friendly) operand pairs.
fn merge_cost(a: f64, b: f64) -> f64 {
    let (small, large) = if a <= b { (a, b) } else { (b, a) };
    let sweep = small + large;
    let gallop = GALLOP_FACTOR * small * large.max(2.0).log2();
    sweep.min(gallop)
}

/// A cost breakdown for one inclusion chain, in the engine's own counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    /// Estimated regions consumed as operator inputs across the chain.
    pub regions_consumed: f64,
    /// Estimated text bytes the candidates force downstream phases to
    /// read (candidate parsing is proportional to surviving bytes).
    pub bytes_scanned: f64,
    /// Estimated output cardinality of the whole chain.
    pub output_card: f64,
}

impl CostEstimate {
    /// Collapses the breakdown to one comparable scalar.
    pub fn scalar(&self) -> f64 {
        self.regions_consumed + BYTE_WEIGHT * self.bytes_scanned
    }
}

/// Per-name index statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct NameStats {
    regions: u64,
    /// Mean region length in bytes.
    mean_bytes: f64,
}

/// Index statistics gathered at build time and refreshed from query
/// traces: per-nonterminal region counts and mean extents, per-word
/// posting counts (selectivities), RIG fan-out, and a running record of
/// observed operator output cardinalities
/// ([`CardObservations`]) that calibrates the static model.
///
/// The `epoch` advances whenever the underlying index changes
/// (`add_file`); consumers that memoize per-epoch results (the
/// [`PlanCache`], the shared subexpression cache) must invalidate on a
/// bump.
#[derive(Debug, Default)]
pub struct StatsStore {
    epoch: u64,
    names: BTreeMap<String, NameStats>,
    total_regions: u64,
    word_freqs: BTreeMap<String, u64>,
    total_postings: u64,
    fan_out: BTreeMap<String, usize>,
    observations: Mutex<CardObservations>,
    /// Per-fingerprint operator observations (trace schema v6): hot query
    /// shapes calibrate independently of the global blend. Bounded at
    /// [`MAX_FP_CALIBRATION_ENTRIES`]; the least-observed fingerprint is
    /// evicted on overflow.
    per_fp: Mutex<BTreeMap<u64, CardObservations>>,
}

impl StatsStore {
    /// An empty store (epoch 0): every estimate degrades to a neutral
    /// constant, so cost ranking becomes a no-op tie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gathers statistics from a freshly built index.
    pub fn from_index(instance: &Instance, words: &dyn WordLookup, rig: &Rig) -> Self {
        let mut store = StatsStore::new();
        store.refresh_from_index(instance, words, rig);
        store
    }

    /// Re-gathers the index-derived statistics (after `add_file`) and
    /// advances the epoch. Observed operator cardinalities survive the
    /// refresh: they describe the workload, not the corpus.
    pub fn refresh_from_index(&mut self, instance: &Instance, words: &dyn WordLookup, rig: &Rig) {
        self.names.clear();
        self.total_regions = 0;
        for (name, set) in instance.iter() {
            let count = set.len() as u64;
            let bytes: u64 = set.iter().map(|r| u64::from(r.len())).sum();
            #[allow(clippy::cast_precision_loss)]
            let mean_bytes = if count == 0 { 0.0 } else { bytes as f64 / count as f64 };
            self.names.insert(name.to_owned(), NameStats { regions: count, mean_bytes });
            self.total_regions += count;
        }
        self.word_freqs.clear();
        self.total_postings = 0;
        // Counts come from the backend's dictionary alone: a compressed
        // backend refreshes statistics without decoding a single posting.
        words.for_each_word_count(&mut |word, f| {
            self.word_freqs.insert(word.to_owned(), f);
            self.total_postings += f;
        });
        self.fan_out.clear();
        for node in rig.nodes() {
            self.fan_out.insert(node.to_owned(), rig.successors(node).len());
        }
        self.epoch += 1;
    }

    /// The statistics epoch: 0 for an empty store, bumped by every
    /// [`StatsStore::refresh_from_index`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Indexed regions of `name` (0 when unknown).
    pub fn region_count(&self, name: &str) -> u64 {
        self.names.get(name).map_or(0, |s| s.regions)
    }

    /// Total regions across all indexed names.
    pub fn total_regions(&self) -> u64 {
        self.total_regions
    }

    /// Posting count of `word` (0 when absent from the corpus).
    pub fn word_frequency(&self, word: &str) -> u64 {
        self.word_freqs.get(word).copied().unwrap_or(0)
    }

    /// Fraction of all postings carrying `word` — the classic selectivity.
    #[allow(clippy::cast_precision_loss)]
    pub fn word_selectivity(&self, word: &str) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.word_frequency(word) as f64 / self.total_postings as f64
        }
    }

    /// RIG fan-out (successor count) of `name`.
    pub fn fan_out(&self, name: &str) -> usize {
        self.fan_out.get(name).copied().unwrap_or(0)
    }

    /// Feeds one completed query trace back into the model: every operator
    /// node's observed output cardinality (main engine and shards)
    /// accumulates into the per-operator running means.
    pub fn observe_trace(&self, trace: &QueryTrace) {
        fn walk(ops: &[OpTrace], obs: &mut CardObservations) {
            for op in ops {
                obs.observe(&op.op, op.output as u64);
                walk(&op.children, obs);
            }
        }
        {
            let mut obs = self.observations.lock().expect("stats observations poisoned");
            walk(&trace.ops, &mut obs);
            for shard in &trace.shards {
                walk(&shard.ops, &mut obs);
            }
        }
        // The same observations again, keyed by the trace's fingerprint
        // (v6): hot shapes build their own calibration independent of the
        // global blend. 0 means "not stamped" and is skipped.
        if trace.fingerprint != 0 {
            let mut map = self.per_fp.lock().expect("per-fp observations poisoned");
            if !map.contains_key(&trace.fingerprint) && map.len() >= MAX_FP_CALIBRATION_ENTRIES {
                // Evict the least-observed fingerprint (lowest key on
                // ties — deterministic).
                if let Some(victim) =
                    map.iter().min_by_key(|(fp, o)| (o.total(), **fp)).map(|(fp, _)| *fp)
                {
                    map.remove(&victim);
                }
            }
            let obs = map.entry(trace.fingerprint).or_default();
            walk(&trace.ops, obs);
            for shard in &trace.shards {
                walk(&shard.ops, obs);
            }
        }
    }

    /// A snapshot of the accumulated operator observations.
    pub fn observations(&self) -> CardObservations {
        self.observations.lock().expect("stats observations poisoned").clone()
    }

    /// A snapshot of the observations accumulated under `fingerprint`,
    /// `None` until a trace with that fingerprint has been observed (or
    /// after eviction by the bounded map).
    pub fn fp_observations(&self, fingerprint: u64) -> Option<CardObservations> {
        self.per_fp.lock().expect("per-fp observations poisoned").get(&fingerprint).cloned()
    }

    /// Blends a static per-hop output estimate with the observed mean for
    /// the operator once enough observations exist.
    fn calibrated(&self, op: &str, structural: f64) -> f64 {
        let obs = self.observations.lock().expect("stats observations poisoned");
        match obs.mean(op) {
            Some(mean) if obs.count(op) >= MIN_CALIBRATION_OBS => (structural + mean) / 2.0,
            _ => structural,
        }
    }

    /// [`StatsStore::calibrated`], preferring the per-fingerprint mean
    /// when the shape has enough of its own history (trace schema v6's
    /// feedback loop). `fingerprint` 0 always falls through to the global
    /// blend.
    fn calibrated_fp(&self, fingerprint: u64, op: &str, structural: f64) -> f64 {
        if fingerprint != 0 {
            let map = self.per_fp.lock().expect("per-fp observations poisoned");
            if let Some(obs) = map.get(&fingerprint) {
                if obs.count(op) >= MIN_FP_CALIBRATION_OBS {
                    if let Some(mean) = obs.mean(op) {
                        return (structural + mean) / 2.0;
                    }
                }
            }
        }
        self.calibrated(op, structural)
    }

    /// Estimates the work of evaluating one inclusion chain bottom-up
    /// (deepest name first, the engine's own order). Each `⊃` hop is a
    /// merge over both operand sets; each `⊃d` hop additionally walks the
    /// nesting forest ([`DIRECT_PENALTY`]); a selector shrinks the deepest
    /// set by the word's posting count.
    #[allow(clippy::cast_precision_loss)]
    pub fn estimate_chain(&self, expr: &InclusionExpr) -> CostEstimate {
        self.estimate_chain_fp(expr, 0)
    }

    /// [`StatsStore::estimate_chain`] with per-fingerprint calibration:
    /// once `fingerprint` has accumulated its own operator history, the
    /// shape's means replace the workload-wide blend. `fingerprint` 0
    /// behaves exactly like [`StatsStore::estimate_chain`].
    #[allow(clippy::cast_precision_loss)]
    pub fn estimate_chain_fp(&self, expr: &InclusionExpr, fingerprint: u64) -> CostEstimate {
        let names = expr.names();
        let ops = expr.ops();
        let deepest = names.last().map(String::as_str).unwrap_or_default();
        let deep_count = self.region_count(deepest) as f64;
        let mut consumed = 0.0;
        // Selector: σ_w probes the word index and intersects with the
        // deepest name's regions.
        let mut cur = match expr.selector() {
            Some((_, word)) => {
                let freq = self.word_frequency(word) as f64;
                consumed += merge_cost(deep_count, freq);
                self.calibrated_fp(fingerprint, "σ", freq.min(deep_count))
            }
            None => deep_count,
        };
        // Hops from the deepest name outward.
        for i in (0..ops.len()).rev() {
            let outer = self.region_count(&names[i]) as f64;
            let hop = merge_cost(outer, cur);
            match ops[i] {
                ChainOp::Incl => {
                    consumed += hop;
                    cur = self.calibrated_fp(fingerprint, "⊃", outer.min(cur));
                }
                ChainOp::Direct => {
                    consumed += hop * DIRECT_PENALTY;
                    cur = self.calibrated_fp(fingerprint, "⊃d", outer.min(cur));
                }
            }
        }
        let head = names.first().map(String::as_str).unwrap_or_default();
        let head_bytes = self.names.get(head).map_or(0.0, |s| s.mean_bytes);
        CostEstimate {
            regions_consumed: consumed,
            bytes_scanned: cur * head_bytes,
            output_card: cur,
        }
    }

    /// The scalar plan-ranking cost of a chain — what
    /// [`optimize_costed`](crate::optimize_costed) minimizes over the
    /// enumerated normal forms.
    pub fn estimate_cost(&self, expr: &InclusionExpr) -> f64 {
        self.estimate_chain(expr).scalar()
    }

    /// The scalar cost with per-fingerprint calibration — what the
    /// planner's cost-ranked lowering minimizes for a known chain shape.
    pub fn estimate_cost_fp(&self, expr: &InclusionExpr, fingerprint: u64) -> f64 {
        self.estimate_chain_fp(expr, fingerprint).scalar()
    }
}

/// The memoized result of lowering one optimizer run: the chosen
/// expression, the certified rewrite records, and whether the run was
/// accepted as provably empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedChain {
    /// The lowered (cost-ranked, certified) inclusion expression.
    pub expr: InclusionExpr,
    /// The rewrite records the planner would re-derive, in order.
    pub rewrites: Vec<PlanRewrite>,
    /// Whether the run is accepted trivially empty (Proposition 3.3).
    pub empty: bool,
}

/// Counters and gauges of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by the FIFO cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The statistics epoch the resident entries belong to.
    pub epoch: u64,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    map: HashMap<String, CachedChain>,
    order: VecDeque<String>,
}

/// A bounded FIFO cache of per-chain lowering results, keyed on the
/// chain's normalized region-expression spelling plus the strict flag
/// (callers build the key with [`PlanCache::chain_key`]). Entries belong
/// to one statistics epoch: [`PlanCache::bump_epoch`] clears them all, so
/// a stale plan can never outlive the index state it was ranked against.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    epoch: AtomicU64,
    max_entries: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_ENTRIES)
    }
}

impl PlanCache {
    /// A cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache holding at most `max_entries` chains (clamped to ≥ 1).
    pub fn with_capacity(max_entries: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            max_entries: max_entries.max(1),
        }
    }

    /// The canonical cache key of one lowering: the chain's *normalized*
    /// region-expression spelling (so commutative re-spellings share an
    /// entry) plus the strict flag (strict mode may suppress rewrites).
    pub fn chain_key(expr: &InclusionExpr, strict: bool) -> String {
        format!("strict={strict}|{}", expr.to_region_expr().normalized())
    }

    /// The epoch the resident entries belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidates every entry and advances the epoch — called when the
    /// index (and therefore the statistics a ranking was based on)
    /// changes. Counters survive: they describe the process lifetime.
    pub fn bump_epoch(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.clear();
        inner.order.clear();
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a chain, counting the outcome.
    pub fn get(&self, key: &str) -> Option<CachedChain> {
        let inner = self.inner.lock().expect("plan cache poisoned");
        match inner.map.get(key) {
            Some(chain) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(chain.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a lowering result, evicting oldest-first past the cap.
    pub fn insert(&self, key: String, chain: CachedChain) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if inner.map.insert(key.clone(), chain).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.max_entries {
            let Some(oldest) = inner.order.pop_front() else { break };
            if inner.map.remove(&oldest).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            epoch: self.epoch.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry without advancing the epoch (used when execution
    /// options change under the same index).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, SelectKind};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    fn chain(v: &[&str]) -> InclusionExpr {
        let ops = vec![ChainOp::Incl; v.len() - 1];
        InclusionExpr::including(names(v), ops, None)
    }

    fn store_with(counts: &[(&str, u64)]) -> StatsStore {
        let mut store = StatsStore::new();
        for &(name, regions) in counts {
            store.names.insert(name.to_owned(), NameStats { regions, mean_bytes: 10.0 });
            store.total_regions += regions;
        }
        store.epoch = 1;
        store
    }

    #[test]
    fn empty_store_ranks_everything_equal() {
        let store = StatsStore::new();
        assert_eq!(store.epoch(), 0);
        let a = store.estimate_cost(&chain(&["A", "B", "C"]));
        let b = store.estimate_cost(&chain(&["A", "X", "C"]));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bigger_middle_sets_cost_more() {
        let store = store_with(&[("A", 10), ("B", 1000), ("E", 5), ("F", 50)]);
        let via_b = store.estimate_cost(&chain(&["A", "B", "F"]));
        let via_e = store.estimate_cost(&chain(&["A", "E", "F"]));
        assert!(via_e < via_b, "the small middle set must win: via_e={via_e} via_b={via_b}");
    }

    #[test]
    fn direct_hops_cost_more_than_weak_hops() {
        let store = store_with(&[("A", 100), ("B", 100)]);
        let weak = InclusionExpr::including(names(&["A", "B"]), vec![ChainOp::Incl], None);
        let direct = InclusionExpr::all_direct(Direction::Including, names(&["A", "B"]), None);
        assert!(store.estimate_cost(&direct) > store.estimate_cost(&weak));
    }

    #[test]
    fn selector_uses_word_frequency() {
        let mut store = store_with(&[("A", 100), ("B", 1000)]);
        store.word_freqs.insert("rare".into(), 2);
        store.word_freqs.insert("common".into(), 500);
        store.total_postings = 502;
        let sel = |w: &str| {
            InclusionExpr::including(
                names(&["A", "B"]),
                vec![ChainOp::Incl],
                Some((SelectKind::Eq, w.into())),
            )
        };
        let rare = store.estimate_chain(&sel("rare"));
        let common = store.estimate_chain(&sel("common"));
        assert!(rare.output_card < common.output_card);
        assert!(rare.scalar() < common.scalar());
        assert!((store.word_selectivity("rare") - 2.0 / 502.0).abs() < 1e-12);
    }

    #[test]
    fn observations_calibrate_estimates_after_enough_traces() {
        let store = store_with(&[("A", 100), ("B", 100)]);
        let e = chain(&["A", "B"]);
        let before = store.estimate_chain(&e).output_card;
        {
            let mut obs = store.observations.lock().unwrap();
            for _ in 0..MIN_CALIBRATION_OBS {
                obs.observe("⊃", 10);
            }
        }
        let after = store.estimate_chain(&e).output_card;
        assert!((before - 100.0).abs() < 1e-9);
        assert!((after - 55.0).abs() < 1e-9, "blend of 100 structural and 10 observed");
    }

    #[test]
    fn per_fingerprint_calibration_beats_global_blend() {
        let store = store_with(&[("A", 100), ("B", 100)]);
        let e = chain(&["A", "B"]);
        // Global blend: heavily skewed by a noisy mixed workload.
        {
            let mut obs = store.observations.lock().unwrap();
            for _ in 0..MIN_CALIBRATION_OBS {
                obs.observe("⊃", 90);
            }
        }
        // One hot shape consistently produces 10 — feed it through the
        // public trace path so eviction and bounding are exercised too.
        let fp = 0xfeed;
        for _ in 0..MIN_FP_CALIBRATION_OBS {
            let trace = QueryTrace {
                fingerprint: fp,
                ops: vec![OpTrace { op: "⊃".into(), output: 10, ..OpTrace::default() }],
                ..QueryTrace::default()
            };
            store.observe_trace(&trace);
        }
        let global = store.estimate_chain(&e).output_card;
        let shaped = store.estimate_chain_fp(&e, fp).output_card;
        // The fingerprinted traces feed the global pool too: 16 obs of 90
        // plus 4 of 10 average to 74, blended with the structural 100.
        assert!((global - 87.0).abs() < 1e-9, "blend of 100 structural and 74 observed");
        assert!((shaped - 55.0).abs() < 1e-9, "blend of 100 structural and 10 per-fp observed");
        // Unknown and zero fingerprints fall back to the global blend.
        assert!((store.estimate_chain_fp(&e, 0x9999).output_card - global).abs() < 1e-9);
        assert!((store.estimate_chain_fp(&e, 0).output_card - global).abs() < 1e-9);
        let obs = store.fp_observations(fp).expect("fingerprint observed");
        assert_eq!(obs.count("⊃"), MIN_FP_CALIBRATION_OBS);
    }

    #[test]
    fn per_fingerprint_map_is_bounded() {
        let store = StatsStore::new();
        let trace_for = |fp: u64, n: usize| QueryTrace {
            fingerprint: fp,
            ops: vec![OpTrace { op: "⊃".into(), output: 5, ..OpTrace::default() }; n],
            ..QueryTrace::default()
        };
        // A heavy fingerprint, then a full sweep of one-shot shapes.
        store.observe_trace(&trace_for(1, 8));
        for fp in 2..=(MAX_FP_CALIBRATION_ENTRIES as u64 + 8) {
            store.observe_trace(&trace_for(fp, 1));
        }
        let map = store.per_fp.lock().unwrap();
        assert!(map.len() <= MAX_FP_CALIBRATION_ENTRIES, "map stays bounded: {}", map.len());
        assert!(map.contains_key(&1), "the heavy fingerprint survives eviction");
        drop(map);
        // Fingerprint 0 is never tracked.
        store.observe_trace(&trace_for(0, 3));
        assert!(store.fp_observations(0).is_none());
    }

    #[test]
    fn plan_cache_roundtrip_counts_and_evicts() {
        let cache = PlanCache::with_capacity(2);
        let entry = |tag: &str| CachedChain {
            expr: chain(&["A", tag]),
            rewrites: Vec::new(),
            empty: false,
        };
        assert!(cache.get("k1").is_none());
        cache.insert("k1".into(), entry("B"));
        cache.insert("k2".into(), entry("C"));
        assert_eq!(cache.get("k1").unwrap().expr, chain(&["A", "B"]));
        cache.insert("k3".into(), entry("D"));
        assert!(cache.get("k1").is_none(), "k1 was oldest; evicted");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 1));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn bump_epoch_clears_entries_but_not_counters() {
        let cache = PlanCache::new();
        cache.insert(
            "k".into(),
            CachedChain { expr: chain(&["A", "B"]), rewrites: Vec::new(), empty: false },
        );
        assert!(cache.get("k").is_some());
        cache.bump_epoch();
        assert_eq!(cache.epoch(), 1);
        assert!(cache.get("k").is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn chain_key_shares_commutative_spellings_and_splits_strict() {
        let e = chain(&["A", "B"]);
        assert_eq!(PlanCache::chain_key(&e, false), PlanCache::chain_key(&e, false));
        assert_ne!(PlanCache::chain_key(&e, false), PlanCache::chain_key(&e, true));
    }
}
