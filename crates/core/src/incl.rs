//! Inclusion expressions: the restricted region expressions the translation
//! produces and the optimizer rewrites — chains `A1 o1 A2 o2 … on−1 An` where
//! each `oi` is `⊃` or `⊃d` (selection queries, §5.1) or `⊂`/`⊂d`
//! (projections, §5.2), with an optional `σ_w` on the deepest element.

use crate::SelectKind as SK;
use qof_pat::RegionExpr;
use std::fmt;

/// One chain operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainOp {
    /// Simple inclusion (`⊃` / `⊂`).
    Incl,
    /// Direct inclusion (`⊃d` / `⊂d`), "significantly more expensive".
    Direct,
}

/// Whether the chain runs container→contained (`⊃`, selections) or
/// contained→container (`⊂`, projections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `A1 ⊃ A2 ⊃ …` — retrieve containers.
    Including,
    /// `A1 ⊂ A2 ⊂ …` — retrieve contained regions.
    IncludedIn,
}

/// The selection applied to the deepest element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectKind {
    /// `σ_w`: the region *is* the word/phrase.
    Eq,
    /// The region contains an occurrence of the word.
    Contains,
    /// The region is a word starting with the given prefix — PAT's lexical
    /// search through the suffix array.
    Prefix,
}

/// An inclusion expression.
///
/// Internally the chain is stored in **container order** (outermost name
/// first), regardless of direction; `Display` and
/// [`InclusionExpr::to_region_expr`] restore the surface order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionExpr {
    dir: Direction,
    /// Names in container order: `names[0]` is the outermost.
    names: Vec<String>,
    /// `ops[i]` connects `names[i]` (container) to `names[i+1]`.
    ops: Vec<ChainOp>,
    /// Optional selection on the deepest element.
    selector: Option<(SelectKind, String)>,
}

impl InclusionExpr {
    /// Builds a selection chain (`⊃` direction) from container order:
    /// `including(["Reference", "Authors", "Last_Name"], ops, σ)`.
    pub fn including(
        names: Vec<String>,
        ops: Vec<ChainOp>,
        selector: Option<(SelectKind, String)>,
    ) -> Self {
        assert_eq!(ops.len() + 1, names.len(), "a chain of n names has n−1 operators");
        Self { dir: Direction::Including, names, ops, selector }
    }

    /// Builds a projection chain (`⊂` direction), also given in container
    /// order (the surface syntax prints it deepest-first).
    pub fn included_in(
        names: Vec<String>,
        ops: Vec<ChainOp>,
        selector: Option<(SelectKind, String)>,
    ) -> Self {
        assert_eq!(ops.len() + 1, names.len(), "a chain of n names has n−1 operators");
        Self { dir: Direction::IncludedIn, names, ops, selector }
    }

    /// A chain with `⊃d` everywhere — the direct output of the translation
    /// before optimization.
    pub fn all_direct(
        dir: Direction,
        names: Vec<String>,
        selector: Option<(SelectKind, String)>,
    ) -> Self {
        let ops = vec![ChainOp::Direct; names.len().saturating_sub(1)];
        Self { dir, names, ops, selector }
    }

    /// The chain direction.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Names in container order (outermost first).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Operators in container order.
    pub fn ops(&self) -> &[ChainOp] {
        &self.ops
    }

    /// The selector, if any.
    pub fn selector(&self) -> Option<(SelectKind, &str)> {
        self.selector.as_ref().map(|(k, w)| (*k, w.as_str()))
    }

    /// Number of `⊃d`/`⊂d` operators remaining.
    pub fn direct_ops(&self) -> usize {
        self.ops.iter().filter(|o| **o == ChainOp::Direct).count()
    }

    /// Replaces the chain contents (used by the optimizer).
    pub(crate) fn with_chain(&self, names: Vec<String>, ops: Vec<ChainOp>) -> Self {
        assert_eq!(ops.len() + 1, names.len());
        Self { dir: self.dir, names, ops, selector: self.selector.clone() }
    }

    /// Lowers the chain to a [`RegionExpr`] for the PAT engine. Chains group
    /// from the right, as in the paper.
    pub fn to_region_expr(&self) -> RegionExpr {
        match self.dir {
            Direction::Including => {
                // Deepest element (last) carries the selector.
                let mut expr = self.atom(self.names.len() - 1);
                for i in (0..self.ops.len()).rev() {
                    let left = RegionExpr::name(&self.names[i]);
                    expr = match self.ops[i] {
                        ChainOp::Incl => left.including(expr),
                        ChainOp::Direct => left.direct_including(expr),
                    };
                }
                expr
            }
            Direction::IncludedIn => {
                // Surface order is deepest-first: An ⊂ An−1 ⊂ … ⊂ A1,
                // grouping from the right; the deepest element carries σ.
                if self.names.len() == 1 {
                    self.atom(0)
                } else {
                    self.included_in_fold()
                }
            }
        }
    }

    /// Right-grouped fold for ⊂ chains of length ≥ 3:
    /// `An ⊂ (An−1 ⊂ (… ⊂ A1))`.
    fn included_in_fold(&self) -> RegionExpr {
        let n = self.names.len();
        // Build the right part: A1, then A2 ⊂ A1, … in container order.
        let mut right = RegionExpr::name(&self.names[0]);
        for i in 1..n - 1 {
            let left = RegionExpr::name(&self.names[i]);
            right = match self.ops[i - 1] {
                ChainOp::Incl => left.included_in(right),
                ChainOp::Direct => left.direct_included_in(right),
            };
        }
        let deepest = self.atom(n - 1);
        match self.ops[n - 2] {
            ChainOp::Incl => deepest.included_in(right),
            ChainOp::Direct => deepest.direct_included_in(right),
        }
    }

    fn atom(&self, idx: usize) -> RegionExpr {
        let name = RegionExpr::name(&self.names[idx]);
        match &self.selector {
            Some((SK::Eq, w)) => name.select_eq(w.clone()),
            Some((SK::Contains, w)) => name.select_contains(w.clone()),
            Some((SK::Prefix, w)) => name.intersect(RegionExpr::prefix(w.clone())),
            None => name,
        }
    }
}

impl fmt::Display for InclusionExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op_str = |op: ChainOp, dir: Direction| match (op, dir) {
            (ChainOp::Incl, Direction::Including) => "⊃",
            (ChainOp::Direct, Direction::Including) => "⊃d",
            (ChainOp::Incl, Direction::IncludedIn) => "⊂",
            (ChainOp::Direct, Direction::IncludedIn) => "⊂d",
        };
        let atom = |i: usize, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if i == self.names.len() - 1 {
                match &self.selector {
                    Some((SK::Eq, w)) => return write!(f, "σ_\"{w}\"({})", self.names[i]),
                    Some((SK::Contains, w)) => return write!(f, "σ∋\"{w}\"({})", self.names[i]),
                    Some((SK::Prefix, w)) => return write!(f, "σ_\"{w}*\"({})", self.names[i]),
                    None => {}
                }
            }
            write!(f, "{}", self.names[i])
        };
        match self.dir {
            Direction::Including => {
                for i in 0..self.names.len() {
                    if i > 0 {
                        write!(f, " {} ", op_str(self.ops[i - 1], self.dir))?;
                    }
                    atom(i, f)?;
                }
            }
            Direction::IncludedIn => {
                for k in 0..self.names.len() {
                    let i = self.names.len() - 1 - k; // deepest first
                    if k > 0 {
                        write!(f, " {} ", op_str(self.ops[i], self.dir))?;
                    }
                    atom(i, f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn displays_like_the_paper_e1() {
        // e1 = Reference ⊃d Authors ⊃d Name ⊃d σ_"Chang"(Last_Name)
        let e = InclusionExpr::all_direct(
            Direction::Including,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            Some((SelectKind::Eq, "Chang".into())),
        );
        assert_eq!(e.to_string(), "Reference ⊃d Authors ⊃d Name ⊃d σ_\"Chang\"(Last_Name)");
        assert_eq!(e.direct_ops(), 3);
    }

    #[test]
    fn displays_like_the_paper_e2() {
        // e2 = Reference ⊃ Authors ⊃ σ_"Chang"(Last_Name)
        let e = InclusionExpr::including(
            names(&["Reference", "Authors", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            Some((SelectKind::Eq, "Chang".into())),
        );
        assert_eq!(e.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
        assert_eq!(e.direct_ops(), 0);
    }

    #[test]
    fn projection_chain_displays_deepest_first() {
        // §5.2: Last_Name ⊂d Name ⊂d Authors ⊂d Reference.
        let e = InclusionExpr::all_direct(
            Direction::IncludedIn,
            names(&["Reference", "Authors", "Name", "Last_Name"]),
            None,
        );
        assert_eq!(e.to_string(), "Last_Name ⊂d Name ⊂d Authors ⊂d Reference");
    }

    #[test]
    fn region_expr_lowering_including() {
        let e = InclusionExpr::including(
            names(&["Reference", "Authors", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            Some((SelectKind::Eq, "Chang".into())),
        );
        let r = e.to_region_expr();
        assert_eq!(r.to_string(), "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)");
    }

    #[test]
    fn region_expr_lowering_included_in() {
        let e = InclusionExpr::included_in(
            names(&["Reference", "Authors", "Last_Name"]),
            vec![ChainOp::Incl, ChainOp::Incl],
            None,
        );
        let r = e.to_region_expr();
        assert_eq!(r.to_string(), "Last_Name ⊂ Authors ⊂ Reference");
    }

    #[test]
    fn region_expr_two_name_included_in() {
        let e = InclusionExpr::included_in(
            names(&["Reference", "Last_Name"]),
            vec![ChainOp::Direct],
            None,
        );
        assert_eq!(e.to_region_expr().to_string(), "Last_Name ⊂d Reference");
    }

    #[test]
    fn single_name_chain() {
        let e = InclusionExpr::including(
            names(&["Reference"]),
            vec![],
            Some((SelectKind::Contains, "Chang".into())),
        );
        assert_eq!(e.to_string(), "σ∋\"Chang\"(Reference)");
        assert_eq!(e.to_region_expr().to_string(), "σ∋\"Chang\"(Reference)");
    }

    #[test]
    fn prefix_selector_display_and_lowering() {
        let e = InclusionExpr::including(
            names(&["Reference", "Last_Name"]),
            vec![ChainOp::Incl],
            Some((SelectKind::Prefix, "Ch".into())),
        );
        assert_eq!(e.to_string(), "Reference ⊃ σ_\"Ch*\"(Last_Name)");
        let r = e.to_region_expr();
        assert!(r.to_string().contains("prefix(\"Ch\")"));
    }

    #[test]
    #[should_panic(expected = "n−1 operators")]
    fn mismatched_ops_panic() {
        let _ = InclusionExpr::including(names(&["A", "B"]), vec![], None);
    }
}
