//! Translation of query paths into region-expression chains (§5.1, §6.1).
//!
//! A path expression in a query matches derivation path(s) in the grammar —
//! "the path expression in the query corresponds to a path in the RIG". The
//! [`resolve_path`] function computes those derivation paths ([`Skeleton`]s);
//! the planner then projects them onto the indexed names and optimizes the
//! resulting inclusion expressions.

use crate::QStep;
use qof_grammar::{Grammar, RuleBody, SymbolId};
use std::fmt;

/// How two consecutive skeleton names relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkOp {
    /// Parent/child in the grammar — a RIG edge (translates to `⊃d`).
    Adjacent,
    /// A `*X` variable — any derivation path (translates to `⊃`).
    Star,
    /// A transitive-closure step `A+` — like [`SkOp::Star`], but the target
    /// name is not a value field (it is discriminated by the region index
    /// only; the value side uses the following attribute).
    Closure,
    /// A run of `n` single-step variables — exactly `n` regions in between.
    Exact(u32),
}

/// One derivation alternative for a query path: grammar symbol names from
/// the view symbol (inclusive) to the target attribute, with the relation
/// between each consecutive pair. `is_field[i]` says whether `names[i+1]`
/// is a *value field* (appears in the database value) as opposed to a
/// transparent choice branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// Symbol names, `names[0]` being the view symbol.
    pub names: Vec<String>,
    /// Relations; `ops[i]` connects `names[i]` and `names[i+1]`.
    pub ops: Vec<SkOp>,
    /// Whether `names[i+1]` is a value field (aligned with `ops`).
    pub is_field: Vec<bool>,
}

/// The resolved alternatives of one query path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    /// All derivation alternatives (several when choice rules fork).
    pub alternatives: Vec<Skeleton>,
}

/// Errors raised during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The FROM clause names a view the schema does not define.
    UnknownView(String),
    /// No derivation of the view symbol carries this attribute here.
    NoSuchAttribute {
        /// The attribute that failed to resolve.
        attribute: String,
        /// The symbol it was looked up under.
        under: String,
    },
    /// A `*X`/`X1..Xn` variable must be followed by an attribute.
    VariableAtEnd,
    /// The referenced symbol does not exist in the grammar.
    UnknownSymbol(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            TranslateError::NoSuchAttribute { attribute, under } => {
                write!(f, "attribute `{attribute}` does not exist under `{under}`")
            }
            TranslateError::VariableAtEnd => {
                write!(f, "a path variable must be followed by an attribute")
            }
            TranslateError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Resolves a query path (the steps after the range variable) against the
/// grammar, starting at the view symbol.
pub fn resolve_path(
    grammar: &Grammar,
    view_symbol: &str,
    steps: &[QStep],
) -> Result<PathSpec, TranslateError> {
    let start = grammar
        .symbol(view_symbol)
        .ok_or_else(|| TranslateError::UnknownSymbol(view_symbol.to_owned()))?;
    let mut alternatives = Vec::new();
    let seed = Skeleton { names: vec![view_symbol.to_owned()], ops: vec![], is_field: vec![] };
    walk(grammar, start, steps, seed, &mut alternatives)?;
    if alternatives.is_empty() {
        // walk reports precise errors; empty without error cannot happen.
        return Err(TranslateError::NoSuchAttribute {
            attribute: steps
                .iter()
                .find_map(|s| match s {
                    QStep::Attr(a) => Some(a.clone()),
                    _ => None,
                })
                .unwrap_or_default(),
            under: view_symbol.to_owned(),
        });
    }
    Ok(PathSpec { alternatives })
}

fn walk(
    grammar: &Grammar,
    sym: SymbolId,
    steps: &[QStep],
    acc: Skeleton,
    out: &mut Vec<Skeleton>,
) -> Result<(), TranslateError> {
    let Some((step, rest)) = steps.split_first() else {
        out.push(acc);
        return Ok(());
    };
    match step {
        QStep::Attr(a) => {
            let mut matches = Vec::new();
            attr_matches(grammar, sym, a, &mut Vec::new(), &mut matches);
            if matches.is_empty() {
                return Err(TranslateError::NoSuchAttribute {
                    attribute: a.clone(),
                    under: grammar.name(sym).to_owned(),
                });
            }
            for chain in matches {
                let mut next = acc.clone();
                for (k, &s) in chain.iter().enumerate() {
                    next.names.push(grammar.name(s).to_owned());
                    next.ops.push(SkOp::Adjacent);
                    // Only the final element of the chain is the named field;
                    // intermediate entries are transparent choice branches.
                    next.is_field.push(k == chain.len() - 1);
                }
                walk(grammar, *chain.last().expect("non-empty match"), rest, next, out)?;
            }
            Ok(())
        }
        QStep::Star(_) | QStep::Vars(_) => {
            let Some(QStep::Attr(a)) = rest.first() else {
                return Err(TranslateError::VariableAtEnd);
            };
            let target =
                grammar.symbol(a).ok_or_else(|| TranslateError::UnknownSymbol(a.clone()))?;
            let mut next = acc;
            next.names.push(a.clone());
            next.ops.push(match step {
                QStep::Star(_) => SkOp::Star,
                QStep::Vars(n) => SkOp::Exact(*n),
                _ => unreachable!(),
            });
            next.is_field.push(true);
            walk(grammar, target, &rest[1..], next, out)
        }
        QStep::Plus(a) => {
            // `A+`: a closure hop to the symbol itself; the remaining steps
            // continue from it. Region-wise this is plain inclusion — the
            // nested repetitions of A collapse into one ⊃ (§5.3's
            // transitive-closure claim).
            let target =
                grammar.symbol(a).ok_or_else(|| TranslateError::UnknownSymbol(a.clone()))?;
            let mut next = acc;
            next.names.push(a.clone());
            next.ops.push(SkOp::Closure);
            next.is_field.push(false);
            walk(grammar, target, rest, next, out)
        }
    }
}

/// Chains of symbols leading from `sym` (exclusive) to a child named `attr`,
/// descending transparently through choice branches.
fn attr_matches(
    grammar: &Grammar,
    sym: SymbolId,
    attr: &str,
    visiting: &mut Vec<SymbolId>,
    out: &mut Vec<Vec<SymbolId>>,
) {
    if visiting.contains(&sym) {
        return; // cyclic choice guard
    }
    visiting.push(sym);
    match &grammar.rule(sym).body {
        RuleBody::Choice(alts) => {
            for &alt in alts {
                if grammar.name(alt) == attr {
                    out.push(vec![alt]);
                } else {
                    let mut deeper = Vec::new();
                    attr_matches(grammar, alt, attr, visiting, &mut deeper);
                    for mut d in deeper {
                        d.insert(0, alt);
                        out.push(d);
                    }
                }
            }
        }
        _ => {
            for child in grammar.children_of(sym) {
                if grammar.name(child) == attr {
                    out.push(vec![child]);
                }
            }
        }
    }
    visiting.pop();
}

/// The value-field paths (for the §6.2 push-down filter) of a spec: each
/// alternative contributes its field names up to the first `*X`/`X1..Xn`
/// connector; everything below the last kept field is retained in full.
pub fn filter_paths(spec: &PathSpec) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for alt in &spec.alternatives {
        let mut path = Vec::new();
        for (i, op) in alt.ops.iter().enumerate() {
            if !matches!(op, SkOp::Adjacent) {
                break;
            }
            if alt.is_field[i] {
                path.push(alt.names[i + 1].clone());
            } else {
                // Transparent choice branch: not a value field; the filter
                // trie uses node symbols, and Child builders pass filters
                // through unchanged, so the branch is simply skipped.
            }
        }
        out.push(path);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QStep;
    use qof_grammar::{lit, nt, TokenPattern, ValueBuilder};

    fn bib_grammar() -> Grammar {
        Grammar::builder("Ref_Set")
            .repeat("Ref_Set", "Reference", None, ValueBuilder::Set)
            .seq(
                "Reference",
                [lit("{"), nt("Key"), nt("Authors"), nt("Editors"), lit("}")],
                ValueBuilder::ObjectAuto("Reference".into()),
            )
            .token("Key", TokenPattern::Word, ValueBuilder::Atom)
            .repeat("Authors", "Name", Some(","), ValueBuilder::Set)
            .repeat("Editors", "Name", Some(","), ValueBuilder::Set)
            .seq("Name", [nt("First_Name"), nt("Last_Name")], ValueBuilder::TupleAuto)
            .token("First_Name", TokenPattern::Initials, ValueBuilder::Atom)
            .token("Last_Name", TokenPattern::Word, ValueBuilder::Atom)
            .build()
            .unwrap()
    }

    fn attrs(v: &[&str]) -> Vec<QStep> {
        v.iter().map(|s| QStep::Attr(s.to_string())).collect()
    }

    #[test]
    fn simple_path_resolves_to_single_skeleton() {
        let g = bib_grammar();
        let spec =
            resolve_path(&g, "Reference", &attrs(&["Authors", "Name", "Last_Name"])).unwrap();
        assert_eq!(spec.alternatives.len(), 1);
        let alt = &spec.alternatives[0];
        assert_eq!(alt.names, ["Reference", "Authors", "Name", "Last_Name"]);
        assert!(alt.ops.iter().all(|o| *o == SkOp::Adjacent));
        assert!(alt.is_field.iter().all(|b| *b));
    }

    #[test]
    fn star_path_produces_star_op() {
        let g = bib_grammar();
        let spec = resolve_path(
            &g,
            "Reference",
            &[QStep::Star("X".into()), QStep::Attr("Last_Name".into())],
        )
        .unwrap();
        let alt = &spec.alternatives[0];
        assert_eq!(alt.names, ["Reference", "Last_Name"]);
        assert_eq!(alt.ops, [SkOp::Star]);
    }

    #[test]
    fn vars_path_produces_exact_op() {
        let g = bib_grammar();
        let spec =
            resolve_path(&g, "Reference", &[QStep::Vars(2), QStep::Attr("Last_Name".into())])
                .unwrap();
        assert_eq!(spec.alternatives[0].ops, [SkOp::Exact(2)]);
    }

    #[test]
    fn missing_attribute_errors() {
        let g = bib_grammar();
        let e = resolve_path(&g, "Reference", &attrs(&["Publisher"])).unwrap_err();
        assert_eq!(
            e,
            TranslateError::NoSuchAttribute {
                attribute: "Publisher".into(),
                under: "Reference".into()
            }
        );
        let e2 = resolve_path(&g, "Reference", &attrs(&["Authors", "Publisher"])).unwrap_err();
        assert!(matches!(e2, TranslateError::NoSuchAttribute { .. }));
    }

    #[test]
    fn variable_at_end_errors() {
        let g = bib_grammar();
        let e = resolve_path(&g, "Reference", &[QStep::Star("X".into())]).unwrap_err();
        assert_eq!(e, TranslateError::VariableAtEnd);
    }

    #[test]
    fn choice_rules_fork_alternatives() {
        let g = Grammar::builder("Top")
            .seq("Top", [nt("Entry")], ValueBuilder::TupleAuto)
            .choice("Entry", &["Book", "Article"], ValueBuilder::Child)
            .seq("Book", [lit("b"), nt("Year")], ValueBuilder::TupleAuto)
            .seq("Article", [lit("a"), nt("Year")], ValueBuilder::TupleAuto)
            .token("Year", TokenPattern::Number, ValueBuilder::Atom)
            .build()
            .unwrap();
        let spec = resolve_path(&g, "Entry", &attrs(&["Year"])).unwrap();
        assert_eq!(spec.alternatives.len(), 2);
        let names: Vec<&Vec<String>> = spec.alternatives.iter().map(|a| &a.names).collect();
        assert!(names.iter().any(|n| n.contains(&"Book".to_string())));
        assert!(names.iter().any(|n| n.contains(&"Article".to_string())));
        // The branch symbol is transparent (not a value field).
        let alt = &spec.alternatives[0];
        assert_eq!(alt.is_field, [false, true]);
    }

    #[test]
    fn filter_paths_stop_at_connectors() {
        let g = bib_grammar();
        let full =
            resolve_path(&g, "Reference", &attrs(&["Authors", "Name", "Last_Name"])).unwrap();
        assert_eq!(
            filter_paths(&full),
            vec![vec!["Authors".to_string(), "Name".to_string(), "Last_Name".to_string()]]
        );
        let star = resolve_path(
            &g,
            "Reference",
            &[QStep::Star("X".into()), QStep::Attr("Last_Name".into())],
        )
        .unwrap();
        assert_eq!(filter_paths(&star), vec![Vec::<String>::new()]);
    }

    #[test]
    fn self_nested_grammar_paths() {
        let g = Grammar::builder("Doc")
            .seq("Doc", [lit("<d>"), nt("Sections"), lit("</d>")], ValueBuilder::Child)
            .repeat("Sections", "Section", None, ValueBuilder::Set)
            .seq(
                "Section",
                [lit("<s>"), nt("Head"), nt("Subsections"), lit("</s>")],
                ValueBuilder::ObjectAuto("Section".into()),
            )
            .token("Head", TokenPattern::Word, ValueBuilder::Atom)
            .repeat("Subsections", "Section", None, ValueBuilder::Set)
            .build()
            .unwrap();
        // Section.Subsections.Section.Head resolves through the cycle.
        let spec =
            resolve_path(&g, "Section", &attrs(&["Subsections", "Section", "Head"])).unwrap();
        assert_eq!(spec.alternatives[0].names, ["Section", "Subsections", "Section", "Head"]);
        // Star over the cycle.
        let star =
            resolve_path(&g, "Section", &[QStep::Star("X".into()), QStep::Attr("Head".into())])
                .unwrap();
        assert_eq!(star.alternatives[0].names, ["Section", "Head"]);
    }
}
