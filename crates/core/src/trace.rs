//! `EXPLAIN ANALYZE` for the whole pipeline: a [`QueryTrace`] records what
//! one query run actually did — the plan, the optimizer rewrites that fired
//! (tagged with the licensing proposition: 3.3, 3.5(a), 3.5(b)), per-phase
//! wall times, per-shard phase-1 work for the parallel path, and the
//! operator tree from the engine ([`OpTrace`]) with timings, cardinalities
//! and cache outcomes.
//!
//! Two renderers live here: [`QueryTrace::render`], the rustc-style pretty
//! tree behind `qof query --explain-analyze`, and
//! [`QueryTrace::to_json`] / [`QueryTrace::from_json`], a dependency-free
//! JSON round trip (`--trace-json`, consumed by the bench harness and CI).

use std::fmt::Write as _;

use qof_pat::json::{get_arr, get_bool, get_str, get_str_arr, get_u64, opt_u64, Json};
use qof_pat::{CacheSource, OpTrace};
use qof_text::Pos;

use crate::plan::PlanRewrite;

/// Version stamp of the `--trace-json` format. Bump when a field changes
/// meaning; consumers (bench harness, CI smoke job) check it.
///
/// History: v2 added `id`, the per-database query sequence number that the
/// query server uses to correlate responses, query-log lines and
/// flight-recorder entries. v3 added the abstract interpreter: `facts`
/// (per-plan-node [`NodeFact`]s) and a `certified` flag on every rewrite
/// (the certifier's verdict). v4 added the cost model: `estimates`
/// (per-variable estimated-vs-actual candidate cardinalities,
/// [`CardEstimate`]) and the `plan_cache_hits`/`plan_cache_misses` pair
/// recording how much planning work this run reused. v5 made the trace a
/// true span tree: every op node carries `span_id` (unique in the trace)
/// and `start_nanos` (its start offset on the query's shared monotonic
/// timeline), and phases and shards carry `start_nanos` too — enough to
/// export the run as Chrome `trace_event` JSON
/// ([`trace_to_perfetto`](crate::perfetto::trace_to_perfetto)). v6 added
/// workload analytics: `fingerprint` (the plan's deterministic FNV-1a
/// fingerprint, serialized as a fixed-width 16-hex string — the
/// aggregation key of `GET /workload` and `qof qlog analyze`) and
/// `bytes_touched` (parse-phase bytes scanned plus content bytes read).
/// All earlier fields are unchanged.
pub const TRACE_SCHEMA_VERSION: u64 = 6;

/// The abstract interpreter's verdict on one plan node (trace schema v3):
/// a static domain, a cardinality interval and an emptiness fact, as
/// computed by [`AbsInterp`](crate::analyze::absint::AbsInterp).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeFact {
    /// The plan node's display label.
    pub node: String,
    /// Region types the node's spans can belong to; meaningful only when
    /// `domain_known` is true.
    pub domain: Vec<String>,
    /// Whether `domain` is a real claim (`false` means ⊤: raw word or
    /// position spans with no region type).
    pub domain_known: bool,
    /// Lower cardinality bound, inclusive.
    pub card_lo: u64,
    /// Upper cardinality bound, inclusive; `None` is unbounded (the JSON
    /// form omits the key).
    pub card_hi: Option<u64>,
    /// Whether the node is proven to evaluate to ∅.
    pub empty: bool,
    /// Human-readable evidence.
    pub notes: Vec<String>,
}

/// Estimated vs actual candidate cardinality of one range variable
/// (trace schema v4): the abstract interpreter's interval for the
/// variable's index condition, next to the candidate count phase 1
/// actually produced. The interval is sound, so
/// `est_lo ≤ observed ≤ est_hi` whenever the estimate comes from the
/// certified machinery — the bench harness reports the midpoint error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CardEstimate {
    /// The range variable.
    pub var: String,
    /// Estimated lower bound on the candidate count, inclusive.
    pub est_lo: u64,
    /// Estimated upper bound, inclusive; `None` is unbounded (the JSON
    /// form omits the key).
    pub est_hi: Option<u64>,
    /// Candidate regions phase 1 actually produced for the variable.
    pub observed: u64,
}

/// Wall time of one executor phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Phase name (`index-candidates`, `content-join`, `parse-filter`,
    /// `projection`).
    pub name: String,
    /// Start offset on the query's timeline, nanoseconds since execution
    /// began (schema v5). Phases are timed back-to-back against one
    /// clock, so each phase ends no later than the next one starts.
    pub start_nanos: u64,
    /// Inclusive wall time, nanoseconds.
    pub nanos: u64,
}

/// Phase-1 work of one shard of the parallel path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTrace {
    /// Start of the shard's corpus span.
    pub start: Pos,
    /// End of the shard's corpus span.
    pub end: Pos,
    /// Start offset of the shard's work on the query's timeline,
    /// nanoseconds since execution began (schema v5). The shard's op
    /// spans carry offsets on the same timeline — every sink of one query
    /// shares the executor's origin instant.
    pub start_nanos: u64,
    /// The shard worker's wall time, nanoseconds.
    pub nanos: u64,
    /// Operator trace recorded by the shard's scoped engine.
    pub ops: Vec<OpTrace>,
}

/// Everything one traced query run recorded, across optimizer, engine and
/// executor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Query sequence number, unique per [`FileDatabase`] instance and
    /// assigned in execution order starting from 1. The query server uses
    /// it to correlate a response with its query-log line and
    /// flight-recorder entry.
    ///
    /// [`FileDatabase`]: crate::FileDatabase
    pub id: u64,
    /// The plan's deterministic fingerprint (schema v6): FNV-1a over the
    /// normalized chain spellings the plan cache keys on, identical
    /// across processes for the same query shape. 0 means "not stamped".
    pub fingerprint: u64,
    /// The query source text.
    pub query: String,
    /// The EXPLAIN text of the executed plan.
    pub plan: String,
    /// Optimizer rewrites applied during planning, in order.
    pub rewrites: Vec<PlanRewrite>,
    /// Per-plan-node abstract facts (schema v3).
    pub facts: Vec<NodeFact>,
    /// Per-variable estimated vs actual candidate cardinalities (schema
    /// v4).
    pub estimates: Vec<CardEstimate>,
    /// Executor phases with wall times, in execution order.
    pub phases: Vec<PhaseTrace>,
    /// Per-shard phase-1 traces (empty on the sequential path).
    pub shards: Vec<ShardTrace>,
    /// Operator trace of the main (unscoped) engine.
    pub ops: Vec<OpTrace>,
    /// Shared-cache hits during this run.
    pub cache_hits: u64,
    /// Shared-cache misses during this run.
    pub cache_misses: u64,
    /// Plan-cache hits while planning this run (schema v4): lowered
    /// chains reused from a previous optimize-and-certify.
    pub plan_cache_hits: u64,
    /// Plan-cache misses while planning this run (schema v4).
    pub plan_cache_misses: u64,
    /// End-to-end wall time, nanoseconds.
    pub total_nanos: u64,
    /// Bytes the run touched (schema v6): parse-phase bytes scanned plus
    /// content bytes read by conditions, joins and projections.
    pub bytes_touched: u64,
    /// Candidate view regions considered.
    pub candidates: usize,
    /// Result count.
    pub results: usize,
    /// Whether the index phase alone computed the exact answer (§6.3).
    pub exact_index: bool,
}

/// Scratch space the executor fills while running traced (crate-internal;
/// [`FileDatabase::query_traced`](crate::FileDatabase::query_traced)
/// assembles the public [`QueryTrace`] from it).
#[derive(Debug, Default)]
pub(crate) struct ExecTrace {
    pub(crate) phases: Vec<PhaseTrace>,
    pub(crate) shards: Vec<ShardTrace>,
    pub(crate) ops: Vec<OpTrace>,
    /// Phase-1 candidate counts per range variable, in plan (FROM) order —
    /// the "actual" half of the v4 [`CardEstimate`]s.
    pub(crate) var_candidates: Vec<u64>,
}

impl QueryTrace {
    /// Fraction of shared-cache lookups that hit during this run.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }

    /// Total operator-trace nodes, main engine and shards together.
    pub fn op_node_count(&self) -> usize {
        let main: usize = self.ops.iter().map(OpTrace::node_count).sum();
        let sharded: usize = self.shards.iter().flat_map(|s| &s.ops).map(OpTrace::node_count).sum();
        main + sharded
    }

    /// The rustc-style pretty tree shown by `qof query --explain-analyze`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", self.query);
        if self.id != 0 {
            let _ = writeln!(out, "id: {}", self.id);
        }
        if self.fingerprint != 0 {
            let _ = writeln!(out, "fingerprint: {:016x}", self.fingerprint);
        }
        let _ = writeln!(out, "plan:");
        for line in self.plan.lines() {
            let _ = writeln!(out, "  │ {line}");
        }
        let _ = writeln!(out, "optimizer rewrites: {}", self.rewrites.len());
        for rw in &self.rewrites {
            let mark = if rw.certified { "✓ certified" } else { "✗ NOT certified" };
            let _ = writeln!(out, "  [{}] {}  {mark}", rw.proposition, rw.description);
            let _ = writeln!(out, "        ⇒ {}", rw.result);
        }
        if !self.facts.is_empty() {
            let _ = writeln!(out, "static facts:");
            for fact in &self.facts {
                let domain = if fact.domain_known {
                    format!("{{{}}}", fact.domain.join(", "))
                } else {
                    "⊤".to_string()
                };
                let card = match fact.card_hi {
                    Some(hi) => format!("[{}, {hi}]", fact.card_lo),
                    None => format!("[{}, ∞)", fact.card_lo),
                };
                let empty = if fact.empty { "  ∅" } else { "" };
                let _ = writeln!(out, "  {}: domain {domain}, card {card}{empty}", fact.node);
                for note in &fact.notes {
                    let _ = writeln!(out, "      note: {note}");
                }
            }
        }
        if !self.estimates.is_empty() {
            let _ = writeln!(out, "cardinality estimates:");
            for est in &self.estimates {
                let interval = match est.est_hi {
                    Some(hi) => format!("[{}, {hi}]", est.est_lo),
                    None => format!("[{}, ∞)", est.est_lo),
                };
                let bounded = if est.est_lo <= est.observed
                    && est.est_hi.is_none_or(|hi| est.observed <= hi)
                {
                    ""
                } else {
                    "  ⚠ outside interval"
                };
                let _ = writeln!(
                    out,
                    "  {}: estimated {interval}, actual {}{bounded}",
                    est.var, est.observed
                );
            }
        }
        let _ = writeln!(out, "phases:");
        for ph in &self.phases {
            let _ = writeln!(out, "  {:<18} {:>10}", ph.name, fmt_nanos(ph.nanos));
        }
        if !self.shards.is_empty() {
            let _ = writeln!(out, "shards (phase 1):");
            for sh in &self.shards {
                let nodes: usize = sh.ops.iter().map(OpTrace::node_count).sum();
                let _ = writeln!(
                    out,
                    "  [{}, {})  {:>10}  {} operator nodes",
                    sh.start,
                    sh.end,
                    fmt_nanos(sh.nanos),
                    nodes
                );
            }
        }
        let _ = writeln!(out, "operators:");
        let roots: Vec<&OpTrace> = if self.ops.is_empty() && !self.shards.is_empty() {
            // Sequential ops are empty on the fully sharded path: show the
            // first shard's tree as the representative operator breakdown.
            self.shards[0].ops.iter().collect()
        } else {
            self.ops.iter().collect()
        };
        for (i, root) in roots.iter().enumerate() {
            render_op(root, "  ", i + 1 == roots.len(), &mut out);
        }
        let plan_cache = if self.plan_cache_hits + self.plan_cache_misses > 0 {
            format!(
                ", plan cache {}/{} hits",
                self.plan_cache_hits,
                self.plan_cache_hits + self.plan_cache_misses
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "totals: {} candidates, {} results [{}], cache {}/{} hits{plan_cache}, {}",
            self.candidates,
            self.results,
            if self.exact_index { "exact" } else { "candidates" },
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            fmt_nanos(self.total_nanos)
        );
        out
    }

    /// Serializes the trace to its versioned JSON form (`--trace-json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"schema_version\":{TRACE_SCHEMA_VERSION}");
        let _ = write!(s, ",\"id\":{}", self.id);
        // 16-hex string, not a number: JSON consumers (python CI folds,
        // jq) would round a u64 past 2^53.
        let _ = write!(s, ",\"fingerprint\":\"{:016x}\"", self.fingerprint);
        let _ = write!(s, ",\"query\":\"{}\"", esc(&self.query));
        let _ = write!(s, ",\"plan\":\"{}\"", esc(&self.plan));
        s.push_str(",\"rewrites\":[");
        for (i, rw) in self.rewrites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"proposition\":\"{}\",\"description\":\"{}\",\"result\":\"{}\",\
                 \"certified\":{}}}",
                esc(&rw.proposition),
                esc(&rw.description),
                esc(&rw.result),
                rw.certified
            );
        }
        s.push_str("],\"facts\":[");
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"node\":\"{}\",\"domain\":[", esc(&fact.node));
            for (j, name) in fact.domain.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", esc(name));
            }
            let _ =
                write!(s, "],\"domain_known\":{},\"card_lo\":{}", fact.domain_known, fact.card_lo);
            // The reader has no `null`: an unbounded interval omits the key.
            if let Some(hi) = fact.card_hi {
                let _ = write!(s, ",\"card_hi\":{hi}");
            }
            let _ = write!(s, ",\"empty\":{},\"notes\":[", fact.empty);
            for (j, note) in fact.notes.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", esc(note));
            }
            s.push_str("]}");
        }
        s.push_str("],\"estimates\":[");
        for (i, est) in self.estimates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"var\":\"{}\",\"est_lo\":{}", esc(&est.var), est.est_lo);
            // Same convention as `card_hi`: unbounded omits the key.
            if let Some(hi) = est.est_hi {
                let _ = write!(s, ",\"est_hi\":{hi}");
            }
            let _ = write!(s, ",\"observed\":{}}}", est.observed);
        }
        s.push_str("],\"phases\":[");
        for (i, ph) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"start_nanos\":{},\"nanos\":{}}}",
                esc(&ph.name),
                ph.start_nanos,
                ph.nanos
            );
        }
        s.push_str("],\"shards\":[");
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"start\":{},\"end\":{},\"start_nanos\":{},\"nanos\":{},\"ops\":",
                sh.start, sh.end, sh.start_nanos, sh.nanos
            );
            ops_to_json(&sh.ops, &mut s);
            s.push('}');
        }
        s.push_str("],\"ops\":");
        ops_to_json(&self.ops, &mut s);
        let _ =
            write!(s, ",\"cache_hits\":{},\"cache_misses\":{}", self.cache_hits, self.cache_misses);
        let _ = write!(
            s,
            ",\"plan_cache_hits\":{},\"plan_cache_misses\":{}",
            self.plan_cache_hits, self.plan_cache_misses
        );
        let _ = write!(s, ",\"total_nanos\":{}", self.total_nanos);
        let _ = write!(s, ",\"bytes_touched\":{}", self.bytes_touched);
        let _ = write!(s, ",\"candidates\":{},\"results\":{}", self.candidates, self.results);
        let _ = write!(s, ",\"exact_index\":{}", self.exact_index);
        s.push('}');
        s
    }

    /// Parses a trace back from [`QueryTrace::to_json`] output. Rejects
    /// unknown schema versions and malformed documents with a description
    /// of the first offence.
    pub fn from_json(text: &str) -> Result<QueryTrace, String> {
        let value = Json::parse(text)?;
        let obj = value.as_obj().ok_or("top level is not an object")?;
        let version = get_u64(obj, "schema_version")?;
        if version != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported trace schema version {version} (expected {TRACE_SCHEMA_VERSION})"
            ));
        }
        let rewrites = get_arr(obj, "rewrites")?
            .iter()
            .map(|v| {
                let o = v.as_obj().ok_or("rewrite is not an object")?;
                Ok(PlanRewrite {
                    proposition: get_str(o, "proposition")?,
                    description: get_str(o, "description")?,
                    result: get_str(o, "result")?,
                    certified: get_bool(o, "certified")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let facts = get_arr(obj, "facts")?
            .iter()
            .map(|v| {
                let o = v.as_obj().ok_or("fact is not an object")?;
                Ok(NodeFact {
                    node: get_str(o, "node")?,
                    domain: get_str_arr(o, "domain")?,
                    domain_known: get_bool(o, "domain_known")?,
                    card_lo: get_u64(o, "card_lo")?,
                    card_hi: opt_u64(o, "card_hi")?,
                    empty: get_bool(o, "empty")?,
                    notes: get_str_arr(o, "notes")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let estimates = get_arr(obj, "estimates")?
            .iter()
            .map(|v| {
                let o = v.as_obj().ok_or("estimate is not an object")?;
                Ok(CardEstimate {
                    var: get_str(o, "var")?,
                    est_lo: get_u64(o, "est_lo")?,
                    est_hi: opt_u64(o, "est_hi")?,
                    observed: get_u64(o, "observed")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let phases = get_arr(obj, "phases")?
            .iter()
            .map(|v| {
                let o = v.as_obj().ok_or("phase is not an object")?;
                Ok(PhaseTrace {
                    name: get_str(o, "name")?,
                    start_nanos: get_u64(o, "start_nanos")?,
                    nanos: get_u64(o, "nanos")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let shards = get_arr(obj, "shards")?
            .iter()
            .map(|v| {
                let o = v.as_obj().ok_or("shard is not an object")?;
                Ok(ShardTrace {
                    start: pos_from(get_u64(o, "start")?)?,
                    end: pos_from(get_u64(o, "end")?)?,
                    start_nanos: get_u64(o, "start_nanos")?,
                    nanos: get_u64(o, "nanos")?,
                    ops: ops_from_json(get_arr(o, "ops")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let fingerprint_hex = get_str(obj, "fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|_| format!("fingerprint `{fingerprint_hex}` is not a hex u64"))?;
        Ok(QueryTrace {
            id: get_u64(obj, "id")?,
            fingerprint,
            query: get_str(obj, "query")?,
            plan: get_str(obj, "plan")?,
            rewrites,
            facts,
            estimates,
            phases,
            shards,
            ops: ops_from_json(get_arr(obj, "ops")?)?,
            cache_hits: get_u64(obj, "cache_hits")?,
            cache_misses: get_u64(obj, "cache_misses")?,
            plan_cache_hits: get_u64(obj, "plan_cache_hits")?,
            plan_cache_misses: get_u64(obj, "plan_cache_misses")?,
            total_nanos: get_u64(obj, "total_nanos")?,
            bytes_touched: get_u64(obj, "bytes_touched")?,
            candidates: usize_from(get_u64(obj, "candidates")?)?,
            results: usize_from(get_u64(obj, "results")?)?,
            exact_index: get_bool(obj, "exact_index")?,
        })
    }
}

fn pos_from(n: u64) -> Result<Pos, String> {
    Pos::try_from(n).map_err(|_| format!("position {n} out of range"))
}

fn usize_from(n: u64) -> Result<usize, String> {
    usize::try_from(n).map_err(|_| format!("count {n} out of range"))
}

/// One operator line of the pretty tree:
/// `⊃  in=5 out=1  1.2µs  [12 probes] (memo)`.
fn render_op(node: &OpTrace, prefix: &str, is_last: bool, out: &mut String) {
    let branch = if is_last { "└─ " } else { "├─ " };
    let mut line = node.op.clone();
    if !node.detail.is_empty() {
        let _ = write!(line, " {}", node.detail);
    }
    let _ = write!(line, "  in={} out={}  {}", node.input, node.output, fmt_nanos(node.nanos));
    if node.bytes > 0 {
        let _ = write!(line, "  {} B scanned", node.bytes);
    }
    if node.probes > 0 {
        let _ = write!(line, "  {} probes", node.probes);
    }
    match node.source {
        CacheSource::Computed => {}
        CacheSource::LocalMemo => line.push_str("  (memo hit)"),
        CacheSource::SharedCache => line.push_str("  (shared-cache hit)"),
    }
    let _ = writeln!(out, "{prefix}{branch}{line}");
    let child_prefix = format!("{prefix}{}", if is_last { "   " } else { "│  " });
    for (i, c) in node.children.iter().enumerate() {
        render_op(c, &child_prefix, i + 1 == node.children.len(), out);
    }
}

/// `1234` → `"1.2µs"`: human-scaled duration for the pretty renderer.
#[allow(clippy::cast_precision_loss)]
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

// ---------------------------------------------------------------------------
// JSON writing (mirrors crates/bench/src/report.rs: no serde in this tree).
// ---------------------------------------------------------------------------

/// Escapes a string for a JSON literal (shared with the `--json`
/// diagnostic writer in `analyze`).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ops_to_json(ops: &[OpTrace], s: &mut String) {
    s.push('[');
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"span_id\":{},\"op\":\"{}\",\"detail\":\"{}\",\"input\":{},\"output\":{},\
             \"start_nanos\":{},\"nanos\":{},\"bytes\":{},\"probes\":{},\"source\":\"{}\",\
             \"children\":",
            op.span_id,
            esc(&op.op),
            esc(&op.detail),
            op.input,
            op.output,
            op.start_nanos,
            op.nanos,
            op.bytes,
            op.probes,
            op.source.label()
        );
        ops_to_json(&op.children, s);
        s.push('}');
    }
    s.push(']');
}

fn ops_from_json(arr: &[Json]) -> Result<Vec<OpTrace>, String> {
    arr.iter()
        .map(|v| {
            let o = v.as_obj().ok_or("op node is not an object")?;
            let source_label = get_str(o, "source")?;
            Ok(OpTrace {
                span_id: get_u64(o, "span_id")?,
                start_nanos: get_u64(o, "start_nanos")?,
                op: get_str(o, "op")?,
                detail: get_str(o, "detail")?,
                input: usize_from(get_u64(o, "input")?)?,
                output: usize_from(get_u64(o, "output")?)?,
                nanos: get_u64(o, "nanos")?,
                bytes: get_u64(o, "bytes")?,
                probes: get_u64(o, "probes")?,
                source: CacheSource::from_label(&source_label)
                    .ok_or_else(|| format!("unknown cache source `{source_label}`"))?,
                children: ops_from_json(get_arr(o, "children")?)?,
            })
        })
        .collect()
}

// The JSON reader lives in `qof_pat::json` (shared with `qof top` and the
// bench harness); this module only keeps the writer above.

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let leaf = OpTrace {
            span_id: 2,
            start_nanos: 110,
            op: "name".into(),
            detail: "Reference".into(),
            output: 2,
            nanos: 120,
            ..OpTrace::default()
        };
        let root = OpTrace {
            span_id: 1,
            start_nanos: 100,
            op: "⊃".into(),
            input: 3,
            output: 1,
            nanos: 900,
            bytes: 15,
            probes: 1,
            children: vec![
                leaf.clone(),
                OpTrace { span_id: 3, start_nanos: 240, source: CacheSource::LocalMemo, ..leaf },
            ],
            ..OpTrace::default()
        };
        QueryTrace {
            id: 7,
            fingerprint: 0xdead_beef_0042_0007,
            query: "SELECT r FROM References r WHERE r.Year = \"1982\"".into(),
            plan: "var r : view References over <Reference>\n  index: …\n".into(),
            rewrites: vec![PlanRewrite {
                proposition: "3.5(b)".into(),
                description: "drop Name: every path passes through Name".into(),
                result: "Reference ⊃ Authors ⊃ σ_\"Chang\"(Last_Name)".into(),
                certified: true,
            }],
            facts: vec![
                NodeFact {
                    node: "Reference ⊃ Authors".into(),
                    domain: vec!["Reference".into()],
                    domain_known: true,
                    card_lo: 0,
                    card_hi: Some(60),
                    empty: false,
                    notes: Vec::new(),
                },
                NodeFact {
                    node: "word(\"zzz\")".into(),
                    domain: Vec::new(),
                    domain_known: false,
                    card_lo: 0,
                    card_hi: None,
                    empty: true,
                    notes: vec!["word \"zzz\" does not occur in the corpus".into()],
                },
            ],
            estimates: vec![
                CardEstimate { var: "r".into(), est_lo: 2, est_hi: Some(8), observed: 5 },
                CardEstimate { var: "s".into(), est_lo: 0, est_hi: None, observed: 3 },
            ],
            phases: vec![
                PhaseTrace { name: "index-candidates".into(), start_nanos: 0, nanos: 1_500 },
                PhaseTrace { name: "projection".into(), start_nanos: 1_500, nanos: 2_000_000 },
            ],
            shards: vec![ShardTrace {
                start: 0,
                end: 512,
                start_nanos: 40,
                nanos: 700,
                ops: vec![root.clone()],
            }],
            ops: vec![root],
            cache_hits: 3,
            cache_misses: 1,
            plan_cache_hits: 2,
            plan_cache_misses: 1,
            total_nanos: 2_100_000,
            bytes_touched: 4_096,
            candidates: 5,
            results: 1,
            exact_index: true,
        }
    }

    #[test]
    fn json_round_trips() {
        let trace = sample();
        let json = trace.to_json();
        assert!(json.contains("\"fingerprint\":\"deadbeef00420007\""), "{json}");
        assert!(json.contains("\"bytes_touched\":4096"), "{json}");
        let back = QueryTrace::from_json(&json).expect("own output parses");
        assert_eq!(back, trace);
        // And the round trip is a fixpoint.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_bad_versions_and_garbage() {
        let json = sample().to_json().replace("\"schema_version\":6", "\"schema_version\":999");
        assert!(QueryTrace::from_json(&json).unwrap_err().contains("schema version"));
        assert!(QueryTrace::from_json("{").is_err());
        assert!(QueryTrace::from_json("[]").is_err());
        assert!(QueryTrace::from_json("{}").unwrap_err().contains("schema_version"));
    }

    #[test]
    fn render_shows_all_sections() {
        let text = sample().render();
        assert!(text.contains("query: SELECT r"));
        assert!(text.contains("id: 7"));
        assert!(text.contains("fingerprint: deadbeef00420007"));
        assert!(text.contains("optimizer rewrites: 1"));
        assert!(text.contains("[3.5(b)] drop Name"));
        assert!(text.contains("✓ certified"));
        assert!(text.contains("static facts:"));
        assert!(text.contains("domain {Reference}, card [0, 60]"));
        assert!(text.contains("domain ⊤, card [0, ∞)  ∅"));
        assert!(text.contains("note: word \"zzz\""));
        assert!(text.contains("cardinality estimates:"));
        assert!(text.contains("r: estimated [2, 8], actual 5"));
        assert!(text.contains("s: estimated [0, ∞), actual 3"));
        assert!(!text.contains("⚠ outside interval"));
        assert!(text.contains("index-candidates"));
        assert!(text.contains("└─ ⊃  in=3 out=1"));
        assert!(text.contains("(memo hit)"));
        assert!(text.contains("shards (phase 1):"));
        assert!(text.contains("plan cache 2/3 hits"));
        assert!(text.contains("totals: 5 candidates, 1 results [exact]"));
    }

    #[test]
    fn cache_hit_rate_and_node_count() {
        let t = sample();
        assert!((t.cache_hit_rate() - 0.75).abs() < 1e-9);
        // 3 nodes in the main tree + 3 in the shard copy.
        assert_eq!(t.op_node_count(), 6);
        assert!((QueryTrace { cache_hits: 0, cache_misses: 0, ..t }).cache_hit_rate().abs() < 1e-9);
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_000_000), "2.00ms");
        assert_eq!(fmt_nanos(3_210_000_000), "3.21s");
    }

    #[test]
    fn esc_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("⊃d"), "⊃d");
        let parsed = Json::parse("\"a\\u0041⊃\"").unwrap();
        assert_eq!(parsed, Json::Str("aA⊃".into()));
    }
}
